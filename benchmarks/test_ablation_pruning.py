"""Ablation (beyond the paper): the cost of each BBE pruning rule.

DESIGN.md calls out the three pruning rules of Algorithm 4 as the
enumeration's load-bearing design choices; this benchmark quantifies
each rule's contribution. The search must explore no more subspaces with
a rule enabled than without it, and every configuration must agree on
the answer (correctness of the ablations is covered by unit tests; here
we re-check on the real dataset within the time cap).
"""

from benchmarks.conftest import record_exhibits
from repro.experiments import ablation_pruning_rules


def test_ablation_pruning_rules(benchmark):
    exhibit = benchmark.pedantic(ablation_pruning_rules, rounds=1, iterations=1)
    record_exhibits("ablation_pruning", exhibit)
    by_label = exhibit.series_by_label()
    recursions = dict(zip(by_label["recursions"].x, by_label["recursions"].y))
    counts = dict(zip(by_label["cliques"].x, by_label["cliques"].y))
    baseline = recursions["all rules"]
    # Disabling any rule must not shrink the explored search space.
    for label, value in recursions.items():
        assert value >= baseline or counts[label] < counts["all rules"], label
    # Unless a cap truncated a configuration, answers agree.
    if not exhibit.notes:
        assert len(set(counts.values())) == 1, counts
