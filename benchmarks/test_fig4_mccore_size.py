"""Fig. 4: total number of MCCore nodes across the alpha/k sweeps.

Paper shape: the MCCore shrinks as alpha or k grows, and is a small
fraction of the graph (Slashdot at the default setting: 422 nodes out of
82,144). We assert monotone shrinkage and a strong reduction ratio.
"""

from benchmarks.conftest import record_exhibits
from repro.core import AlphaK, mccore_new
from repro.experiments import fig4_mccore_size
from repro.experiments.registry import get_dataset


def _non_increasing(values):
    return all(a >= b for a, b in zip(values, values[1:]))


def test_fig4_mccore_size(benchmark):
    exhibits = benchmark.pedantic(fig4_mccore_size, rounds=1, iterations=1)
    record_exhibits("fig4", exhibits)
    for exhibit in exhibits:
        series = exhibit.series_by_label()["MCNew"]
        # Paper: MCCore size decreases with increasing alpha and k.
        assert _non_increasing(series.y), exhibit.title


def test_mccore_reduction_ratio_at_default(benchmark):
    graph = get_dataset("slashdot").graph
    survivors = benchmark(mccore_new, graph, AlphaK(4, 3))
    # Paper: 422 of 82,144 nodes survive on Slashdot (0.5%); our scaled
    # stand-in must show the same drastic pruning (< 20% survive).
    assert 0 < len(survivors) < graph.number_of_nodes() * 0.2
