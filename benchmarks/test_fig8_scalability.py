"""Fig. 8: scalability on 20-100% samples of the largest dataset (Pokec).

Paper shape: cost increases smoothly with |V| and |E|; the top-r search
scales near-linearly and stays below full enumeration. We assert that
the smallest sample is no slower than the full graph (with generous
noise slack) and record both sampling axes.
"""

from benchmarks.conftest import record_exhibits
from repro.experiments import fig8_scalability


def test_fig8_scalability(benchmark):
    exhibits = benchmark.pedantic(fig8_scalability, rounds=1, iterations=1)
    record_exhibits("fig8", exhibits)
    for exhibit in exhibits:
        by_label = exhibit.series_by_label()
        full_enum = by_label["MSCE-G (All)"].y
        topr = by_label["MSCE-G (Top-r)"].y
        # Smooth growth: the 20% sample must not cost more than the
        # full graph (1.5x slack absorbs timer noise on fast runs).
        assert full_enum[0] <= full_enum[-1] * 1.5 + 0.05, exhibit.title
        # Paper: top-r never costs more than enumerating everything.
        assert sum(topr) <= sum(full_enum) * 1.2 + 0.05, exhibit.title
