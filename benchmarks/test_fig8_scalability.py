"""Fig. 8: scalability on 20-100% samples of the largest dataset (Pokec).

Paper shape: cost increases smoothly with |V| and |E|; the top-r search
scales near-linearly and stays below full enumeration. We assert that
the smallest sample is no slower than the full graph (with generous
noise slack) and record both sampling axes.

Extension: the intra-component parallel speedup curve on a
single-giant-component LFR-like graph — bit-identical results are
asserted unconditionally (the exhibit driver raises otherwise); the
>= 1.5x speedup gate at 4 workers only applies on machines with at
least 4 cores, since on fewer cores the workers time-slice one another.
"""

import os

from benchmarks.conftest import record_exhibits
from repro.experiments import fig8_parallel_speedup, fig8_scalability


def test_fig8_scalability(benchmark):
    exhibits = benchmark.pedantic(fig8_scalability, rounds=1, iterations=1)
    record_exhibits("fig8", exhibits)
    for exhibit in exhibits:
        by_label = exhibit.series_by_label()
        full_enum = by_label["MSCE-G (All)"].y
        topr = by_label["MSCE-G (Top-r)"].y
        # Smooth growth: the 20% sample must not cost more than the
        # full graph (1.5x slack absorbs timer noise on fast runs).
        assert full_enum[0] <= full_enum[-1] * 1.5 + 0.05, exhibit.title
        # Paper: top-r never costs more than enumerating everything.
        assert sum(topr) <= sum(full_enum) * 1.2 + 0.05, exhibit.title


def test_fig8_parallel_speedup(benchmark):
    exhibit = benchmark.pedantic(fig8_parallel_speedup, rounds=1, iterations=1)
    record_exhibits("fig8_parallel", exhibit)
    by_label = exhibit.series_by_label()
    speedups = dict(zip(by_label["speedup vs 1 worker"].x, by_label["speedup vs 1 worker"].y))
    assert speedups[1] == 1.0
    # Correctness across worker counts is enforced inside the driver
    # (it raises if any count changes the cliques or the stats); the
    # payload note must document the shared-memory shipping.
    assert any("per-task payload" in note for note in exhibit.notes)
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert speedups[4] >= 1.5, f"4-worker speedup {speedups[4]} below 1.5x gate"
