"""Extension benchmark: request coalescing under duplicate-heavy overload.

The serving layer's claim (:mod:`repro.net`): when many clients ask the
same question at once, single-flight coalescing answers *all* of them
with one computation, while an uncoalesced server burns its bounded
admission capacity on duplicates and sheds the rest. This benchmark
drives both configurations of a live :class:`~repro.net.CliqueServer`
with the same workload and gates the throughput ratio.

Workload: ``ROUNDS`` bursts of ``CLIENTS`` *simultaneous, identical*
requests (a fresh ``alpha`` per round so no round is served from the
result cache of the previous one), against a server with deliberately
tiny capacity (``max_concurrency=2``, ``max_queue_depth=2``). Service
time is pinned at ``SERVICE_SECONDS`` per computation (a fixed delay
wrapped around the real engine call), so the measured ratio reflects
the *admission accounting* — how many clients each configuration can
answer — rather than machine-speed noise.

The gate: coalescing must deliver at least ``MIN_SPEEDUP``x the goodput
(successful responses per second) of the no-coalescing server. The
mechanism makes this structural: coalesced rounds serve all ``CLIENTS``
with one admitted flight; uncoalesced rounds can admit at most
``max_concurrency + max_queue_depth`` and shed the rest with 503s.
"""

import time

from benchmarks.conftest import record_exhibits
from repro.experiments.harness import Exhibit, Series
from repro.graphs import SignedGraph
from repro.net import ServerConfig
from repro.testing.chaos import ServerHarness, closed_loop, http_request
from tests.conftest import PAPER_EDGES

#: Bursts per configuration (each on a fresh coalescing key).
ROUNDS = 3

#: Simultaneous identical clients per burst.
CLIENTS = 12

#: Pinned service time per computation, seconds.
SERVICE_SECONDS = 0.25

#: Admission capacity: max_concurrency + max_queue_depth.
MAX_CONCURRENCY = 2
MAX_QUEUE_DEPTH = 2

#: The hard acceptance gate on the goodput ratio.
MIN_SPEEDUP = 2.0


def _pin_service_time(harness, tenant: str, seconds: float) -> None:
    engine = harness.registry.get(tenant).engine
    original = engine.run_grid

    def pinned(*args, **kwargs):
        time.sleep(seconds)
        return original(*args, **kwargs)

    engine.run_grid = pinned


def _drive(coalesce: bool):
    """Run the duplicate-burst workload; returns per-round reports."""
    config = ServerConfig(
        port=0,
        coalesce=coalesce,
        max_concurrency=MAX_CONCURRENCY,
        max_queue_depth=MAX_QUEUE_DEPTH,
    )
    reports = []
    with ServerHarness({"g": SignedGraph(PAPER_EDGES)}, config=config) as harness:
        _pin_service_time(harness, "g", SERVICE_SECONDS)
        for round_index in range(ROUNDS):
            # Fresh alpha -> fresh coalescing/cache key each round.
            path = f"/v1/graphs/g/cliques?alpha={2 + round_index}&k=1"
            report = closed_loop(
                lambda client, index, path=path: http_request(
                    harness.host, harness.port, "GET", path, timeout=60
                ),
                clients=CLIENTS,
                requests_per_client=1,
            )
            reports.append(report)
        counters = dict(harness.server.counters)
    return reports, counters


def test_coalescing_multiplies_goodput_under_duplicate_load():
    coalesced_reports, coalesced_counters = _drive(coalesce=True)
    plain_reports, plain_counters = _drive(coalesce=False)

    coalesced_ok = sum(r.ok for r in coalesced_reports)
    plain_ok = sum(r.ok for r in plain_reports)
    coalesced_wall = sum(r.wall_seconds for r in coalesced_reports)
    plain_wall = sum(r.wall_seconds for r in plain_reports)
    coalesced_goodput = coalesced_ok / coalesced_wall
    plain_goodput = plain_ok / plain_wall
    goodput_ratio = coalesced_goodput / max(plain_goodput, 1e-9)
    served_ratio = coalesced_ok / max(plain_ok, 1)

    total = ROUNDS * CLIENTS
    capacity = MAX_CONCURRENCY + MAX_QUEUE_DEPTH
    rounds_axis = list(range(1, ROUNDS + 1))
    exhibit = Exhibit(
        title=(
            f"HTTP goodput under duplicate bursts ({CLIENTS} identical clients "
            f"x {ROUNDS} rounds, capacity {capacity}, "
            f"{SERVICE_SECONDS * 1000:.0f}ms pinned service time)"
        ),
        series=[
            Series("coalescing: served per round", x=rounds_axis,
                   y=[r.ok for r in coalesced_reports]),
            Series("no coalescing: served per round", x=rounds_axis,
                   y=[r.ok for r in plain_reports]),
            Series("no coalescing: shed per round", x=rounds_axis,
                   y=[r.shed for r in plain_reports]),
        ],
        notes=[
            f"goodput: {coalesced_goodput:.1f} vs {plain_goodput:.1f} ok/s "
            f"-> {goodput_ratio:.2f}x (gate: >= {MIN_SPEEDUP:.1f}x)",
            f"served: {coalesced_ok}/{total} coalesced vs {plain_ok}/{total} "
            f"uncoalesced ({served_ratio:.2f}x)",
            f"computations: {coalesced_counters['computes']} coalesced vs "
            f"{plain_counters['computes']} uncoalesced "
            f"({coalesced_counters['coalesced']} requests rode shared flights)",
            f"sheds: {coalesced_counters['shed']} coalesced vs "
            f"{plain_counters['shed']} uncoalesced (all with Retry-After)",
        ],
    )
    record_exhibits(
        "serve_http",
        exhibit,
        extra={
            "gate": MIN_SPEEDUP,
            "goodput_ratio": round(goodput_ratio, 3),
            "served_ratio": round(served_ratio, 3),
            "coalesced": {
                "ok": coalesced_ok,
                "shed": sum(r.shed for r in coalesced_reports),
                "wall_seconds": round(coalesced_wall, 3),
                "computes": coalesced_counters["computes"],
            },
            "uncoalesced": {
                "ok": plain_ok,
                "shed": sum(r.shed for r in plain_reports),
                "wall_seconds": round(plain_wall, 3),
                "computes": plain_counters["computes"],
            },
        },
    )

    # Structural claims first: coalescing serves every duplicate with one
    # flight per round; the uncoalesced server is capacity-bound and sheds.
    assert coalesced_ok == total
    assert coalesced_counters["computes"] == ROUNDS
    assert coalesced_counters["coalesced"] == total - ROUNDS
    assert plain_ok <= ROUNDS * capacity
    assert sum(r.shed for r in plain_reports) == total - plain_ok
    assert all(r.transport_errors == 0 for r in coalesced_reports + plain_reports)

    # The hard gate.
    assert goodput_ratio >= MIN_SPEEDUP, (
        f"coalescing goodput only {goodput_ratio:.2f}x the uncoalesced server "
        f"({coalesced_goodput:.1f} vs {plain_goodput:.1f} ok/s)"
    )
