"""Fig. 5: enumeration time, MSCE-G vs MSCE-R, across the datasets.

Paper shape: MSCE-G dominates MSCE-R — by an order of magnitude on
Slashdot/Wiki/DBLP, consistently on Youtube/Pokec — and MSCE-R is often
intractable within the cap (3600 s in the paper; REPRO_BENCH_TIME_LIMIT
here). We assert aggregate dominance of the greedy strategy and record
the full series.

The default run covers Slashdot/DBLP/Youtube to bound wall time; set
``REPRO_BENCH_FULL=1`` for all five datasets and the full grids.
"""

from benchmarks.conftest import record_exhibits
from repro.core import MSCE, AlphaK
from repro.experiments import fig5_enumeration_time
from repro.experiments.harness import full_sweeps_enabled, time_limit_seconds
from repro.experiments.registry import get_dataset
from repro.generators import PAPER_DATASETS

FAST_DATASETS = ("slashdot", "dblp", "youtube")


def test_fig5_enumeration_time(benchmark):
    names = PAPER_DATASETS if full_sweeps_enabled() else FAST_DATASETS
    exhibits = benchmark.pedantic(
        fig5_enumeration_time, kwargs={"names": names}, rounds=1, iterations=1
    )
    record_exhibits("fig5", exhibits)
    for exhibit in exhibits:
        by_label = exhibit.series_by_label()
        greedy_total = sum(by_label["MSCE-G"].y)
        random_total = sum(by_label["MSCE-R"].y)
        # Paper: the greedy node selection never loses to random
        # selection in aggregate (10% slack for timer noise on
        # sub-millisecond points).
        assert greedy_total <= random_total * 1.1, exhibit.title


def test_msce_g_beats_msce_r_recursions(benchmark):
    # Recursion counts are noise-free evidence of the pruning advantage.
    graph = get_dataset("slashdot").graph
    params = AlphaK(4, 3)
    limit = time_limit_seconds()

    def run_both():
        greedy = MSCE(graph, params, selection="greedy", time_limit=limit).enumerate_all()
        randomized = MSCE(graph, params, selection="random", time_limit=limit).enumerate_all()
        return greedy, randomized

    greedy, randomized = benchmark.pedantic(run_both, rounds=1, iterations=1)
    if not (greedy.timed_out or randomized.timed_out):
        assert {c.nodes for c in greedy.cliques} == {c.nodes for c in randomized.cliques}
    assert greedy.stats.recursions <= randomized.stats.recursions


def test_msce_g_default_point_speed(benchmark):
    graph = get_dataset("slashdot").graph

    def run():
        return MSCE(graph, AlphaK(4, 3)).enumerate_all()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.cliques) > 0
