"""Fig. 10: DBLP case study — TClique vs SignedClique communities.

Paper shape: around the same focal researcher, the TClique community
(no negative edges allowed) misses members that the SignedClique
community keeps by tolerating a few weak (negative) ties — the signed
community is a proper superset in the paper's examples.
"""

from benchmarks.conftest import record_exhibits
from repro.experiments import fig10_case_study


def test_fig10_case_study(benchmark):
    exhibit = benchmark.pedantic(fig10_case_study, rounds=1, iterations=1)
    record_exhibits("fig10", exhibit)
    by_label = exhibit.series_by_label()
    sizes = dict(zip(by_label["community size"].x, by_label["community size"].y))
    negatives = dict(
        zip(by_label["internal negative edges"].x, by_label["internal negative edges"].y)
    )
    # The signed community is at least as large as the trusted clique...
    assert sizes["SignedClique"] >= sizes["TClique"]
    # ...and TClique communities contain no weak ties by construction.
    assert negatives["TClique"] == 0
    # The signed model's extra reach comes from tolerated weak ties.
    assert negatives["SignedClique"] >= 1
