"""Out-of-core scaling: budgeted frontier spilling + cold-start transports.

Two exhibits behind ``BENCH_oocore.json``:

* **Frontier scaling** — many-component graphs of growing edge count are
  enumerated under one fixed (absurdly small) memory budget. The
  in-memory frontier is capped at a scale-independent high-water mark,
  so the overflow — which grows with the graph — lands on disk:
  ``spilled frames`` rises while ``resident frame cap`` stays flat, and
  the budgeted run's tracemalloc peak never exceeds the unbudgeted
  run's (spilling can only shrink the resident search state). Cliques
  and stats stay bit-identical throughout — the spill oracle.

* **Cold start** — the wall-clock cost of materialising a usable
  ``CompiledGraph`` in a fresh process stand-in, per transport: mmap
  attach of a storage artifact, shared-memory attach, and the pickle
  round-trip the pre-storage worker paid. The mmap attach skips both
  the array copies and the ``__setstate__`` sign-splitting pass, and
  the gate asserts it beats pickle by at least 2x.
"""

import pickle
import time

from benchmarks.conftest import record_exhibits
from repro.core import enumerate_parallel
from repro.experiments.harness import Exhibit, Series, measure_peak_memory
from repro.fastpath import storage
from repro.fastpath.compiled import CompiledGraph, compile_graph
from repro.fastpath.shared import SharedCompiledGraph
from repro.generators import gnp_signed
from repro.graphs import SignedGraph

#: Fixed soft budget for the scaling leg: small enough that every scale
#: operates at the minimum frontier high-water mark.
BUDGET_BYTES = 1

SCALES = (30, 60, 120)

COLD_START_REPEATS = 5


def _many_component_graph(components: int, n: int = 14) -> SignedGraph:
    graph = SignedGraph()
    for index in range(components):
        blob = gnp_signed(n, 0.5, negative_fraction=0.25, seed=index)
        for u, v, sign in blob.edges():
            graph.add_edge(f"{index}:{u}", f"{index}:{v}", sign)
    return graph


def _fingerprint(result):
    return (
        [(c.nodes, c.positive_edges, c.negative_edges) for c in result.cliques],
        result.stats.as_dict(),
    )


def oocore_scaling() -> Exhibit:
    edges = Series("edges")
    spilled = Series("spilled frames")
    resident_cap = Series("resident frame cap")
    peak_budgeted = Series("peak bytes (budgeted)")
    peak_unbudgeted = Series("peak bytes (unbudgeted)")
    exhibit = Exhibit(
        title=f"Out-of-core frontier scaling (budget={BUDGET_BYTES} byte)",
        series=[edges, spilled, resident_cap, peak_budgeted, peak_unbudgeted],
    )
    for components in SCALES:
        graph = _many_component_graph(components)
        compiled = compile_graph(graph)
        baseline, base_peak = measure_peak_memory(
            enumerate_parallel, compiled, 1.5, 1, workers=1
        )
        budgeted, budget_peak = measure_peak_memory(
            enumerate_parallel,
            compiled,
            1.5,
            1,
            workers=1,
            memory_budget_bytes=BUDGET_BYTES,
        )
        assert _fingerprint(budgeted) == _fingerprint(baseline)
        assert budgeted.parallel["spilled_frames"] > 0
        frontier = storage.SpillFrontier(BUDGET_BYTES, compiled.n)
        try:
            cap = frontier.high_water
        finally:
            frontier.close()
        edges.add(components, graph.number_of_edges())
        spilled.add(components, budgeted.parallel["spilled_frames"])
        resident_cap.add(components, cap)
        peak_budgeted.add(components, budget_peak)
        peak_unbudgeted.add(components, base_peak)
    exhibit.notes.append(
        "resident frontier capped at a scale-independent high-water mark; "
        "overflow frames (growing with the graph) wait on disk"
    )
    exhibit.notes.append(
        "budgeted/unbudgeted runs are bit-identical (cliques and stats)"
    )
    return exhibit


def _best_of(fn, repeats: int = COLD_START_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def oocore_cold_start(tmp_dir) -> Exhibit:
    graph = gnp_signed(3000, 0.004, negative_fraction=0.25, seed=9)
    compiled = compile_graph(graph)
    path = str(tmp_dir / "cold.graph")
    compiled.save(path, packed="none")
    blob = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
    shared = SharedCompiledGraph.create(compiled)

    def via_mmap():
        attached = CompiledGraph.mmap(path)
        storage.release_views(attached)
        attached._storage.close()

    def via_shm():
        worker = SharedCompiledGraph.attach(shared.meta)
        worker.graph
        worker.close()

    def via_pickle():
        pickle.loads(blob)

    try:
        timings = {
            "mmap attach": _best_of(via_mmap),
            "shm attach": _best_of(via_shm),
            "pickle round-trip": _best_of(via_pickle),
        }
    finally:
        shared.unlink()
    series = Series("cold-start seconds")
    for label, seconds in timings.items():
        series.add(label, round(seconds, 6))
    exhibit = Exhibit(
        title=f"Worker cold start, n={compiled.n} m={len(compiled.adj) // 2}",
        series=[series],
    )
    exhibit.notes.append(
        "best of %d: time to a usable CompiledGraph in a fresh attach"
        % COLD_START_REPEATS
    )
    return exhibit


def test_oocore_scaling(benchmark, tmp_path):
    scaling = benchmark.pedantic(oocore_scaling, rounds=1, iterations=1)
    cold = oocore_cold_start(tmp_path)
    record_exhibits("oocore", [scaling, cold])

    by_label = scaling.series_by_label()
    spilled = by_label["spilled frames"].y
    caps = by_label["resident frame cap"].y
    budgeted = by_label["peak bytes (budgeted)"].y
    unbudgeted = by_label["peak bytes (unbudgeted)"].y
    # The disk-resident overflow grows with the graph...
    assert spilled[-1] > spilled[0]
    # ...while the in-RAM frontier bound stays flat under the fixed budget.
    assert len(set(caps)) == 1
    # Spilling must not cost resident memory: the budgeted peak stays at
    # or below the unbudgeted peak at every scale (small slack for
    # allocator noise).
    for scale, low, high in zip(SCALES, budgeted, unbudgeted):
        assert low <= 1.10 * high, f"components={scale}: {low} vs {high}"

    timings = dict(zip(*(cold.series[0].x, cold.series[0].y)))
    # Acceptance gate: mmap cold start beats the pickle round-trip >= 2x.
    assert timings["mmap attach"] * 2 <= timings["pickle round-trip"], timings
