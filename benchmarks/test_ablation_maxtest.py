"""Ablation (beyond the paper): exact vs paper-style maximality testing.

DESIGN.md documents that Algorithm 4's single-extension MaxTest is sound
only in the "maximal" direction: it can reject true maximal cliques
whose single-node extensions fail the positive constraint. This
benchmark quantifies the trade: the heuristic may return fewer cliques,
never more, and is at most modestly faster.
"""

from benchmarks.conftest import record_exhibits
from repro.experiments import ablation_maxtest


def test_ablation_maxtest(benchmark):
    exhibit = benchmark.pedantic(ablation_maxtest, rounds=1, iterations=1)
    record_exhibits("ablation_maxtest", exhibit)
    by_label = exhibit.series_by_label()
    counts = dict(zip(by_label["cliques"].x, by_label["cliques"].y))
    # One-directional soundness: the paper test only under-reports.
    assert counts["paper"] <= counts["exact"]
