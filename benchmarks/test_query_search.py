"""Extension benchmark: query-driven community search vs full enumeration.

The seeded search restricts the space to the query's common
neighbourhood inside the MCCore, so it must explore no more search
states than full enumeration while returning exactly the cliques that
contain the query.
"""

from benchmarks.conftest import record_exhibits
from repro.core import MSCE, AlphaK
from repro.core.query import query_search
from repro.experiments.harness import Exhibit, Series, time_limit_seconds
from repro.experiments.registry import get_dataset


def test_query_search_vs_full(benchmark):
    graph = get_dataset("slashdot").graph
    params = AlphaK(4, 3)
    limit = time_limit_seconds()

    full = MSCE(graph, params, time_limit=limit).enumerate_all()
    assert full.cliques, "workload sanity"
    member = min(full.cliques[0].nodes)

    def run_query():
        return query_search(graph, {member}, 4, 3, time_limit=limit)

    scoped = benchmark.pedantic(run_query, rounds=3, iterations=1)

    # Correctness: exactly the full-enumeration cliques containing the query.
    expected = {c.nodes for c in full.cliques if member in c.nodes}
    assert {c.nodes for c in scoped.cliques} == expected
    # Efficiency: strictly less exploration than the full search.
    assert scoped.stats.recursions <= full.stats.recursions

    states = Series("search states")
    states.add("full enumeration", full.stats.recursions)
    states.add(f"query({member})", scoped.stats.recursions)
    answers = Series("cliques")
    answers.add("full enumeration", len(full.cliques))
    answers.add(f"query({member})", len(scoped.cliques))
    record_exhibits(
        "query_search",
        Exhibit(
            title="Extension: community search vs full enumeration (slashdot, 4, 3)",
            series=[states, answers],
        ),
    )
