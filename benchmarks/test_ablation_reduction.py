"""Ablation (beyond the paper): enumeration cost per reduction strength.

Section III's pipeline offers three pruning strengths (plus none). The
paper's Lemma 1/3 guarantee the surviving node sets are nested; this
benchmark confirms the nesting and records the end-to-end enumeration
cost under each.
"""

from benchmarks.conftest import record_exhibits
from repro.experiments import ablation_reduction


def test_ablation_reduction(benchmark):
    exhibit = benchmark.pedantic(ablation_reduction, rounds=1, iterations=1)
    record_exhibits("ablation_reduction", exhibit)
    by_label = exhibit.series_by_label()
    survivors = dict(zip(by_label["surviving nodes"].x, by_label["surviving nodes"].y))
    # Nested reductions: none >= positive-core >= mcbasic == mcnew.
    assert survivors["none"] >= survivors["positive-core"]
    assert survivors["positive-core"] >= survivors["mcnew"]
    assert survivors["mcbasic"] == survivors["mcnew"]
