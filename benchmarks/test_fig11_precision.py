"""Fig. 11: protein-complex precision of the four models on FlySign.

Paper shape at every grid point: SignedClique has the highest precision;
the clique-based models beat the core-based models; SignedCore collapses
to 0 for larger k (it demands internal conflict the PPI network cannot
supply).
"""

from benchmarks.conftest import record_exhibits
from repro.experiments import fig11_precision


def test_fig11_precision(benchmark):
    exhibits = benchmark.pedantic(fig11_precision, rounds=1, iterations=1)
    record_exhibits("fig11", exhibits)
    for exhibit in exhibits:
        by_label = exhibit.series_by_label()
        signed_clique = by_label["SignedClique"].y
        tclique = by_label["TClique"].y
        core = by_label["Core"].y
        signed_core = by_label["SignedCore"].y
        for index, x_value in enumerate(by_label["SignedClique"].x):
            point = f"{exhibit.title} @ {x_value}"
            # Paper: SignedClique dominates every baseline.
            assert signed_clique[index] > tclique[index], point
            assert signed_clique[index] > core[index], point
            # Clique-based models beat core-based models.
            assert tclique[index] > core[index], point
            assert tclique[index] > signed_core[index], point
        # Paper: SignedCore returns empty (precision 0) once k demands
        # more internal conflict than the network has.
        assert signed_core[-1] == 0.0, exhibit.title
