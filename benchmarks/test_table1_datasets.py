"""Table I: dataset statistics of the five stand-ins.

Shape claims reproduced from the paper's Table I: the edge-count ordering
(Pokec largest), DBLP's negative-majority sign profile, and the ~30%
negative share of the two randomly-signed datasets.
"""

from benchmarks.conftest import record_exhibits
from repro.experiments import table1_dataset_stats
from repro.experiments.registry import get_dataset
from repro.graphs import graph_stats


def test_table1_dataset_stats(benchmark):
    exhibit = benchmark.pedantic(table1_dataset_stats, rounds=1, iterations=1)
    record_exhibits("table1", exhibit)
    by_label = exhibit.series_by_label()
    names = by_label["m"].x
    m = dict(zip(names, by_label["m"].y))
    e_pos = dict(zip(names, by_label["E+"].y))
    e_neg = dict(zip(names, by_label["E-"].y))

    # Consistency: |E+| + |E-| = m per dataset.
    for name in names:
        assert e_pos[name] + e_neg[name] == m[name]
    # Paper shape: Pokec is the largest dataset.
    assert m["pokec"] == max(m.values())
    # Paper shape: DBLP is the only negative-majority network.
    assert e_neg["dblp"] > e_pos["dblp"]
    for name in ("slashdot", "wiki", "youtube", "pokec"):
        assert e_pos[name] > e_neg[name]
    # Paper recipe: Youtube/Pokec carry ~30% negative edges.
    for name in ("youtube", "pokec"):
        assert 0.28 <= e_neg[name] / m[name] <= 0.32


def test_stats_computation_speed(benchmark):
    graph = get_dataset("slashdot").graph
    stats = benchmark(graph_stats, graph)
    assert stats.nodes == graph.number_of_nodes()
