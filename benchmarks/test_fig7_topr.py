"""Fig. 7: time to find the top-r largest maximal (alpha, k)-cliques.

Paper shapes: top-r is substantially cheaper than full enumeration
(13 s vs 54 s on Slashdot at the default point), and the cost grows
with r. We assert the dominance over full enumeration via both time and
(noise-free) recursion counts, and record the r-sweep series.
"""

from benchmarks.conftest import record_exhibits
from repro.core import MSCE, AlphaK
from repro.experiments import fig7_topr_time
from repro.experiments.harness import DEFAULT_R, time_limit_seconds
from repro.experiments.registry import get_dataset


def test_fig7_topr_time(benchmark):
    exhibits = benchmark.pedantic(fig7_topr_time, rounds=1, iterations=1)
    record_exhibits("fig7", exhibits)
    assert len(exhibits) == 6  # 2 datasets x 3 axes


def test_topr_cheaper_than_full_enumeration(benchmark):
    graph = get_dataset("slashdot").graph
    params = AlphaK(4, 3)
    limit = time_limit_seconds()

    def run_both():
        top = MSCE(graph, params, time_limit=limit).top_r(DEFAULT_R)
        full = MSCE(graph, params, time_limit=limit).enumerate_all()
        return top, full

    top, full = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # Paper: top-r search explores less of the tree than enumerating all.
    assert top.stats.recursions <= full.stats.recursions
    assert len(top.cliques) <= DEFAULT_R
    # Top-r results are exactly the size-prefix of the full ranking.
    prefix = full.cliques[: len(top.cliques)]
    assert [c.size for c in top.cliques] == [c.size for c in prefix]


def test_topr_speed_default_point(benchmark):
    graph = get_dataset("dblp").graph

    def run():
        return MSCE(graph, AlphaK(4, 3)).top_r(DEFAULT_R)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.cliques
