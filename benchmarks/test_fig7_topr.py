"""Fig. 7: time to find the top-r largest maximal (alpha, k)-cliques.

Paper shapes: top-r is substantially cheaper than full enumeration
(13 s vs 54 s on Slashdot at the default point), and the cost grows
with r. We assert the dominance over full enumeration via both time and
(noise-free) recursion counts, and record the r-sweep series.
"""

import time

from benchmarks.conftest import record_exhibits
from repro.core import MSCE, AlphaK
from repro.experiments import fig7_topr_time
from repro.experiments.harness import DEFAULT_R, Exhibit, Series, time_limit_seconds
from repro.experiments.registry import get_dataset


def test_fig7_topr_time(benchmark):
    exhibits = benchmark.pedantic(fig7_topr_time, rounds=1, iterations=1)
    record_exhibits("fig7", exhibits)
    assert len(exhibits) == 6  # 2 datasets x 3 axes


def test_topr_cheaper_than_full_enumeration(benchmark):
    graph = get_dataset("slashdot").graph
    params = AlphaK(4, 3)
    limit = time_limit_seconds()

    def run_both():
        top = MSCE(graph, params, time_limit=limit).top_r(DEFAULT_R)
        full = MSCE(graph, params, time_limit=limit).enumerate_all()
        return top, full

    top, full = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # Paper: top-r search explores less of the tree than enumerating all.
    assert top.stats.recursions <= full.stats.recursions
    assert len(top.cliques) <= DEFAULT_R
    # Top-r results are exactly the size-prefix of the full ranking.
    prefix = full.cliques[: len(top.cliques)]
    assert [c.size for c in top.cliques] == [c.size for c in prefix]


def test_topr_seeded_vs_unseeded_race(benchmark):
    """Extension: warm-started top-r vs the cold cutoff search.

    The gate is the seeding soundness contract, measured on a real
    dataset: the seeded search returns the *identical* clique list
    while exploring no more of the search tree (``recursions`` counts
    subspaces, noise-free). Timing rows are recorded for the trend
    artifact but not gated — the portfolio's own budget is part of the
    seeded wall-clock.
    """
    graph = get_dataset("slashdot").graph
    params = AlphaK(4, 3)
    limit = time_limit_seconds()

    def race():
        rows = []
        for r in (1, DEFAULT_R):
            started = time.perf_counter()
            unseeded = MSCE(graph, params, time_limit=limit).top_r(r)
            unseeded_seconds = time.perf_counter() - started
            started = time.perf_counter()
            seeded = MSCE(graph, params, time_limit=limit).top_r(
                r, warm_start="portfolio"
            )
            seeded_seconds = time.perf_counter() - started
            rows.append((r, unseeded, unseeded_seconds, seeded, seeded_seconds))
        return rows

    rows = benchmark.pedantic(race, rounds=1, iterations=1)

    recursions = Series("unseeded_recursions")
    seeded_recursions = Series("seeded_recursions")
    seconds = Series("unseeded_seconds")
    seeded_seconds_series = Series("seeded_seconds")
    incumbents = Series("incumbents")
    for r, unseeded, unseeded_seconds, seeded, seeded_seconds in rows:
        # The gate: identical answers, never a larger explored tree.
        assert [(c.nodes, c.positive_edges, c.negative_edges) for c in seeded.cliques] \
            == [(c.nodes, c.positive_edges, c.negative_edges) for c in unseeded.cliques]
        assert seeded.stats.recursions <= unseeded.stats.recursions
        recursions.add(r, unseeded.stats.recursions)
        seeded_recursions.add(r, seeded.stats.recursions)
        seconds.add(r, round(unseeded_seconds, 3))
        seeded_seconds_series.add(r, round(seeded_seconds, 3))
        incumbents.add(r, seeded.parallel["seeded"]["incumbents"])

    record_exhibits(
        "topr_seeded",
        Exhibit(
            title="Extension: warm-started vs cold top-r (slashdot, 4, 3)",
            series=[
                recursions,
                seeded_recursions,
                seconds,
                seeded_seconds_series,
                incumbents,
            ],
            notes=[
                "identical clique lists at every r; recursions gate "
                "seeded <= unseeded (subspaces explored, noise-free)"
            ],
        ),
        extra={
            "strategy": "portfolio",
            "best_size": rows[-1][3].parallel["seeded"]["best_size"],
        },
    )


def test_topr_speed_default_point(benchmark):
    graph = get_dataset("dblp").graph

    def run():
        return MSCE(graph, AlphaK(4, 3)).top_r(DEFAULT_R)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.cliques
