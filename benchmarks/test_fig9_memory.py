"""Fig. 9: memory overhead of MSCE-G relative to graph size.

Paper shape: the enumerator's memory stays above the graph size but
clearly below twice the graph size — i.e., the search state is O(m + n).
The Python analogue compares tracemalloc's peak allocation during the
enumeration (graph storage excluded, since it pre-exists the trace)
against the estimated adjacency footprint.
"""

from benchmarks.conftest import record_exhibits
from repro.experiments import fig9_memory


def test_fig9_memory(benchmark):
    exhibits = benchmark.pedantic(fig9_memory, rounds=1, iterations=1)
    record_exhibits("fig9", exhibits)
    by_label = exhibits.series_by_label()
    graph_bytes = by_label["graph bytes (est.)"]
    peaks = by_label["MSCE-G peak bytes"]
    for name, graph_size, peak in zip(graph_bytes.x, graph_bytes.y, peaks.y):
        # Linear-space claim: the search working set stays within the
        # order of the graph itself (2x, as in the paper's figure).
        assert peak <= 2.0 * graph_size, f"{name}: peak {peak} vs graph {graph_size}"
        assert peak > 0
