"""Shared helpers for the benchmark suite.

Each benchmark file regenerates one exhibit of the paper (see DESIGN.md
section 4), asserts its *shape* claims (who wins, monotone trends), and
records the rendered rows under ``benchmarks/results/`` so EXPERIMENTS.md
can cite exact numbers.

Knobs (environment):

* ``REPRO_BENCH_FULL=1`` — the paper's full alpha/k/r grids instead of
  the fast 3-point grids;
* ``REPRO_BENCH_TIME_LIMIT`` — per-enumeration cap in seconds
  (default 15).
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Iterable, Optional, Union

import repro
from repro.experiments.harness import Exhibit
from repro.fastpath import resolve_backend

RESULTS_DIR = Path(__file__).parent / "results"

#: Schema revision of the ``BENCH_<name>.json`` artifacts; bump on shape
#: changes so downstream dashboards can dispatch on it.
#: v2: adds the resolved ``backend`` (kernel tier, honouring
#: ``REPRO_BACKEND``) and an optional benchmark-specific ``extra`` block.
BENCH_JSON_SCHEMA = 2


def _exhibit_payload(exhibit: Exhibit) -> dict:
    """One exhibit as plain JSON-serialisable data (mirrors the text table)."""
    return {
        "title": exhibit.title,
        "notes": list(exhibit.notes),
        "series": [
            {"label": series.label, "x": list(series.x), "y": list(series.y)}
            for series in exhibit.series
        ],
    }


def record_exhibits(
    name: str,
    exhibits: Union[Exhibit, Iterable[Exhibit]],
    extra: Optional[dict] = None,
) -> str:
    """Render exhibits to text + JSON, save under results/, return the text.

    Two artifacts per benchmark: ``<name>.txt`` (the human-readable table
    EXPERIMENTS.md cites) and ``BENCH_<name>.json`` (the same rows as
    machine-readable data, uploaded by CI for trend tracking). The JSON
    payload stamps the resolved kernel ``backend`` — set ``REPRO_BACKEND``
    to re-run a gate under a specific tier — and merges ``extra`` (e.g.
    per-kernel speedup maps) under an ``"extra"`` key.
    """
    if isinstance(exhibits, Exhibit):
        exhibits = [exhibits]
    exhibits = list(exhibits)
    text = "\n\n".join(exhibit.render() for exhibit in exhibits)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    payload = {
        "schema": BENCH_JSON_SCHEMA,
        "name": name,
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "backend": resolve_backend(None),
        "exhibits": [_exhibit_payload(exhibit) for exhibit in exhibits],
    }
    if extra:
        payload["extra"] = dict(extra)
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"\n{text}\n")
    return text
