"""Shared helpers for the benchmark suite.

Each benchmark file regenerates one exhibit of the paper (see DESIGN.md
section 4), asserts its *shape* claims (who wins, monotone trends), and
records the rendered rows under ``benchmarks/results/`` so EXPERIMENTS.md
can cite exact numbers.

Knobs (environment):

* ``REPRO_BENCH_FULL=1`` — the paper's full alpha/k/r grids instead of
  the fast 3-point grids;
* ``REPRO_BENCH_TIME_LIMIT`` — per-enumeration cap in seconds
  (default 15).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.experiments.harness import Exhibit

RESULTS_DIR = Path(__file__).parent / "results"


def record_exhibits(name: str, exhibits: Union[Exhibit, Iterable[Exhibit]]) -> str:
    """Render exhibits to text, save under results/, and return the text."""
    if isinstance(exhibits, Exhibit):
        exhibits = [exhibits]
    text = "\n\n".join(exhibit.render() for exhibit in exhibits)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")
    return text
