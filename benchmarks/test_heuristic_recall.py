"""Extension benchmark: greedy heuristic vs exact enumeration.

Quantifies the approximate mode's trade: a fraction of the cliques at a
fraction of the cost, with the *largest* cliques reliably found (the
top-size recall that matters for top-r-style use).
"""

from benchmarks.conftest import record_exhibits
from repro.core import MSCE, AlphaK
from repro.core.heuristic import greedy_signed_cliques
from repro.experiments.harness import Exhibit, Series, measure, time_limit_seconds
from repro.experiments.registry import get_dataset


def test_greedy_vs_exact(benchmark):
    graph = get_dataset("slashdot").graph
    params = AlphaK(4, 3)
    limit = time_limit_seconds()

    exact, exact_seconds = measure(
        lambda: MSCE(graph, params, time_limit=limit).enumerate_all()
    )
    greedy, greedy_seconds = measure(greedy_signed_cliques, graph, 4, 3)
    benchmark.pedantic(greedy_signed_cliques, args=(graph, 4, 3), rounds=3, iterations=1)

    exact_sets = {c.nodes for c in exact.cliques}
    greedy_sets = {c.nodes for c in greedy}
    if not exact.timed_out:
        # Soundness: every greedy clique is a true maximal clique.
        assert greedy_sets <= exact_sets
        # Top-size recall: the heuristic finds a largest clique.
        assert max(len(s) for s in greedy_sets) == max(len(s) for s in exact_sets)

    counts = Series("cliques")
    counts.add("exact", len(exact_sets))
    counts.add("greedy", len(greedy_sets))
    seconds = Series("seconds")
    seconds.add("exact", round(exact_seconds, 3))
    seconds.add("greedy", round(greedy_seconds, 3))
    record_exhibits(
        "heuristic_recall",
        Exhibit(
            title="Extension: greedy heuristic vs exact MSCE (slashdot, 4, 3)",
            series=[counts, seconds],
            notes=[
                f"recall {len(greedy_sets)}/{len(exact_sets)}; "
                "every greedy clique is certified maximal"
            ],
        ),
    )
