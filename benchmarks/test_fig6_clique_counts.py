"""Fig. 6: the number of maximal (alpha, k)-cliques across the sweeps.

Paper shapes:

* Fig. 6(a-b) Slashdot — counts fall as alpha and k grow (the
  positive-edge constraint dominates);
* Fig. 6(c) DBLP — counts fall with alpha;
* Fig. 6(d) DBLP — counts *rise* with k (the negative-edge budget
  dominates inside DBLP's huge mixed-sign co-authorship cliques). At
  full dataset scale that regime reaches 10K-10M cliques — out of
  pure-Python reach — so the rising shape is reproduced on an isolated
  consortium block (`fig6_growth_mechanism`), as documented in
  EXPERIMENTS.md.
"""

from benchmarks.conftest import record_exhibits
from repro.experiments import fig6_clique_counts, fig6_growth_mechanism


def _non_increasing(values):
    return all(a >= b for a, b in zip(values, values[1:]))


def test_fig6_clique_counts(benchmark):
    exhibits = benchmark.pedantic(fig6_clique_counts, rounds=1, iterations=1)
    record_exhibits("fig6", exhibits)
    by_title = {exhibit.title: exhibit for exhibit in exhibits}
    for title, exhibit in by_title.items():
        counts = exhibit.series[0].y
        complete = not exhibit.notes  # time-capped points are lower bounds
        if "slashdot" in title and complete:
            # Paper Fig. 6(a-b): monotone decline on Slashdot.
            assert _non_increasing(counts), title
        if "dblp" in title and "vary alpha" in title and complete:
            # Paper Fig. 6(c): decline with alpha on DBLP. Skipped when
            # the time cap truncated any point (counts incomparable).
            assert _non_increasing(counts), title
        # Some setting must produce a non-trivial population.
        assert max(counts) > 0, title


def test_fig6d_growth_mechanism(benchmark):
    exhibit = benchmark.pedantic(
        fig6_growth_mechanism, kwargs={"ks": (1, 2, 3)}, rounds=1, iterations=1
    )
    record_exhibits("fig6_mechanism", exhibit)
    counts = exhibit.series[0].y
    # Paper Fig. 6(d): the count rises while the negative budget binds.
    assert counts[1] > counts[0]
    assert counts[2] > counts[1]
