"""Fig. 3: MCCore computation time — MCBasic (Alg. 2) vs MCNew (Alg. 3).

Paper shape: both are fast; MCNew consistently beats MCBasic across the
alpha and k sweeps (up to 4x on Slashdot). We assert aggregate dominance
with slack for timer noise, plus exact agreement of the outputs.
"""

from benchmarks.conftest import record_exhibits
from repro.core import AlphaK, mccore_basic, mccore_new
from repro.experiments import fig3_reduction_time
from repro.experiments.registry import get_dataset


def test_fig3_reduction_time(benchmark):
    exhibits = benchmark.pedantic(fig3_reduction_time, rounds=1, iterations=1)
    record_exhibits("fig3", exhibits)
    for exhibit in exhibits:
        by_label = exhibit.series_by_label()
        total_new = sum(by_label["MCNew"].y)
        total_basic = sum(by_label["MCBasic"].y)
        # Paper: MCNew consistently outperforms MCBasic. Allow 20%
        # slack per-exhibit for wall-clock noise at millisecond scales.
        assert total_new <= total_basic * 1.2, exhibit.title


def test_mcbasic_mcnew_same_output_on_slashdot(benchmark):
    graph = get_dataset("slashdot").graph
    params = AlphaK(4, 3)
    new_result = benchmark(mccore_new, graph, params)
    assert new_result == mccore_basic(graph, params)


def test_mcbasic_speed_default_point(benchmark):
    graph = get_dataset("slashdot").graph
    result = benchmark(mccore_basic, graph, AlphaK(4, 3))
    assert isinstance(result, set)
