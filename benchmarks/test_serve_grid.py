"""Extension benchmark: the serving engine's batch grid vs a naive loop.

A monitoring dashboard (or parameter sweep) repeatedly asks for the same
(alpha, k) grid. The naive client runs one-shot
:func:`repro.core.api.enumerate_with_stats` per point per refresh,
re-coring and re-searching every time. The serving engine compiles the
graph once, shares one coring pass per distinct ceiling ``ceil(alpha*k)``
across the grid, and serves refreshes from its two-tier cache — while
returning bit-identical cliques *and* stats for every point of every
pass (asserted below, not assumed).

The gate: over ``PASSES`` refreshes of the grid, the engine must be at
least ``MIN_SPEEDUP``x faster than the naive loop end to end.
"""

import os
import time

from benchmarks.conftest import record_exhibits
from repro.core.api import enumerate_with_stats
from repro.core.params import AlphaK
from repro.experiments.harness import Exhibit, Series
from repro.experiments.registry import get_dataset
from repro.serve import SignedCliqueEngine

#: Grid refreshes in the workload (1 cold + the rest warm).
PASSES = 3

#: The hard acceptance gate on end-to-end speedup.
MIN_SPEEDUP = 2.0

ALPHAS = [8.0, 12.0, 16.0, 24.0, 48.0]
KS = [1, 2, 3, 6]
if os.environ.get("REPRO_BENCH_FULL"):
    ALPHAS = ALPHAS + [6.0, 32.0, 96.0]
    KS = KS + [4, 12]


def test_serve_grid_beats_naive_loop():
    graph = get_dataset("slashdot").graph
    points = list(dict.fromkeys(AlphaK(a, k) for a in ALPHAS for k in KS))
    ceilings = {p.positive_threshold for p in points}

    naive_pass_seconds = []
    reference = {}
    for _ in range(PASSES):
        start = time.perf_counter()
        answers = {
            p: enumerate_with_stats(graph, p.alpha, p.k) for p in points
        }
        naive_pass_seconds.append(time.perf_counter() - start)
        reference = answers

    engine = SignedCliqueEngine(graph)
    engine_pass_seconds = []
    grids = []
    for _ in range(PASSES):
        start = time.perf_counter()
        grids.append(engine.run_grid(ALPHAS, KS))
        engine_pass_seconds.append(time.perf_counter() - start)

    # Transparency: every point of every pass is bit-identical to the
    # one-shot API — cliques and search statistics.
    for grid in grids:
        assert len(grid) == len(points)
        for params, result in grid.items():
            assert result.cliques == reference[params].cliques, params
            assert result.stats == reference[params].stats, params

    naive_total = sum(naive_pass_seconds)
    engine_total = sum(engine_pass_seconds)
    speedup = naive_total / max(engine_total, 1e-9)

    exhibit = Exhibit(
        title=(
            f"Serving engine vs naive per-query loop "
            f"({len(points)} grid points x {PASSES} passes, slashdot stand-in)"
        ),
        series=[
            Series(
                "naive one-shot loop (s)",
                x=list(range(1, PASSES + 1)),
                y=[round(s, 4) for s in naive_pass_seconds],
            ),
            Series(
                "engine run_grid (s)",
                x=list(range(1, PASSES + 1)),
                y=[round(s, 4) for s in engine_pass_seconds],
            ),
        ],
        notes=[
            f"end-to-end speedup: {speedup:.2f}x (gate: >= {MIN_SPEEDUP:.1f}x)",
            f"{len(points)} settings share {len(ceilings)} distinct "
            f"ceil(alpha*k) coring passes "
            f"(reduction sharing {engine.sharing_ratio:.0%})",
            f"warm passes served from cache: "
            f"{engine.counters['grid_cache_hits']} of "
            f"{engine.counters['grid_points']} grid points "
            f"({engine.counters['memory_hits']} memory hits)",
            "every point of every pass asserted bit-identical to the "
            "one-shot API (cliques and stats)",
        ],
    )
    record_exhibits("serve_grid", exhibit)

    # Structural claims, then the hard gate.
    assert engine.counters["grid_cache_hits"] == (PASSES - 1) * len(points)
    assert engine.counters["reduce_computed"] == len(ceilings)
    assert engine.sharing_ratio > 0
    assert speedup >= MIN_SPEEDUP, (
        f"serving engine only {speedup:.2f}x faster than the naive loop "
        f"(naive {naive_total:.3f}s, engine {engine_total:.3f}s)"
    )
