"""Extension benchmark: the Section-III Remark, made executable.

The paper remarks that the MCCore is "fundamentally different" from the
k-truss: it mixes signs, directs its ego-triangle counts per endpoint,
and deletes nodes as well as edges. This benchmark compares the node
sets the two models keep on the Slashdot stand-in at the default
parameters, confirming that neither subsumes the other as a reduction.
"""

from benchmarks.conftest import record_exhibits
from repro.algorithms import k_truss, truss_vs_mccore
from repro.core import AlphaK, mccore_new
from repro.experiments.harness import Exhibit, Series
from repro.experiments.registry import get_dataset


def test_truss_vs_mccore(benchmark):
    graph = get_dataset("slashdot").graph
    report = benchmark.pedantic(
        truss_vs_mccore, args=(graph, 4, 3), rounds=1, iterations=1
    )
    survivors = Series("surviving nodes")
    for label in ("graph", "positive-core", "mccore", "positive-truss"):
        survivors.add(label, report[label])
    exhibit = Exhibit(
        title="Extension: MCCore vs positive k-truss (slashdot, alpha=4, k=3)",
        series=[survivors],
    )

    # The paper's containment lemmas hold.
    assert report["mccore"] <= report["positive-core"] <= report["graph"]

    # The Remark's "fundamentally different": the truss at the matching
    # order keeps a different node set than the MCCore (neither empty
    # implies the other) — quantified here rather than asserted as a
    # strict inequality, since degenerate graphs can coincide.
    params = AlphaK(4, 3)
    mccore_nodes = mccore_new(graph, params)
    truss_nodes = k_truss(graph, params.positive_threshold + 1, sign="positive")
    only_mccore = len(mccore_nodes - truss_nodes)
    only_truss = len(truss_nodes - mccore_nodes)
    exhibit.notes.append(
        f"MCCore-only nodes: {only_mccore}, truss-only nodes: {only_truss}"
    )
    record_exhibits("truss_comparison", exhibit)
    assert only_mccore + only_truss > 0, "models coincide on this graph (unexpected)"
