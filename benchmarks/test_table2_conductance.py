"""Table II: average signed conductance of the four community models.

Paper shape: SignedClique scores lowest (best) in every row; the
core-based models trail far behind; the SignedClique-vs-TClique margin
is small (0.003-0.09 in the paper).

Reproduced shape: SignedClique beats Core and SignedCore on every
dataset by a wide margin. On the planted stand-ins TClique's pure
positive cliques score at or below SignedClique — the sub-0.1 margin
between those two models is below synthetic-data resolution; see
EXPERIMENTS.md for the analysis.
"""

from benchmarks.conftest import record_exhibits
from repro.experiments import table2_conductance


def test_table2_conductance(benchmark):
    exhibit = benchmark.pedantic(table2_conductance, rounds=1, iterations=1)
    record_exhibits("table2", exhibit)
    by_label = exhibit.series_by_label()
    names = by_label["SignedClique"].x
    signed_clique = dict(zip(names, by_label["SignedClique"].y))
    core = dict(zip(names, by_label["Core"].y))
    signed_core = dict(zip(names, by_label["SignedCore"].y))
    for name in names:
        # Paper: SignedClique's conductance is lower (better) than both
        # core-based baselines on every dataset.
        assert signed_clique[name] < core[name], name
        assert signed_clique[name] <= signed_core[name], name
        # Conductance is bounded.
        assert -1.0 <= signed_clique[name] <= 1.0
