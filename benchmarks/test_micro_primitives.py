"""Micro-benchmarks of the algorithmic primitives (regression suite).

Not a paper exhibit — these pin the cost of the hot building blocks
(core peeling, ego-triangle initialisation, Bron–Kerbosch, maximality
testing) so refactors that regress the enumerator show up at the
primitive level first. The fastpath-vs-pure comparison at the bottom
additionally records a speedup table under
``benchmarks/results/micro_primitives.txt``.
"""

import random
import time

import pytest

from benchmarks.conftest import record_exhibits
from repro.algorithms import core_numbers, icore, maximal_cliques
from repro.algorithms.kcore import icore_tracked
from repro.algorithms.triangles import all_ego_triangle_degrees, triangle_count
from repro.core import AlphaK
from repro.core.maxtest import is_maximal
from repro.core.mcnew import mccore_new
from repro.experiments.harness import Exhibit, Series
from repro.experiments.registry import get_dataset
from repro.fastpath import compile_graph, resolve_backend
from repro.fastpath.bitset import bit_count
from repro.fastpath.kernels import (
    core_numbers_fast,
    ego_triangle_degrees_fast,
    triangle_count_fast,
)
from repro.graphs import SignedGraph


def test_icore_positive(benchmark):
    graph = get_dataset("slashdot").graph
    flag, members = benchmark(icore, graph, (), 12, None, "positive")
    assert flag and members


def test_icore_tracked_fresh(benchmark):
    graph = get_dataset("slashdot").graph

    def run():
        return icore_tracked(graph, set(), 12, graph.node_set(), None, sign="positive")

    flag, members, degrees = benchmark(run)
    assert flag and len(degrees) == len(members)


def test_core_numbers(benchmark):
    graph = get_dataset("slashdot").graph
    numbers = benchmark(core_numbers, graph)
    assert max(numbers.values()) > 0


def test_ego_triangle_initialisation(benchmark):
    graph = get_dataset("slashdot").graph
    deltas = benchmark(all_ego_triangle_degrees, graph)
    assert deltas


def test_mcnew_default_point(benchmark):
    graph = get_dataset("slashdot").graph
    survivors = benchmark(mccore_new, graph, AlphaK(4, 3))
    assert survivors


def test_bron_kerbosch_positive(benchmark):
    graph = get_dataset("flysign").graph

    def run():
        return sum(1 for _ in maximal_cliques(graph, sign="positive"))

    count = benchmark(run)
    assert count > 0


def test_exact_maxtest(benchmark):
    graph = get_dataset("slashdot").graph
    params = AlphaK(4, 3)
    from repro.core import MSCE

    clique = MSCE(graph, params).top_r(1).cliques[0]
    verdict = benchmark(is_maximal, graph, set(clique.nodes), params)
    assert verdict


# -- fastpath vs pure --------------------------------------------------------


@pytest.fixture(scope="module")
def large_random_graph() -> SignedGraph:
    """10k-node random signed graph, ~100k edges (sampled, not G(n, p))."""
    rng = random.Random(20180414)
    n, m = 10_000, 100_000
    edges = {}
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key not in edges:
            edges[key] = -1 if rng.random() < 0.25 else 1
    return SignedGraph(
        ((u, v, sign) for (u, v), sign in edges.items()), nodes=range(n)
    )


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fastpath_speedups_on_10k_graph(large_random_graph):
    """Record pure-vs-kernel-tier timings; assert the headline speedup gates.

    Three columns per kernel: the hashed-adjacency pure implementation,
    the tier-0 fastpath (``backend="python"``, big-int bitsets), and the
    resolved vectorized tier (``REPRO_BACKEND`` honoured, so the gate can
    be re-run per tier). Gates: tier 0 keeps its historic >=2x claim;
    the vectorized tier must reach >=5x on core decomposition and
    triangle counting and >=3x on ego-triangle degrees, all vs pure.
    """
    graph = large_random_graph
    compile_seconds = _best_of(lambda: compile_graph(graph), repeats=1)
    compiled = compile_graph(graph)
    backend = resolve_backend(None)
    tiered = backend != "python"

    pure = Series("pure_s")
    fast = Series("fastpath_s")
    speedup = Series("speedup")
    tier = Series(f"{backend}_s")
    tier_speedup = Series(f"{backend}_x")
    speedups = {}

    def record(label, pure_fn, fast_fn, tier_fn=None, repeats=3):
        pure_result, fast_result = pure_fn(), fast_fn()
        assert fast_result == pure_result, f"{label}: fastpath output differs"
        pure_time = _best_of(pure_fn, repeats)
        fast_time = _best_of(fast_fn, repeats)
        pure.add(label, pure_time)
        fast.add(label, fast_time)
        speedup.add(label, pure_time / fast_time)
        entry = {"python": pure_time / fast_time}
        if tier_fn is not None and tiered:
            assert tier_fn() == pure_result, f"{label}: {backend} output differs"
            tier_time = _best_of(tier_fn, repeats)
            tier.add(label, tier_time)
            tier_speedup.add(label, pure_time / tier_time)
            entry[backend] = pure_time / tier_time
        speedups[label] = entry
        return entry

    core_entry = record(
        "core-decomposition",
        lambda: core_numbers(graph),
        lambda: core_numbers_fast(compiled, backend="python"),
        lambda: core_numbers_fast(compiled, backend=backend),
    )
    tri_entry = record(
        "triangle-count",
        lambda: triangle_count(graph),
        lambda: triangle_count_fast(compiled, backend="python"),
        lambda: triangle_count_fast(compiled, backend=backend),
    )
    ego_entry = record(
        "ego-triangle-degrees",
        lambda: all_ego_triangle_degrees(graph),
        lambda: ego_triangle_degrees_fast(compiled, backend="python"),
        lambda: ego_triangle_degrees_fast(compiled, backend=backend),
    )

    # Candidate-set intersection: hashed set & set vs one big-int AND vs
    # the packed batched primitive (one fancy-indexed AND + row popcount).
    rng = random.Random(7)
    pairs = [
        (rng.randrange(compiled.n), rng.randrange(compiled.n)) for _ in range(2000)
    ]
    index = compiled.index
    neighbor_sets = {index[u]: graph.neighbor_keys(u) for u in graph.nodes()}
    masks = compiled.masks("all")

    def pure_intersections():
        return [len(neighbor_sets[u] & neighbor_sets[v]) for u, v in pairs]

    def fast_intersections():
        return [bit_count(masks[u] & masks[v]) for u, v in pairs]

    packed_intersections = None
    if tiered:
        import numpy as np

        from repro.fastpath import vectorized

        rows_np = np.array([u for u, _ in pairs], dtype=np.int64)
        cols_np = np.array([v for _, v in pairs], dtype=np.int64)
        packed_rows = compiled.packed("all")

        def packed_intersections():
            return vectorized.pair_popcounts(
                packed_rows, packed_rows, rows_np, cols_np
            ).tolist()

    record(
        "candidate-intersection",
        pure_intersections,
        fast_intersections,
        packed_intersections,
    )

    series = [pure, fast, speedup] + ([tier, tier_speedup] if tiered else [])
    exhibit = Exhibit(
        title="Micro-primitives: pure Python vs kernel tiers (10k nodes, 100k edges)",
        series=series,
        notes=[
            f"one-off compile_graph cost: {compile_seconds:.4g}s",
            "candidate-intersection row = 2000 random neighbourhood pairs",
            f"resolved kernel backend: {backend}",
        ],
    )
    record_exhibits(
        "micro_primitives",
        exhibit,
        extra={
            "speedups": speedups,
            "gates": {
                "python": "max(core, triangle) >= 2x",
                "vectorized": "core >= 5x, triangle >= 5x, ego >= 3x",
            },
        },
    )

    # Acceptance gates. Tier 0 keeps the historic >=2x headline claim.
    core_x, tri_x = core_entry["python"], tri_entry["python"]
    assert max(core_x, tri_x) >= 2.0, (
        f"expected >=2x speedup, got core={core_x:.2f}x triangles={tri_x:.2f}x"
    )
    if tiered:
        assert core_entry[backend] >= 5.0, (
            f"{backend} core-decomposition gate: {core_entry[backend]:.2f}x < 5x"
        )
        assert tri_entry[backend] >= 5.0, (
            f"{backend} triangle-count gate: {tri_entry[backend]:.2f}x < 5x"
        )
        assert ego_entry[backend] >= 3.0, (
            f"{backend} ego-triangle-degrees gate: {ego_entry[backend]:.2f}x < 3x"
        )


# -- observability: disabled-path overhead -----------------------------------


def test_disabled_observability_overhead_within_5_percent():
    """Null-observer instrumentation must cost <5% of enumeration time.

    With no observer installed the obs subsystem reduces to registry
    counter increments (SearchStats is registry-backed) plus no-op span
    context managers. This gate bounds that residual: per-operation cost
    of each primitive, times the operation counts of a real enumeration,
    must stay under 5% of that enumeration's wall time.
    """
    from repro.core import MSCE
    from repro.obs import runtime as obs
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.runtime import Observer

    previous = obs.install(Observer.disabled())
    try:
        graph = get_dataset("slashdot").graph
        params = AlphaK(4, 3)

        elapsed = _best_of(lambda: MSCE(graph, params).enumerate_all())
        result = MSCE(graph, params).enumerate_all()
        increments = sum(result.stats.as_dict().values())

        ops = 200_000
        counter = MetricsRegistry().counter("bench")

        def inc_loop():
            for _ in range(ops):
                counter.inc()

        def int_loop():
            total = 0
            for _ in range(ops):
                total += 1
            return total

        # Counter.inc() vs the bare `int += 1` the seed used: the delta is
        # what the registry-backed SearchStats adds per stat increment.
        per_increment = max(0.0, (_best_of(inc_loop) - _best_of(int_loop)) / ops)

        spans = 2_000
        def span_loop():
            for _ in range(spans):
                with obs.span("bench"):
                    pass

        per_span = _best_of(span_loop) / spans
        # Spans per run: root + enumerate + merge, plus reduce + mccore
        # per component.
        span_count = 3 + 2 * result.stats.components

        overhead = per_increment * increments + per_span * span_count
        fraction = overhead / elapsed
        stats_series = Series("seconds")
        stats_series.add("enumeration", elapsed)
        stats_series.add("instrumentation-residual", overhead)
        record_exhibits(
            "obs_disabled_overhead",
            Exhibit(
                title="Disabled-path observability overhead (slashdot, alpha=4 k=3)",
                series=[stats_series],
                notes=[
                    f"stat increments: {increments}, null spans: {span_count}",
                    f"overhead fraction: {fraction:.4%} (gate: <5%)",
                ],
            ),
        )
        assert fraction < 0.05, (
            f"disabled-path observability overhead {fraction:.2%} exceeds 5% gate"
        )
    finally:
        obs.install(previous)
