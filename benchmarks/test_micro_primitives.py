"""Micro-benchmarks of the algorithmic primitives (regression suite).

Not a paper exhibit — these pin the cost of the hot building blocks
(core peeling, ego-triangle initialisation, Bron–Kerbosch, maximality
testing) so refactors that regress the enumerator show up at the
primitive level first.
"""

from repro.algorithms import core_numbers, icore, maximal_cliques
from repro.algorithms.kcore import icore_tracked
from repro.algorithms.triangles import all_ego_triangle_degrees
from repro.core import AlphaK
from repro.core.maxtest import is_maximal
from repro.core.mcnew import mccore_new
from repro.experiments.registry import get_dataset


def test_icore_positive(benchmark):
    graph = get_dataset("slashdot").graph
    flag, members = benchmark(icore, graph, (), 12, None, "positive")
    assert flag and members


def test_icore_tracked_fresh(benchmark):
    graph = get_dataset("slashdot").graph

    def run():
        return icore_tracked(graph, set(), 12, graph.node_set(), None, sign="positive")

    flag, members, degrees = benchmark(run)
    assert flag and len(degrees) == len(members)


def test_core_numbers(benchmark):
    graph = get_dataset("slashdot").graph
    numbers = benchmark(core_numbers, graph)
    assert max(numbers.values()) > 0


def test_ego_triangle_initialisation(benchmark):
    graph = get_dataset("slashdot").graph
    deltas = benchmark(all_ego_triangle_degrees, graph)
    assert deltas


def test_mcnew_default_point(benchmark):
    graph = get_dataset("slashdot").graph
    survivors = benchmark(mccore_new, graph, AlphaK(4, 3))
    assert survivors


def test_bron_kerbosch_positive(benchmark):
    graph = get_dataset("flysign").graph

    def run():
        return sum(1 for _ in maximal_cliques(graph, sign="positive"))

    count = benchmark(run)
    assert count > 0


def test_exact_maxtest(benchmark):
    graph = get_dataset("slashdot").graph
    params = AlphaK(4, 3)
    from repro.core import MSCE

    clique = MSCE(graph, params).top_r(1).cliques[0]
    verdict = benchmark(is_maximal, graph, set(clique.nodes), params)
    assert verdict
