"""Extension benchmark: incremental clique maintenance vs recompute.

Applies a burst of random edge updates to the Slashdot stand-in through
the :class:`DynamicSignedCliqueIndex` and compares the per-update cost
against re-enumerating from scratch, asserting exact agreement of the
maintained answer set.
"""

import random

from benchmarks.conftest import record_exhibits
from repro.core import MSCE, AlphaK, DynamicSignedCliqueIndex
from repro.experiments.harness import Exhibit, Series, measure
from repro.experiments.registry import get_dataset

UPDATES = 15


def _random_edits(graph, count, seed):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    edits = []
    work = graph.copy()
    while len(edits) < count:
        u, v = rng.sample(nodes, 2)
        if work.has_edge(u, v):
            if rng.random() < 0.5:
                edits.append(("remove", u, v))
                work.remove_edge(u, v)
            else:
                sign = -work.sign(u, v)
                edits.append(("flip", u, v, sign))
                work.set_sign(u, v, sign)
        else:
            sign = rng.choice([1, -1])
            edits.append(("add", u, v, sign))
            work.add_edge(u, v, sign)
    return edits


def test_dynamic_maintenance_vs_recompute(benchmark):
    graph = get_dataset("slashdot").graph
    params = AlphaK(4, 3)
    edits = _random_edits(graph, UPDATES, seed=5)

    index = DynamicSignedCliqueIndex(graph, params)

    def apply_all():
        index.apply_edits(edits)
        return index

    _result, incremental_seconds = measure(apply_all)

    # Correctness: the maintained set equals a fresh enumeration.
    fresh, recompute_seconds = measure(
        lambda: MSCE(index.graph, params).enumerate_all()
    )
    assert {c.nodes for c in fresh.cliques} == {c.nodes for c in index.cliques()}

    # One incremental update must cost (much) less than one recompute.
    per_update = incremental_seconds / UPDATES
    assert per_update <= recompute_seconds * 1.2 + 0.05

    def one_update_cycle():
        # Benchmark a representative flip + restore cycle.
        u, v = edits[0][1], edits[0][2]
        if index.graph.has_edge(u, v):
            sign = index.graph.sign(u, v)
            index.remove_edge(u, v)
            index.add_edge(u, v, sign)
        else:
            index.add_edge(u, v, 1)
            index.remove_edge(u, v)

    benchmark.pedantic(one_update_cycle, rounds=3, iterations=1)

    seconds = Series("seconds")
    seconds.add(f"{UPDATES} incremental updates", round(incremental_seconds, 4))
    seconds.add("one full recompute", round(recompute_seconds, 4))
    record_exhibits(
        "dynamic_index",
        Exhibit(
            title="Extension: dynamic clique maintenance (slashdot, 4, 3)",
            series=[seconds],
            notes=[f"per-update cost {per_update:.4f}s"],
        ),
    )
