"""Cooperative wall-clock and memory guards for long-running searches.

A :class:`ResourceGuard` is a small, shareable "should I stop?" oracle
threaded from the public entry points (``enumerate_parallel``, ``MSCE``)
down into the frame loop of
:class:`repro.fastpath.search.FrameSearch`. Instead of raising out of
the middle of a branch-and-bound recursion, a tripped guard lets the
search stop *cooperatively*: the remaining frames are recorded as
incomplete work and a partial result is returned, which is what lets a
deadline or memory ceiling yield a usable
:class:`~repro.core.bbe.EnumerationResult` instead of losing minutes of
completed subtrees.

The guard is latched: once it trips, every subsequent :meth:`check`
returns the same reason immediately, so a loop over many components (or
many queued frames) drains fast after the first trip. Deadlines are
compared against a caller-supplied clock — ``time.monotonic`` for
cross-process deadlines (``CLOCK_MONOTONIC`` is system-wide on the
POSIX platforms the parallel path runs on), ``time.perf_counter`` for
the single-process enumerator's ``time_limit``.

Memory is measured with ``resource.getrusage`` (peak RSS), polled every
:data:`MEMORY_STRIDE` checks to keep the per-frame cost to one integer
comparison. On platforms without the ``resource`` module the memory
guard is inert.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Callable, Optional

#: Frames between two peak-RSS polls (must be a power of two).
MEMORY_STRIDE = 64

#: Reason strings a tripped guard reports.
REASON_DEADLINE = "deadline"
REASON_MEMORY = "memory"

#: Environment variable naming the default soft memory budget (bytes,
#: with an optional kb/mb/gb suffix) for budgeted enumeration runs.
MEMORY_BUDGET_ENV = "REPRO_MEMORY_BUDGET"

_BUDGET_SUFFIXES = {"kb": 1 << 10, "mb": 1 << 20, "gb": 1 << 30,
                    "k": 1 << 10, "m": 1 << 20, "g": 1 << 30}

#: Suffix -> seconds scale for :func:`parse_deadline`. Ordered so the
#: longer suffix is tried first ("150ms" must not parse as "150m" + s).
_DEADLINE_SUFFIXES = (("ms", 1e-3), ("s", 1.0))

try:  # pragma: no cover - import guard for non-POSIX platforms
    import resource as _resource
except ImportError:  # pragma: no cover - Windows
    _resource = None


def rss_bytes() -> Optional[int]:
    """Peak resident-set size of this process in bytes (``None`` if unknown).

    ``ru_maxrss`` is a high-water mark, which is exactly the right
    semantics for a ceiling: a search that ever exceeded the budget
    stays tripped even if the allocator returned pages to the OS.
    """
    if _resource is None:  # pragma: no cover - Windows
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS reports bytes.
    return peak if sys.platform == "darwin" else peak * 1024


def parse_memory_budget(text: str) -> int:
    """Parse a byte count with an optional ``kb``/``mb``/``gb`` suffix."""
    value = text.strip().lower()
    scale = 1
    for suffix, multiplier in _BUDGET_SUFFIXES.items():
        if value.endswith(suffix):
            value = value[: -len(suffix)].strip()
            scale = multiplier
            break
    try:
        return int(value) * scale
    except ValueError as exc:
        raise ValueError(
            f"invalid memory budget {text!r}: expected bytes with an "
            "optional kb/mb/gb suffix"
        ) from exc


def parse_deadline(text: str) -> float:
    """Parse a duration with an optional ``ms``/``s`` suffix into seconds.

    Mirrors :func:`parse_memory_budget`: a bare number means seconds,
    ``"150ms"`` means 0.15 and ``"2.5s"`` means 2.5. The serving layer
    (:mod:`repro.net`) uses this for per-request deadline strings
    (``?deadline=`` / ``X-Deadline``). Non-positive or non-finite
    durations are rejected — a deadline of zero would shed every
    request before it started.
    """
    value = text.strip().lower()
    scale = 1.0
    for suffix, multiplier in _DEADLINE_SUFFIXES:
        if value.endswith(suffix):
            value = value[: -len(suffix)].strip()
            scale = multiplier
            break
    try:
        seconds = float(value) * scale
    except ValueError as exc:
        raise ValueError(
            f"invalid deadline {text!r}: expected seconds with an "
            "optional ms/s suffix"
        ) from exc
    if not seconds > 0 or seconds != seconds or seconds == float("inf"):
        raise ValueError(f"invalid deadline {text!r}: must be a positive, finite duration")
    return seconds


def resolve_memory_budget(memory_budget_bytes: Optional[int] = None) -> Optional[int]:
    """Resolve the soft budget: explicit argument > env > no budget.

    Mirrors :func:`repro.fastpath.backend.resolve_backend` precedence:
    an explicit ``memory_budget_bytes=`` wins over
    :data:`MEMORY_BUDGET_ENV`, which wins over ``None`` (unbudgeted).
    Non-positive values disable the budget.
    """
    if memory_budget_bytes is None:
        raw = os.environ.get(MEMORY_BUDGET_ENV, "").strip()
        if not raw:
            return None
        memory_budget_bytes = parse_memory_budget(raw)
    if isinstance(memory_budget_bytes, bool) or not isinstance(memory_budget_bytes, int):
        raise ValueError(
            f"memory_budget_bytes must be an integer byte count, got {memory_budget_bytes!r}"
        )
    return memory_budget_bytes if memory_budget_bytes > 0 else None


class ResourceGuard:
    """Latched deadline / memory-ceiling check, cheap enough per frame.

    Parameters
    ----------
    deadline:
        Absolute timestamp (on *clock*'s scale) after which the guard
        trips with reason ``"deadline"``, or ``None`` for no deadline.
    max_memory_bytes:
        Peak-RSS ceiling tripping with reason ``"memory"``, or ``None``.
    memory_budget_bytes:
        *Soft* peak-RSS target, or ``None``. Unlike the ceiling it never
        trips the guard: :meth:`over_budget` merely reports the overrun
        so budget-aware callers (the spill frontier of
        :mod:`repro.fastpath.storage`) can move pending state to disk
        and keep running to completion.
    clock:
        The time source *deadline* is compared against. Use
        ``time.monotonic`` when worker processes must agree on the same
        deadline, ``time.perf_counter`` for process-local limits.
    """

    __slots__ = (
        "deadline",
        "max_memory_bytes",
        "memory_budget_bytes",
        "clock",
        "_calls",
        "_tripped",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_memory_bytes: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        memory_budget_bytes: Optional[int] = None,
    ):
        self.deadline = deadline
        self.max_memory_bytes = max_memory_bytes
        self.memory_budget_bytes = memory_budget_bytes
        self.clock = clock
        self._calls = 0
        self._tripped: Optional[str] = None

    @property
    def enabled(self) -> bool:
        """Whether any limit is configured at all."""
        return (
            self.deadline is not None
            or self.max_memory_bytes is not None
            or self.memory_budget_bytes is not None
        )

    def over_budget(self) -> bool:
        """Whether peak RSS currently exceeds the *soft* budget.

        Advisory and non-latching as far as the guard is concerned
        (``ru_maxrss`` itself is a high-water mark, so once the process
        has peaked past the budget this stays true). Never trips the
        guard: budgeted runs complete, they just spill.
        """
        if self.memory_budget_bytes is None:
            return False
        peak = rss_bytes()
        return peak is not None and peak > self.memory_budget_bytes

    @property
    def tripped(self) -> Optional[str]:
        """The latched trip reason, without re-checking the limits."""
        return self._tripped

    def remaining_time(self) -> Optional[float]:
        """Seconds left until the deadline (``None`` without one).

        Clamped at ``0.0`` once the deadline has passed, so the value
        can be handed straight to ``time_limit=`` parameters
        (:func:`repro.core.parallel.enumerate_parallel`,
        :meth:`repro.serve.SignedCliqueEngine.enumerate_with_stats`) —
        this is how the network layer propagates a request deadline
        into the search it admits: the compute inherits exactly the
        budget its request has left, never more.
        """
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.clock())

    def check(self) -> Optional[str]:
        """Return the trip reason (``"deadline"`` / ``"memory"``) or ``None``.

        The first memory poll happens on the first call, then every
        :data:`MEMORY_STRIDE` calls; the deadline is compared on every
        call (one clock read).
        """
        if self._tripped is not None:
            return self._tripped
        if self.deadline is not None and self.clock() > self.deadline:
            self._trip(REASON_DEADLINE)
            return self._tripped
        if self.max_memory_bytes is not None:
            if (self._calls & (MEMORY_STRIDE - 1)) == 0:
                peak = rss_bytes()
                if peak is not None and peak > self.max_memory_bytes:
                    self._trip(REASON_MEMORY)
                    self._calls += 1
                    return self._tripped
            self._calls += 1
        return None

    def _trip(self, reason: str) -> None:
        """Latch *reason* and journal the (one-time) trip event."""
        self._tripped = reason
        # Imported lazily: limits must stay importable before repro.obs
        # (and the event is emitted at most once per guard).
        from repro.obs import runtime as obs

        obs.journal_event(
            "guard_trip",
            reason=reason,
            deadline=self.deadline,
            max_memory_bytes=self.max_memory_bytes,
        )

    def __repr__(self) -> str:
        return (
            f"ResourceGuard(deadline={self.deadline!r}, "
            f"max_memory_bytes={self.max_memory_bytes!r}, "
            f"tripped={self._tripped!r})"
        )


def make_guard(
    deadline: Optional[float],
    max_memory_bytes: Optional[int],
    clock: Callable[[], float] = time.monotonic,
    memory_budget_bytes: Optional[int] = None,
) -> Optional[ResourceGuard]:
    """Build a guard, or ``None`` when no limit is configured."""
    if deadline is None and max_memory_bytes is None and memory_budget_bytes is None:
        return None
    return ResourceGuard(
        deadline,
        max_memory_bytes,
        clock=clock,
        memory_budget_bytes=memory_budget_bytes,
    )
