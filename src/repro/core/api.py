"""High-level convenience API for signed clique search.

These functions wrap the configurable :class:`~repro.core.bbe.MSCE`
class with the paper's default configuration (MCNew reduction, greedy
selection, exact maximality), so a downstream user can get results in
two lines:

>>> from repro import SignedGraph, enumerate_signed_cliques
>>> g = SignedGraph([(1, 2, "+"), (1, 3, "+"), (2, 3, "+")])
>>> [sorted(c.nodes) for c in enumerate_signed_cliques(g, alpha=2, k=1)]
[[1, 2, 3]]
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.core.bbe import MSCE, EnumerationResult
from repro.core.cliques import SignedClique
from repro.core.params import AlphaK
from repro.core.reduction import reduce_graph
from repro.graphs.signed_graph import Node, SignedGraph


def enumerate_signed_cliques(
    graph: SignedGraph,
    alpha: float,
    k: int,
    selection: str = "greedy",
    reduction: str = "mcnew",
    maxtest: str = "exact",
    seed: int = 0,
    time_limit: Optional[float] = None,
    max_results: Optional[int] = None,
    min_size: Optional[int] = None,
    reducer: Optional[Callable] = None,
    backend: Optional[str] = None,
    model: Optional[str] = None,
) -> List[SignedClique]:
    """Return all maximal (alpha, k)-cliques, largest first.

    See :class:`repro.core.bbe.MSCE` for the meaning of the keyword
    options. For run metadata (statistics, timeout flags) use
    :func:`enumerate_with_stats`.
    """
    return enumerate_with_stats(
        graph,
        alpha,
        k,
        selection=selection,
        reduction=reduction,
        maxtest=maxtest,
        seed=seed,
        time_limit=time_limit,
        max_results=max_results,
        min_size=min_size,
        reducer=reducer,
        backend=backend,
        model=model,
    ).cliques


def enumerate_with_stats(
    graph: SignedGraph,
    alpha: float,
    k: int,
    selection: str = "greedy",
    reduction: str = "mcnew",
    maxtest: str = "exact",
    seed: int = 0,
    time_limit: Optional[float] = None,
    max_results: Optional[int] = None,
    min_size: Optional[int] = None,
    reducer: Optional[Callable] = None,
    backend: Optional[str] = None,
    model: Optional[str] = None,
) -> EnumerationResult:
    """Run the enumerator and return the full :class:`EnumerationResult`.

    ``reducer`` optionally replaces the coring pass on the compiled
    fastpath (see :class:`~repro.core.bbe.MSCE`); the serving engine
    uses it to share reduction work across an (alpha, k) grid.
    ``backend`` selects the kernel tier
    (:data:`repro.fastpath.backend.BACKENDS`); results are bit-identical
    across tiers. ``model`` selects the signed-cohesion constraint
    (:data:`repro.models.MODELS`, default the paper's ``"msce"``).
    """
    params = AlphaK(alpha=alpha, k=k)
    searcher = MSCE(
        graph,
        params,
        selection=selection,
        reduction=reduction,
        maxtest=maxtest,
        seed=seed,
        time_limit=time_limit,
        max_results=max_results,
        min_size=min_size,
        reducer=reducer,
        backend=backend,
        model=model,
    )
    return searcher.enumerate_all()


def top_r_signed_cliques(
    graph: SignedGraph,
    alpha: float,
    k: int,
    r: int,
    selection: str = "greedy",
    reduction: str = "mcnew",
    maxtest: str = "exact",
    seed: int = 0,
    time_limit: Optional[float] = None,
    reducer: Optional[Callable] = None,
    backend: Optional[str] = None,
    model: Optional[str] = None,
    warm_start=None,
) -> List[SignedClique]:
    """Return the ``r`` largest maximal (alpha, k)-cliques.

    Uses the paper's size-based search-space cutoff (Section IV,
    "Finding the top-r results"), which usually explores far less of the
    search tree than full enumeration.

    ``warm_start`` seeds the cutoff before the search begins — a
    strategy name from :data:`repro.heuristics.WARM_START_STRATEGIES`
    (e.g. ``"portfolio"``) runs the seeding heuristics, or pass your
    own iterable of cliques (strictly validated). The answer is
    identical either way; seeding only prunes earlier. See
    :meth:`repro.core.bbe.MSCE.top_r`.
    """
    params = AlphaK(alpha=alpha, k=k)
    searcher = MSCE(
        graph,
        params,
        selection=selection,
        reduction=reduction,
        maxtest=maxtest,
        seed=seed,
        time_limit=time_limit,
        reducer=reducer,
        backend=backend,
        model=model,
    )
    return searcher.top_r(r, warm_start=warm_start).cliques


def find_mccore(graph: SignedGraph, alpha: float, k: int, method: str = "mcnew") -> Set[Node]:
    """Return the node set of the maximal constrained ceil(alpha*k)-core.

    ``method`` selects the algorithm: ``"mcnew"`` (Algorithm 3, default),
    ``"mcbasic"`` (Algorithm 2) or ``"positive-core"`` (the weaker
    Lemma-1 core).
    """
    params = AlphaK(alpha=alpha, k=k)
    return reduce_graph(graph, params, method=method)
