"""MCNew (Algorithm 3): MCCore via ego-triangle peeling in O(sigma * m).

MCBasic re-cores whole ego networks from scratch after every deletion.
MCNew avoids that by maintaining, for every *directed* positive edge
``(u, v)``, the ego-triangle degree ``delta(u, v)`` — the degree of
``v`` inside ``u``'s ego network (Lemma 4). Peeling a directed edge
whose delta fell below ``tau = ceil(alpha*k) - 1`` is exactly one step
of the tau-core peeling *inside* ``u``'s ego network, so running all
peels to fixpoint simultaneously cores every ego network at once. A node
dies when its surviving ego (its positive out-degree ``d+``) can no
longer host a tau-core, i.e. ``d+ <= tau``.

The total work is bounded by triangle counting, O(sigma * m) where sigma
is the arboricity (Theorem 4); space is O(m + n).

Implementation notes
--------------------
* ``out_pos[u]`` is the current surviving ego of ``u`` (the set of
  ``v`` with directed edge ``(u, v)`` still in the paper's ``S+``).
* Node deletion cascades immediately through a node worklist instead of
  relying on the delta queue to clean up, which is equivalent (the
  fixpoint is order-independent) and keeps the invariants simple.
* Closing edges ``(v, w)`` are looked up in the host graph restricted to
  surviving egos, so deleted nodes drop out of every ego automatically.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from repro.algorithms.kcore import icore
from repro.core.params import AlphaK
from repro.graphs.signed_graph import Node, SignedGraph

_DirectedEdge = Tuple[Node, Node]


def mccore_new(graph: SignedGraph, params: AlphaK, compile: bool = True) -> Set[Node]:
    """Return the node set of the MCCore via Algorithm 3 (MCNew).

    Produces the same set as :func:`repro.core.mcbasic.mccore_basic`;
    the property-based test-suite cross-validates the two on random
    graphs. Accepts a :class:`repro.fastpath.CompiledGraph` for the
    bitmask kernel (``compile=False`` forces the pure path).
    """
    from repro.fastpath.compiled import CompiledGraph
    from repro.obs import runtime as obs

    if isinstance(graph, CompiledGraph):
        if compile:
            from repro.fastpath.kernels import mccore_new_fast

            with obs.span("mccore", method="mcnew"):
                return mccore_new_fast(graph, params)
        graph = graph.source
    threshold = params.positive_threshold
    if threshold == 0:
        return graph.node_set()
    tau = threshold - 1

    with obs.span("mccore", method="mcnew"):
        return _mccore_new_pure(graph, threshold, tau)


def _mccore_new_pure(graph: SignedGraph, threshold: int, tau: int) -> Set[Node]:
    """The pure-Python peeling body of :func:`mccore_new`."""
    flag, survivors = icore(graph, fixed=(), tau=threshold, sign="positive")
    if not flag:
        return set()

    alive: Set[Node] = set(survivors)
    out_pos: Dict[Node, Set[Node]] = {
        u: graph.positive_neighbors(u) & alive for u in alive
    }
    positive_degree: Dict[Node, int] = {u: len(out_pos[u]) for u in alive}
    delta: Dict[_DirectedEdge, int] = {}

    edge_queue: deque = deque()
    queued: Set[_DirectedEdge] = set()

    # Lines 5-9: initialise delta for both directions of every positive
    # edge and queue the already-unqualified ones.
    for u in alive:
        ego = out_pos[u]
        for v in ego:
            d = len(ego & graph.neighbor_keys(v))
            delta[(u, v)] = d
            if d < tau:
                edge_queue.append((u, v))
                queued.add((u, v))

    def delete_node(node: Node, node_worklist: List[Node]) -> None:
        """Remove *node* and all its directed edges, updating deltas."""
        alive.discard(node)
        # Out-edges (node, w): node's own ego disappears wholesale.
        for w in out_pos[node]:
            delta.pop((node, w), None)
            queued.discard((node, w))
        out_pos[node] = set()
        # In-edges (w, node): node leaves the ego of every positive
        # neighbour w, breaking w's ego triangles through node.
        for w in graph.positive_neighbors(node):
            if w not in alive or node not in out_pos[w]:
                continue
            out_pos[w].discard(node)
            delta.pop((w, node), None)
            queued.discard((w, node))
            positive_degree[w] -= 1
            for x in out_pos[w] & graph.neighbor_keys(node):
                key = (w, x)
                delta[key] -= 1
                if delta[key] < tau and key not in queued:
                    edge_queue.append(key)
                    queued.add(key)
            if positive_degree[w] <= tau:
                node_worklist.append(w)

    def drain_node_worklist(node_worklist: List[Node]) -> None:
        while node_worklist:
            candidate = node_worklist.pop()
            if candidate in alive:
                delete_node(candidate, node_worklist)

    # Lines 10-24: peel unqualified directed edges to fixpoint.
    while edge_queue:
        u, v = edge_queue.popleft()
        if (u, v) not in queued:
            continue  # removed by a node deletion while waiting
        queued.discard((u, v))
        if u not in alive or v not in out_pos.get(u, ()):
            continue
        out_pos[u].discard(v)
        delta.pop((u, v), None)
        # v leaves u's ego: every remaining ego member adjacent to v
        # loses one ego triangle (lines 12-14).
        for w in out_pos[u] & graph.neighbor_keys(v):
            key = (u, w)
            delta[key] -= 1
            if delta[key] < tau and key not in queued:
                edge_queue.append(key)
                queued.add(key)
        positive_degree[u] -= 1
        if positive_degree[u] <= tau:
            worklist: List[Node] = [u]
            drain_node_worklist(worklist)

    return alive
