"""The paper's primary contribution: maximal (alpha, k)-clique search.

Layout:

* :mod:`repro.core.params` — validated (alpha, k) parameters;
* :mod:`repro.core.cliques` — Definition 1 predicates and the
  :class:`SignedClique` result type;
* :mod:`repro.core.reduction` / :mod:`mcbasic` / :mod:`mcnew` — the
  Section-III signed graph reduction (positive core, MCBasic, MCNew);
* :mod:`repro.core.maxtest` — exact and paper-style maximality tests;
* :mod:`repro.core.bbe` — the MSCE branch-and-bound enumerator;
* :mod:`repro.core.parallel` / :mod:`repro.core.scheduler` — the
  multi-process enumerator: root-branch task decomposition, a
  work-stealing scheduler, and shared-memory graph shipping;
* :mod:`repro.core.naive` — brute-force reference enumerators;
* :mod:`repro.core.api` — two-line convenience functions.
"""

from repro.core.api import (
    enumerate_signed_cliques,
    enumerate_with_stats,
    find_mccore,
    top_r_signed_cliques,
)
from repro.core.bbe import MSCE, EnumerationResult, SearchStats
from repro.core.dynamic import (
    DynamicSignedCliqueIndex,
    closed_neighborhood,
    refresh_region,
)
from repro.core.heuristic import greedy_signed_cliques
from repro.core.parallel import enumerate_grid, enumerate_parallel
from repro.core.percolation import merge_overlapping_cliques, signed_clique_percolation
from repro.core.scheduler import WorkStealingScheduler
from repro.core.cliques import (
    SignedClique,
    filter_maximal_sets,
    is_alpha_k_clique,
    sort_cliques,
    top_r,
    violates_clique_constraint,
    violates_negative_constraint,
    violates_positive_constraint,
)
from repro.core.maxtest import is_maximal, single_extension_test
from repro.core.mcbasic import mccore_basic
from repro.core.mcnew import mccore_new
from repro.core.naive import brute_force_maximal, reference_enumerate
from repro.core.params import AlphaK, make_params
from repro.core.query import (
    best_signed_clique_for,
    query_candidate_space,
    query_search,
    signed_cliques_containing,
)
from repro.core.reduction import (
    positive_core_reduction,
    reduce_graph,
    reduction_components,
    reduction_report,
)

__all__ = [
    "AlphaK",
    "make_params",
    "SignedClique",
    "is_alpha_k_clique",
    "violates_clique_constraint",
    "violates_negative_constraint",
    "violates_positive_constraint",
    "sort_cliques",
    "top_r",
    "filter_maximal_sets",
    "MSCE",
    "EnumerationResult",
    "SearchStats",
    "is_maximal",
    "single_extension_test",
    "mccore_basic",
    "mccore_new",
    "positive_core_reduction",
    "reduce_graph",
    "reduction_components",
    "reduction_report",
    "brute_force_maximal",
    "reference_enumerate",
    "enumerate_signed_cliques",
    "enumerate_with_stats",
    "top_r_signed_cliques",
    "find_mccore",
    "signed_cliques_containing",
    "best_signed_clique_for",
    "query_search",
    "query_candidate_space",
    "DynamicSignedCliqueIndex",
    "closed_neighborhood",
    "refresh_region",
    "enumerate_parallel",
    "enumerate_grid",
    "WorkStealingScheduler",
    "greedy_signed_cliques",
    "signed_clique_percolation",
    "merge_overlapping_cliques",
]
