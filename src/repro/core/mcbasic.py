"""MCBasic (Algorithm 2): maximal constrained ceil(alpha*k)-core, baseline.

The maximal constrained ceil(alpha*k)-core (**MCCore**, Definition 3) is
the largest induced subgraph in which every node's *ego network* (the
signed subgraph induced by its positive neighbours, Definition 4)
contains a (ceil(alpha*k) - 1)-core. Lemma 3 guarantees every maximal
(alpha, k)-clique lives inside it.

MCBasic computes the MCCore exactly as the paper describes:

1. shrink to the positive-edge ceil(alpha*k)-core (Lemma 1);
2. test the neighbour-core constraint of every node by re-coring its ego
   network with ICore;
3. when a node fails, delete it and re-test its positive neighbours
   (with the cheap *degree pruning* shortcut: a node whose positive
   degree fell below ceil(alpha*k) cannot pass, no ICore call needed);
4. iterate to fixpoint.

Time O(m * |H_max|) where H_max is the largest ego network; space
O(m + n). The fixpoint is order-independent because the neighbour-core
constraint is monotone in the surviving node set, so any greedy deletion
order reaches the same (unique) maximal set — the property tests verify
MCBasic and MCNew agree on random graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Set

from repro.algorithms.kcore import icore
from repro.core.params import AlphaK
from repro.core.reduction import positive_core_reduction
from repro.graphs.signed_graph import Node, SignedGraph


def _ego_has_core(graph: SignedGraph, node: Node, alive: Set[Node], core_order: int) -> bool:
    """Does *node*'s ego network (within *alive*) contain a core_order-core?

    The ego network is induced by the positive neighbours of *node* but
    its internal edges are sign-blind (Definition 4 / Fig. 2 of the
    paper: ego networks may contain negative edges).
    """
    ego = graph.positive_neighbors(node) & alive
    if len(ego) <= core_order:
        # A tau-core needs at least tau + 1 nodes; cheap reject.
        return False
    flag, _nodes = icore(graph, fixed=(), tau=core_order, within=ego, sign="all")
    return flag


def mccore_basic(graph: SignedGraph, params: AlphaK, compile: bool = True) -> Set[Node]:
    """Return the node set of the MCCore via Algorithm 2 (MCBasic).

    For degenerate parameters (``alpha * k == 0``) the constraint is
    vacuous and the full node set is returned. Accepts a
    :class:`repro.fastpath.CompiledGraph` for the bitmask kernel
    (``compile=False`` forces the pure path).
    """
    from repro.fastpath.compiled import CompiledGraph
    from repro.obs import runtime as obs

    if isinstance(graph, CompiledGraph):
        if compile:
            from repro.fastpath.kernels import mccore_basic_fast

            with obs.span("mccore", method="mcbasic"):
                return mccore_basic_fast(graph, params)
        graph = graph.source
    threshold = params.positive_threshold
    if threshold == 0:
        return graph.node_set()
    core_order = threshold - 1

    with obs.span("mccore", method="mcbasic"):
        return _mccore_basic_pure(graph, params, threshold, core_order)


def _mccore_basic_pure(
    graph: SignedGraph, params: AlphaK, threshold: int, core_order: int
) -> Set[Node]:
    """The pure-Python deletion loop of :func:`mccore_basic`."""
    alive = positive_core_reduction(graph, params)
    if not alive:
        return set()

    positive_degree = {node: len(graph.positive_neighbors(node) & alive) for node in alive}
    queue: deque = deque()
    dead: Set[Node] = set()

    # Lines 6-9: initial neighbour-core screening of every survivor.
    for node in alive:
        if not _ego_has_core(graph, node, alive, core_order):
            queue.append(node)
            dead.add(node)

    # Lines 10-19: iterative deletion. `alive` always reflects the
    # current survivor set (queued nodes are already counted out), so
    # ego re-checks see the up-to-date subgraph.
    alive -= dead
    while queue:
        node = queue.popleft()
        for neighbor in graph.positive_neighbors(node):
            if neighbor not in alive:
                continue
            positive_degree[neighbor] -= 1
            if positive_degree[neighbor] < threshold:
                # Degree pruning (lines 14-15): too few positive
                # neighbours left for any ceil(alpha*k)-1 core.
                alive.discard(neighbor)
                queue.append(neighbor)
            elif not _ego_has_core(graph, neighbor, alive, core_order):
                alive.discard(neighbor)
                queue.append(neighbor)
    return alive
