"""The (alpha, k)-clique model: constraint predicates and result type.

This module encodes Definition 1 (the three constraints) and Definition
2 (maximality) of the paper as composable predicates over a
:class:`~repro.graphs.SignedGraph` and a node set, plus the
:class:`SignedClique` value object the enumerators return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.params import AlphaK
from repro.exceptions import GraphError
from repro.graphs.signed_graph import Node, SignedGraph


def violates_clique_constraint(graph: SignedGraph, members: Set[Node]) -> Optional[Node]:
    """Return a witness node missing an internal edge, or ``None``.

    ``None`` means *members* induces a clique in the sign-blind graph.
    """
    needed = len(members) - 1
    for node in members:
        if not graph.has_node(node):
            return node
        if len(graph.neighbors(node) & members) < needed:
            return node
    return None


def violates_negative_constraint(
    graph: SignedGraph, members: Set[Node], params: AlphaK
) -> Optional[Node]:
    """Return a member with more than ``k`` internal negative neighbours.

    ``None`` means the negative-edge constraint holds for every member.
    Monotone: if the constraint fails for *members* it fails for every
    superset, which is what makes BBE's negative-edge pruning sound.
    """
    budget = params.k
    for node in members:
        if len(graph.negative_neighbors(node) & members) > budget:
            return node
    return None


def violates_positive_constraint(
    graph: SignedGraph, members: Set[Node], params: AlphaK
) -> Optional[Node]:
    """Return a member with fewer than ``ceil(alpha*k)`` internal positives.

    ``None`` means the positive-edge constraint holds for every member.
    """
    threshold = params.positive_threshold
    if threshold == 0:
        return None
    for node in members:
        if len(graph.positive_neighbors(node) & members) < threshold:
            return node
    return None


def is_alpha_k_clique(graph: SignedGraph, members: Iterable[Node], params: AlphaK) -> bool:
    """Return ``True`` iff *members* is a (non-empty) (alpha, k)-clique.

    Checks all three Definition-1 constraints. The empty set is not
    considered a clique (it carries no community semantics and would
    otherwise be "contained in" everything).
    """
    member_set = set(members)
    if not member_set:
        return False
    if any(not graph.has_node(node) for node in member_set):
        return False
    return (
        violates_clique_constraint(graph, member_set) is None
        and violates_negative_constraint(graph, member_set, params) is None
        and violates_positive_constraint(graph, member_set, params) is None
    )


@dataclass(frozen=True)
class SignedClique:
    """An (alpha, k)-clique result with its parameters and statistics.

    Instances are produced by the enumerators; they are hashable and
    ordered by (size, sorted node representation) so result lists are
    deterministic.

    Attributes
    ----------
    nodes:
        The member set (frozen).
    params:
        The (alpha, k) parameters under which the clique was found.
    positive_edges, negative_edges:
        Internal edge counts by sign (filled by :meth:`from_nodes`).
    """

    nodes: FrozenSet[Node]
    params: AlphaK
    positive_edges: int = 0
    negative_edges: int = 0

    @classmethod
    def from_nodes(
        cls, graph: SignedGraph, nodes: Iterable[Node], params: AlphaK
    ) -> "SignedClique":
        """Build a result object, counting internal edges by sign."""
        member_set = frozenset(nodes)
        pos = 0
        neg = 0
        for node in member_set:
            pos += len(graph.positive_neighbors(node) & member_set)
            neg += len(graph.negative_neighbors(node) & member_set)
        return cls(
            nodes=member_set,
            params=params,
            positive_edges=pos // 2,
            negative_edges=neg // 2,
        )

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.nodes)

    @property
    def internal_edges(self) -> int:
        """Total internal edges (size*(size-1)/2 for a clique)."""
        return self.positive_edges + self.negative_edges

    @property
    def negative_fraction(self) -> float:
        """Fraction of internal edges that are negative (0 if edgeless)."""
        total = self.internal_edges
        return self.negative_edges / total if total else 0.0

    def verify(self, graph: SignedGraph) -> None:
        """Raise :class:`GraphError` unless this is a valid (alpha, k)-clique.

        A runtime audit hook: enumerators call it when constructed with
        ``audit=True``, and tests call it on every result.
        """
        member_set = set(self.nodes)
        witness = violates_clique_constraint(graph, member_set)
        if witness is not None:
            raise GraphError(f"clique constraint violated at node {witness!r}")
        witness = violates_negative_constraint(graph, member_set, self.params)
        if witness is not None:
            raise GraphError(f"negative-edge constraint violated at node {witness!r}")
        witness = violates_positive_constraint(graph, member_set, self.params)
        if witness is not None:
            raise GraphError(f"positive-edge constraint violated at node {witness!r}")

    def sort_key(self) -> Tuple[int, ...]:
        """Deterministic ordering key: larger first, then lexicographic."""
        return (-self.size, tuple(sorted(map(repr, self.nodes))))  # type: ignore[return-value]

    def __contains__(self, node: Node) -> bool:
        return node in self.nodes

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)


def sort_cliques(cliques: Iterable[SignedClique]) -> List[SignedClique]:
    """Return *cliques* sorted largest-first with deterministic ties."""
    return sorted(cliques, key=SignedClique.sort_key)


def top_r(cliques: Iterable[SignedClique], r: int) -> List[SignedClique]:
    """Return the ``r`` largest cliques (all of them if fewer exist)."""
    ranked = sort_cliques(cliques)
    return ranked[: max(r, 0)]


def filter_maximal_sets(candidates: Iterable[FrozenSet[Node]]) -> List[FrozenSet[Node]]:
    """Keep only the containment-maximal sets of *candidates*.

    Quadratic in the number of candidates (grouped by size to shortcut
    most comparisons); used by the brute-force reference enumerator, not
    by MSCE.
    """
    unique = sorted(set(candidates), key=len, reverse=True)
    kept: List[FrozenSet[Node]] = []
    for candidate in unique:
        if not any(candidate < other for other in kept):
            kept.append(candidate)
    return kept
