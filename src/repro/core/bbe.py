"""MSCE (Algorithm 4): branch-and-bound enumeration of maximal (alpha, k)-cliques.

The enumerator follows the paper's structure exactly:

1. reduce the graph to the MCCore (MCNew by default; pluggable for
   ablations);
2. for each connected component of the reduced graph, run the
   branch-and-bound enumeration (BBE) over search spaces ``(R, I)`` —
   ``R`` the candidate set, ``I`` the included clique;
3. in every subspace, apply the three pruning rules:

   * **ceil(alpha*k)-core pruning** — shrink ``R`` to the positive-edge
     ceil(alpha*k)-core that contains ``I`` (ICore with fixed nodes);
     prune the whole subspace when none exists;
   * **clique-constraint pruning** — after including a branch node
     ``u``, drop every candidate not adjacent to ``u``;
   * **negative-edge-constraint pruning** — drop every candidate whose
     inclusion would push some member of ``I ∪ {u, v}`` over the
     negative budget ``k`` (sound because negative degrees are monotone
     under set growth);

4. terminate a subspace early when ``R`` itself is an (alpha, k)-clique,
   emitting it if (globally) maximal.

Branch node selection is pluggable: ``"greedy"`` picks the candidate of
minimum positive degree inside ``R`` (MSCE-G, the paper's heuristic),
``"random"`` picks uniformly (MSCE-R, the paper's baseline), ``"first"``
picks the lexicographically smallest (deterministic, cheap; handy in
tests).

The **top-r** mode adds the paper's size cutoff: once ``r`` maximal
cliques are known with minimum size ``rho``, any subspace whose cored
candidate set is smaller than ``rho`` is pruned.

The search runs on an explicit stack (include branch explored first,
mirroring the paper's recursion order) so deep graphs cannot hit
Python's recursion limit.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.cliques import SignedClique, sort_cliques
from repro.core.params import AlphaK
from repro.core.reduction import reduction_components
from repro.exceptions import ParameterError
from repro.fastpath.backend import resolve_backend
from repro.fastpath.compiled import as_compiled, source_graph
from repro.graphs.signed_graph import Node, SignedGraph
from repro.limits import ResourceGuard, make_guard
from repro.models import make_constraint, resolve_model
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry

#: Registry metric name prefix for the :class:`SearchStats` counters
#: (``recursions`` lives in the registry as ``msce_recursions`` etc.).
STAT_METRIC_PREFIX = "msce_"

_STAT_FIELDS = (
    "recursions",
    "core_prunes",
    "topr_prunes",
    "early_terminations",
    "maxtests",
    "maximal_found",
    "clique_pruned_candidates",
    "negative_pruned_candidates",
    "components",
)


def _stat_property(field: str) -> property:
    attr = "_c_" + field

    def _get(self) -> int:
        return getattr(self, attr).value

    def _set(self, value: int) -> None:
        getattr(self, attr).value = value

    _get.__name__ = field
    return property(_get, _set, doc=f"The ``{STAT_METRIC_PREFIX}{field}`` counter value.")


class SearchStats:
    """Counters describing one MSCE run (useful for pruning ablations).

    Since the observability subsystem landed this is a *view* over a
    :class:`~repro.obs.metrics.MetricsRegistry`: each field is a
    property reading/writing a registry :class:`~repro.obs.metrics.Counter`
    named ``msce_<field>``, so the same numbers the search increments
    are what snapshot merging aggregates across workers and what span
    counter deltas report — one source of truth, no copying. The public
    contract is unchanged: fields behave like plain ints (``stats.recursions
    += 1``) and :meth:`as_dict` returns the familiar plain dictionary.
    """

    FIELDS = _STAT_FIELDS

    __slots__ = ("registry", "backend", "model") + tuple(
        "_c_" + name for name in _STAT_FIELDS
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        #: Backing registry; private to this run unless one was injected.
        self.registry = MetricsRegistry() if registry is None else registry
        #: Resolved kernel backend the producing run used (metadata only:
        #: deliberately excluded from :meth:`as_dict` and ``==`` so stats
        #: from different tiers compare equal — the bit-identity contract).
        self.backend: Optional[str] = None
        #: Resolved constraint model the producing run used (metadata,
        #: excluded from :meth:`as_dict` and ``==`` like ``backend``).
        self.model: Optional[str] = None
        for name in _STAT_FIELDS:
            setattr(self, "_c_" + name, self.registry.counter(STAT_METRIC_PREFIX + name))

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {name: getattr(self, "_c_" + name).value for name in _STAT_FIELDS}

    def merge_snapshot(self, snapshot: Optional[Dict[str, Dict]]) -> None:
        """Fold a registry snapshot (a worker's per-task metrics) in."""
        self.registry.merge_snapshot(snapshot)

    def __eq__(self, other: object):
        if isinstance(other, SearchStats):
            return self.as_dict() == other.as_dict()
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value}" for name, value in self.as_dict().items())
        return f"SearchStats({inner})"


for _field in _STAT_FIELDS:
    setattr(SearchStats, _field, _stat_property(_field))
del _field


@dataclass
class EnumerationResult:
    """Outcome of an MSCE run: the cliques plus run metadata.

    ``cliques`` is sorted largest-first with deterministic tie-breaks.
    ``timed_out`` / ``truncated`` report whether a ``time_limit`` or
    ``max_results`` cap stopped the search before exhausting the space —
    in that case the clique list is a valid subset of the full answer,
    not necessarily the complete one. ``interrupted`` generalises that
    to every resource guard: it is set (with ``interrupted_reason`` of
    ``"deadline"`` or ``"memory"``) whenever a wall-clock deadline or a
    ``max_memory_bytes`` ceiling stopped the search cooperatively, and
    ``incomplete_frames`` counts the unexpanded search frames that were
    abandoned — ``0`` means the answer is exhaustive. ``parallel`` is
    filled only by :func:`repro.core.parallel.enumerate_parallel`:
    scheduling counters (tasks seeded/completed, frames re-split,
    shared-memory payload bytes) plus the fault-tolerance report
    (retries, respawns, quarantined frames, degradation reason) that
    describe how the run was distributed.
    """

    cliques: List[SignedClique]
    stats: SearchStats
    elapsed_seconds: float
    timed_out: bool = False
    truncated: bool = False
    parallel: Optional[Dict[str, int]] = None
    interrupted: bool = False
    interrupted_reason: Optional[str] = None
    incomplete_frames: int = 0

    def __iter__(self):
        return iter(self.cliques)

    def __len__(self) -> int:
        return len(self.cliques)

    def __getitem__(self, index):
        return self.cliques[index]


class _StopSearch(Exception):
    """Internal control-flow signal: a run cap was reached."""


def seed_topr_state(
    found: Dict[FrozenSet[Node], "SignedClique"],
    size_heap: List[int],
    incumbents: Iterable["SignedClique"],
    top_r: int,
) -> None:
    """Preload validated warm-start incumbents into a top-r search state.

    Soundness: every incumbent must be a *distinct genuine maximal
    clique* of the active model (callers validate through
    :mod:`repro.heuristics`). The heap then holds sizes of real
    answers, so its minimum never exceeds the true r-th largest clique
    size and the subspace cutoff stays conservative — a seeded search
    returns exactly the unseeded clique set. Preloading ``found`` makes
    re-discovery a dedup no-op instead of a double count.
    """
    for clique in incumbents:
        found[clique.nodes] = clique
        heappush(size_heap, clique.size)
        if len(size_heap) > top_r:
            heappop(size_heap)


def frame_draw(seed: int, free_reprs: Sequence[str]) -> int:
    """Frame-deterministic random draw: an index into *free_reprs*.

    Hashes the ``repr`` strings of a frame's free candidates (sorted by
    the caller) with ``zlib.crc32`` — stable across processes and
    Python hash seeds — so the "random" branch choice is a pure
    function of the frame, not of how many frames some RNG stream saw
    before it. This is what keeps the parallel enumerator's search tree
    (and therefore its aggregated :class:`SearchStats`) bit-identical
    no matter how frames are re-split across workers.
    """
    payload = "\x1f".join(free_reprs).encode("utf-8")
    return zlib.crc32(payload, seed & 0xFFFFFFFF) % len(free_reprs)


class MSCE:
    """Configured maximal (alpha, k)-clique enumerator (Algorithm 4).

    Parameters
    ----------
    graph:
        Host signed graph (not mutated). May also be a
        :class:`repro.fastpath.CompiledGraph`, in which case the
        reduction and the branch-and-bound search run on the CSR/bitset
        fastpath kernels (identical results, measurably faster).
    params:
        The (alpha, k) parameters.
    selection:
        Branch-node choice: ``"greedy"`` (MSCE-G, default), ``"random"``
        (MSCE-R) or ``"first"``.
    reduction:
        Pre-enumeration reduction: ``"mcnew"`` (default), ``"mcbasic"``,
        ``"positive-core"`` or ``"none"`` (ablation).
    maxtest:
        ``"exact"`` (Definition-2 maximality, default) or ``"paper"``
        (the single-extension heuristic of Algorithm 4). Models without
        a heuristic variant run their exact test for both kinds.
    model:
        The signed-constraint model to enumerate under: ``"msce"``
        (the paper's (alpha, k)-cliques, default) or ``"balanced"``
        (maximal balanced cliques, ``k`` read as the minimum side
        size). Resolution follows
        :func:`repro.models.resolve_model`: explicit argument >
        ``REPRO_MODEL`` environment variable > ``"msce"``.
    core_pruning:
        Disable only for the pruning-rule ablation benchmark.
    compile:
        When ``False``, ignore a compiled fastpath graph and run the
        pure-Python search even when *graph* is a
        :class:`~repro.fastpath.CompiledGraph` (ablation knob; the
        default honours whichever representation was handed in).
    seed:
        RNG seed for the random selection strategy.
    frame_rng:
        When ``True``, the ``"random"`` strategy derives each branch
        choice from a stable hash of the frame's free candidates
        (:func:`frame_draw`) instead of one sequential RNG stream. The
        search tree then no longer depends on the order frames are
        processed in, which is what the parallel enumerator
        (:mod:`repro.core.parallel`) relies on for bit-identical
        results and stats across worker counts. No effect on the
        deterministic ``"greedy"``/``"first"`` strategies.
    audit:
        When ``True``, every emitted clique is re-verified against all
        three constraints and duplicate emission raises.
    max_memory_bytes:
        Peak-RSS ceiling for this process. Like ``time_limit``, the
        guard stops the search *cooperatively*: the result is a valid
        partial answer with ``interrupted`` set and
        ``incomplete_frames`` counting the abandoned subtrees.

    Examples
    --------
    >>> from repro.graphs import SignedGraph
    >>> from repro.core.params import AlphaK
    >>> g = SignedGraph([(1, 2, "+"), (1, 3, "+"), (2, 3, "+")])
    >>> result = MSCE(g, AlphaK(2, 1)).enumerate_all()
    >>> [sorted(c.nodes) for c in result.cliques]
    [[1, 2, 3]]
    """

    def __init__(
        self,
        graph: SignedGraph,
        params: AlphaK,
        selection: str = "greedy",
        reduction: str = "mcnew",
        maxtest: str = "exact",
        core_pruning: bool = True,
        negative_pruning: bool = True,
        clique_pruning: bool = True,
        seed: int = 0,
        audit: bool = False,
        time_limit: Optional[float] = None,
        max_results: Optional[int] = None,
        min_size: Optional[int] = None,
        compile: bool = True,
        frame_rng: bool = False,
        max_memory_bytes: Optional[int] = None,
        reducer: Optional[Callable[[object, AlphaK, str], int]] = None,
        backend: Optional[str] = None,
        model: Optional[str] = None,
    ):
        #: Compiled fastpath representation, when one was handed in (and
        #: not disabled); the search then runs on bitset kernels.
        self.compiled = as_compiled(graph) if compile else None
        self.graph = source_graph(graph)
        self.params = params
        self.selection = selection
        self.reduction = reduction
        self.maxtest_kind = maxtest
        self.core_pruning = core_pruning
        self.negative_pruning = negative_pruning
        self.clique_pruning = clique_pruning
        self.audit = audit
        self.time_limit = time_limit
        if max_memory_bytes is not None and max_memory_bytes <= 0:
            raise ParameterError(
                f"max_memory_bytes must be positive, got {max_memory_bytes}"
            )
        #: Peak-RSS ceiling: when the process's high-water memory use
        #: exceeds this, the search stops cooperatively and returns the
        #: partial result with ``interrupted_reason == "memory"``.
        self.max_memory_bytes = max_memory_bytes
        self.max_results = max_results
        if min_size is not None and min_size < 1:
            raise ParameterError(f"min_size must be positive, got {min_size}")
        #: Only cliques of at least this size are searched for; the
        #: bound prunes subspaces exactly like the top-r cutoff (any
        #: clique in a subspace is at most |R| large), so large floors
        #: make the search dramatically cheaper.
        self.min_size = min_size
        self.seed = seed
        self.frame_rng = frame_rng
        #: Optional replacement for :func:`~repro.fastpath.kernels.reduce_mask`
        #: on the compiled path, called as ``reducer(compiled, params,
        #: method) -> survivor mask``. The serving engine injects a
        #: memoising wrapper here so (alpha, k) pairs sharing a
        #: ``ceil(alpha * k)`` ceiling share one coring pass; the result
        #: must be bit-identical to what ``reduce_mask`` would return.
        self.reducer = reducer
        if reducer is not None and self.compiled is None:
            raise ParameterError("reducer requires the compiled fastpath")
        #: Resolved kernel tier for every fastpath kernel this enumerator
        #: invokes (see :func:`repro.fastpath.backend.resolve_backend`).
        #: Resolved once here so a run can never mix tiers mid-flight,
        #: and so parent processes can ship the concrete name to workers.
        self.backend = resolve_backend(backend)
        #: Resolved constraint model (see :func:`repro.models.resolve_model`)
        #: and its instantiated rules. Resolved once for the same reason
        #: as the backend: one run, one model, workers included.
        self.model = resolve_model(model)
        self.constraint = make_constraint(self.model, params)
        #: Effective subspace size floor: the user's ``min_size`` folded
        #: with any model-implied bound. Pruning only — emission gating
        #: stays with ``min_size`` and the constraint's reportable().
        self._search_min_size = self.constraint.search_min_size(self.min_size)
        self._rng = random.Random(seed)
        #: Keys preloaded by a top-r warm start: legitimately re-found
        #: by the search, so the audit duplicate check must skip them.
        self._seeded_keys: FrozenSet[FrozenSet[Node]] = frozenset()
        self._maxtest = self.constraint.make_maxtest(maxtest)
        self._graph_ops = self.constraint.bind_graph(self)
        self._select = self._make_selector(selection)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def enumerate_all(self) -> EnumerationResult:
        """Enumerate every maximal (alpha, k)-clique of the graph."""
        return self._run(top_r=None)

    def top_r(self, r: int, warm_start=None) -> EnumerationResult:
        """Find the ``r`` largest maximal (alpha, k)-cliques.

        Uses the paper's size-based subspace cutoff, so this is usually
        much faster than full enumeration followed by sorting.

        *warm_start* seeds the size heap with incumbent cliques before
        the search starts, tightening the cutoff from the first frame:
        a strategy name from
        :data:`repro.heuristics.WARM_START_STRATEGIES` runs the seeding
        portfolio (:func:`repro.heuristics.warm_start_cliques`), while
        an iterable of cliques (``SignedClique`` or node collections)
        is validated strictly — every incumbent must be a distinct
        maximal clique of the active model, else
        :class:`~repro.exceptions.ParameterError` is raised. Seeding
        never changes the answer: the returned cliques are identical to
        an unseeded run's (and ``result.parallel["seeded"]`` reports
        what the portfolio contributed).
        """
        if r <= 0:
            raise ParameterError(f"r must be positive, got {r}")
        warm = None
        if warm_start is not None:
            if self.max_results is not None:
                raise ParameterError(
                    "warm_start cannot be combined with max_results: preloaded "
                    "incumbents would shift the truncation point"
                )
            from repro.heuristics import prepare_warm_start

            warm = prepare_warm_start(
                self.graph,
                self.params,
                r,
                warm_start,
                model=self.model,
                reduction=self.constraint.reduction_rule(self.reduction),
                min_size=self.min_size,
            )
        return self._run(top_r=r, warm=warm)

    def enumerate_seeded(
        self, space: Set[Node], included: FrozenSet[Node] = frozenset()
    ) -> EnumerationResult:
        """Enumerate maximal cliques inside *space* with *included* forced.

        The work-horse of query-driven community search
        (:mod:`repro.core.query`): the search starts from the frame
        ``(space, included)`` instead of per-component ``(C, {})``.
        Callers are responsible for *space* being a superset of every
        clique of interest (e.g. the query's common neighbourhood inside
        the MCCore) and for every candidate being adjacent to all of
        *included*; maximality testing remains global, so the results
        are maximal in the whole graph, not merely within *space*.
        """
        stats = SearchStats()
        stats.backend = self.backend
        stats.model = self.model
        found: Dict[FrozenSet[Node], SignedClique] = {}
        size_heap: List[int] = []
        started = time.perf_counter()
        guard = self._guard(started)
        truncated = False
        interrupted_reason: Optional[str] = None
        incomplete = 0
        try:
            stats.components = 1
            if self.compiled is not None:
                from repro.fastpath.search import search_component_fast

                tripped = search_component_fast(
                    self,
                    self.compiled.mask_from_nodes(space),
                    stats,
                    found,
                    size_heap,
                    None,
                    guard,
                    seed_mask=self.compiled.mask_from_nodes(included),
                )
                if tripped is not None:
                    interrupted_reason, incomplete = tripped
            else:
                self._search_component(
                    set(space), stats, found, size_heap, None, guard, seed=frozenset(included)
                )
        except _StopSearch as stop:
            reason = stop.args[0] if stop.args else ""
            if reason in ("timeout", "deadline", "memory"):
                interrupted_reason = "deadline" if reason == "timeout" else reason
            else:
                truncated = True
        cliques = sort_cliques(found.values())
        stats.maximal_found = len(cliques)
        return EnumerationResult(
            cliques=cliques,
            stats=stats,
            elapsed_seconds=time.perf_counter() - started,
            timed_out=interrupted_reason == "deadline",
            truncated=truncated,
            interrupted=interrupted_reason is not None,
            interrupted_reason=interrupted_reason,
            incomplete_frames=incomplete,
        )

    def run_frames(
        self,
        frames: Sequence[Tuple[int, int]],
        budget: Optional[int] = None,
        offload: Optional[Callable[[Tuple[int, int]], None]] = None,
        max_offload: int = 16,
        deadline: Optional[float] = None,
        max_memory_bytes: Optional[int] = None,
        tick: Optional[Callable[[], None]] = None,
        top_r: Optional[int] = None,
        incumbents: Optional[Iterable[SignedClique]] = None,
    ) -> EnumerationResult:
        """Search an explicit list of ``(candidates, included)`` mask frames.

        The re-entrant subproblem entry point of the parallel
        enumerator: a worker process attaches the shared compiled graph,
        builds one ``MSCE`` around it, and feeds it frames produced by
        :func:`repro.fastpath.search.decompose_root` or offloaded by
        other workers. Masks are bitmasks over the compiled node
        indices (requires a :class:`~repro.fastpath.CompiledGraph`;
        raises :class:`~repro.exceptions.ParameterError` otherwise).

        With a *budget*, every ``budget`` processed frames the deepest
        unexplored branches are handed to *offload* as
        ``(candidates, included)`` pairs instead of being recursed into
        — see :meth:`repro.fastpath.search.FrameSearch.run`. The
        returned result covers exactly the frames this call processed;
        counters aggregate across calls because every frame is
        processed exactly once somewhere.

        *deadline* (an absolute ``time.monotonic`` timestamp, so worker
        processes on the same host agree on it) and *max_memory_bytes*
        build a :class:`~repro.limits.ResourceGuard`; when it trips the
        call returns a partial result with ``interrupted`` set and
        ``incomplete_frames`` counting the abandoned subtrees. *tick*
        is a per-frame hook reserved for fault injection.

        *top_r* enables the size-based subspace cutoff inside this call,
        with *incumbents* (already-validated maximal cliques — the
        parallel enumerator ships the warm start's) preloading the size
        heap so the cutoff is tight from the first frame. Per-task
        seeding is sound because each incumbent is a genuine answer: the
        local heap under-estimates the global r-th size, pruning only
        subspaces that cannot change the top-r set, and re-found
        incumbents dedup against the preloaded ``found`` rather than
        double-count. Results include the incumbents; the parent's
        dict-merge collapses the duplication across tasks.
        """
        from repro.fastpath.search import FrameSearch

        if self.compiled is None:
            raise ParameterError(
                "run_frames requires a compiled fastpath graph; "
                "construct the enumerator from a CompiledGraph"
            )
        stats = SearchStats()
        stats.backend = self.backend
        stats.model = self.model
        found: Dict[FrozenSet[Node], SignedClique] = {}
        size_heap: List[int] = []
        if incumbents is not None and top_r is not None:
            rows = list(incumbents)
            seed_topr_state(found, size_heap, rows, top_r)
            self._seeded_keys = frozenset(c.nodes for c in rows)
        started = time.perf_counter()
        guard = make_guard(deadline, max_memory_bytes)
        searcher = FrameSearch(self, stats, found, size_heap, top_r, guard, tick=tick)
        reason = searcher.run(
            [(candidates, included, None) for candidates, included in frames],
            budget=budget,
            offload=offload,
            max_offload=max_offload,
        )
        cliques = sort_cliques(found.values())
        stats.maximal_found = len(cliques)
        return EnumerationResult(
            cliques=cliques,
            stats=stats,
            elapsed_seconds=time.perf_counter() - started,
            timed_out=reason == "deadline",
            interrupted=reason is not None,
            interrupted_reason=reason,
            incomplete_frames=len(searcher.incomplete),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_selector(self, selection: str):
        ops = self._graph_ops

        def greedy(candidates, included, degrees):
            # Minimum model degree within the candidate set (MSCE-G:
            # tracked positive degree; balanced: sign-blind degree),
            # ties broken by repr for determinism.
            free = candidates - included
            best_degree = None
            ties = []
            for node in free:
                degree = ops.branch_degree(node, candidates, degrees)
                if best_degree is None or degree < best_degree:
                    best_degree = degree
                    ties = [node]
                elif degree == best_degree:
                    ties.append(node)
            return ties[0] if len(ties) == 1 else min(ties, key=repr)

        def first(candidates, included, degrees):
            return min(candidates - included, key=repr)

        def randomized(candidates, included, degrees):
            free = sorted(candidates - included, key=repr)
            if self.frame_rng:
                return free[frame_draw(self.seed, [repr(node) for node in free])]
            return self._rng.choice(free)

        selectors = {"greedy": greedy, "random": randomized, "first": first}
        try:
            return selectors[selection]
        except KeyError:
            raise ParameterError(
                f"unknown selection strategy {selection!r}; expected one of {sorted(selectors)}"
            ) from None

    def _guard(self, started: float) -> Optional[ResourceGuard]:
        """Build the run's resource guard (``None`` when unlimited)."""
        deadline = started + self.time_limit if self.time_limit is not None else None
        return make_guard(deadline, self.max_memory_bytes, clock=time.perf_counter)

    def _run(self, top_r: Optional[int], warm=None) -> EnumerationResult:
        stats = SearchStats()
        stats.backend = self.backend
        stats.model = self.model
        found: Dict[FrozenSet[Node], SignedClique] = {}
        size_heap: List[int] = []  # min-heap of the top-r sizes
        if warm is not None and top_r is not None:
            seed_topr_state(found, size_heap, warm.cliques, top_r)
            self._seeded_keys = frozenset(c.nodes for c in warm.cliques)
        started = time.perf_counter()
        guard = self._guard(started)
        timed_out = False
        truncated = False
        interrupted_reason: Optional[str] = None
        incomplete = 0

        # The model maps the requested reduction to one sound for it
        # (non-MSCE models degrade to "none": the (alpha, k) cores
        # would drop their valid members).
        reduction = self.constraint.reduction_rule(self.reduction)
        with obs.span(
            "msce",
            alpha=self.params.alpha,
            k=self.params.k,
            selection=self.selection,
            reduction=reduction,
            compiled=self.compiled is not None,
            top_r=top_r,
            backend=self.backend,
            model=self.model,
        ):
            try:
                if self.compiled is not None:
                    from repro.fastpath.kernels import component_masks, reduce_mask
                    from repro.fastpath.search import search_component_fast

                    if self.reducer is not None:
                        survivor_mask = self.reducer(
                            self.compiled, self.params, reduction
                        )
                    else:
                        survivor_mask = reduce_mask(
                            self.compiled,
                            self.params,
                            method=reduction,
                            backend=self.backend,
                        )
                    with obs.span("enumerate"):
                        for mask in component_masks(self.compiled, survivor_mask):
                            stats.components += 1
                            tripped = search_component_fast(
                                self, mask, stats, found, size_heap, top_r, guard
                            )
                            if tripped is not None:
                                # Cooperative stop: keep everything emitted so
                                # far, skip the remaining components.
                                interrupted_reason, dropped = tripped
                                incomplete += dropped
                                break
                else:
                    # The reduction generator runs lazily, so its
                    # "reduce" span nests under "enumerate" here.
                    with obs.span("enumerate"):
                        for component in reduction_components(
                            self.graph, self.params, method=reduction
                        ):
                            stats.components += 1
                            self._search_component(
                                component, stats, found, size_heap, top_r, guard
                            )
            except _StopSearch as stop:
                reason = stop.args[0] if stop.args else ""
                if reason in ("timeout", "deadline", "memory"):
                    interrupted_reason = "deadline" if reason == "timeout" else reason
                else:
                    truncated = True
            timed_out = interrupted_reason == "deadline"

            with obs.span("merge"):
                cliques = sort_cliques(found.values())
                if top_r is not None:
                    cliques = cliques[:top_r]
                stats.maximal_found = len(cliques)
                # Surface the run's private registry in the ambient one
                # before the root span closes, so the "msce" span's
                # counter deltas carry the aggregated search counters.
                obs.merge_metrics(stats.registry.snapshot())
        elapsed = time.perf_counter() - started
        return EnumerationResult(
            cliques=cliques,
            stats=stats,
            elapsed_seconds=elapsed,
            timed_out=timed_out,
            truncated=truncated,
            parallel={"seeded": warm.report} if warm is not None else None,
            interrupted=interrupted_reason is not None,
            interrupted_reason=interrupted_reason,
            incomplete_frames=incomplete,
        )

    def _search_component(
        self,
        component: Set[Node],
        stats: SearchStats,
        found: Dict[FrozenSet[Node], SignedClique],
        size_heap: List[int],
        top_r: Optional[int],
        guard: Optional[ResourceGuard],
        seed: FrozenSet[Node] = frozenset(),
    ) -> None:
        graph = self.graph
        params = self.params
        ops = self._graph_ops
        min_size = self._search_min_size

        # Each frame carries (candidates, included, degrees) where
        # `degrees` is the model's threaded per-frame state (MSCE: the
        # within-candidates positive degree map used by both the core
        # pruning and the greedy selector, threaded with decremental
        # updates so the core pruning costs O(changes) per recursion
        # instead of O(|R|); models without tracked state thread None).
        # Include branch is pushed last so it is explored first (DFS),
        # matching the paper's recursion order and helping top-r find
        # large cliques quickly.
        Frame = Tuple[Set[Node], FrozenSet[Node], Optional[Dict[Node, int]]]
        stack: List[Frame] = [(set(component), seed, None)]

        while stack:
            if guard is not None:
                reason = guard.check()
                if reason is not None:
                    # The pure path keeps the historical control flow:
                    # the exception is mapped back to a partial result
                    # (timed_out / interrupted) by the caller.
                    raise _StopSearch(reason)
            candidates, included, degrees = stack.pop()
            stats.recursions += 1

            flag, candidates, degrees = ops.prune_bound(candidates, included, degrees)
            if not flag:
                stats.core_prunes += 1
                continue

            if min_size is not None and len(candidates) < min_size:
                stats.topr_prunes += 1
                continue
            if top_r is not None and len(size_heap) >= top_r and len(candidates) < size_heap[0]:
                stats.topr_prunes += 1
                continue

            if ops.feasible(candidates, degrees):
                stats.early_terminations += 1
                stats.maxtests += 1
                if self._maxtest(graph, candidates, params):
                    self._emit(candidates, found, size_heap, top_r, stats)
                continue

            free = candidates - included
            if not free:
                # Unreachable while the model's invariants hold (R == I
                # implies the feasibility check fired); defensive for
                # ablation modes.
                continue
            branch_node = self._select(candidates, included, degrees)
            new_included = included | {branch_node}

            keep, clique_pruned, negative_pruned = ops.update_budgets(
                candidates, included, new_included, branch_node
            )
            stats.clique_pruned_candidates += clique_pruned
            stats.negative_pruned_candidates += negative_pruned

            # Exclude branch: candidates lose one node.
            exclude_candidates = set(candidates)
            exclude_candidates.discard(branch_node)
            exclude_degrees = ops.exclude_degrees(
                branch_node, exclude_candidates, degrees
            )
            stack.append((exclude_candidates, included, exclude_degrees))

            # Include branch: candidates shrink to `keep`.
            include_degrees = ops.include_degrees(candidates, keep, degrees)
            stack.append((keep, new_included, include_degrees))

    def _emit(
        self,
        members: Set[Node],
        found: Dict[FrozenSet[Node], SignedClique],
        size_heap: List[int],
        top_r: Optional[int],
        stats: SearchStats,
    ) -> None:
        if self.min_size is not None and len(members) < self.min_size:
            return
        key = frozenset(members)
        if not self.constraint.reportable(self.graph, key):
            # A true search leaf that fails a superset-monotone reporting
            # threshold (the balanced model's minimum side size): not an
            # answer, but pruning it earlier would have broken maximality.
            return
        if key in found:
            if self.audit and key not in self._seeded_keys:
                raise AssertionError(f"duplicate maximal clique emitted: {sorted(map(repr, key))}")
            return
        clique = SignedClique.from_nodes(self.graph, key, self.params)
        if self.audit:
            self.constraint.audit_check(self.graph, clique)
        found[key] = clique
        if top_r is not None:
            heappush(size_heap, clique.size)
            if len(size_heap) > top_r:
                heappop(size_heap)
        if self.max_results is not None and len(found) >= self.max_results:
            raise _StopSearch("max_results")
