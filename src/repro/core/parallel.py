"""Parallel maximal (alpha, k)-clique enumeration.

MSCE's structure is embarrassingly parallel at the component level:
after the MCCore reduction, each connected component is an independent
search (Algorithm 4, lines 2-4), and maximality testing only looks at a
clique's common neighbourhood — which stays inside its component. This
module fans the components out over worker processes.

Determinism: results are identical to the sequential enumerator
(component order does not matter; each worker uses its own seeded RNG
for the random strategy, keyed by a stable component fingerprint).

When to use: component fan-out only helps when the reduced graph has
several *large* components (e.g. low thresholds on community-rich
graphs). Single-huge-component workloads gain nothing — the paper's
branch-and-bound tree is sequential within a component — so
:func:`enumerate_parallel` transparently falls back to the in-process
path for few/small components.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.bbe import MSCE
from repro.core.cliques import SignedClique, sort_cliques
from repro.core.params import AlphaK
from repro.core.reduction import reduction_components
from repro.fastpath.compiled import CompiledGraph, compile_graph
from repro.graphs.signed_graph import Node, SignedGraph

#: Components below this node count are batched into the local worker.
SMALL_COMPONENT = 32


def _component_fingerprint(component: Iterable[Node]) -> int:
    """Stable seed material for a component (order-independent).

    Uses ``zlib.crc32`` over the repr bytes: built-in ``hash`` of a str
    is salted per process (PYTHONHASHSEED), which would hand every
    worker a different RNG seed and break the determinism promise above
    for string-labelled graphs.
    """
    total = 0
    for node in component:
        total += zlib.crc32(repr(node).encode("utf-8")) % 1_000_003
    return total % 2_147_483_647


def _enumerate_component(
    payload: Tuple[CompiledGraph, float, int, str, str, int]
) -> List[Tuple[FrozenSet[Node], int, int]]:
    """Worker: enumerate one compiled component; return plain tuples.

    The component ships as a :class:`CompiledGraph` — four flat arrays
    plus the node list — which pickles far smaller than the dict-of-sets
    ``SignedGraph`` subgraph it replaces, and lands ready for the
    fastpath search (no re-hashing on the worker side). Maximality
    within the component equals global maximality because a clique's
    common neighbourhood never leaves its (sign-blind) component.
    """
    compiled, alpha, k, selection, maxtest, seed = payload
    params = AlphaK(alpha, k)
    searcher = MSCE(
        compiled,
        params,
        selection=selection,
        reduction="none",  # the parent already reduced; avoid re-reducing
        maxtest=maxtest,
        seed=seed,
    )
    result = searcher.enumerate_seeded(set(compiled.nodes), frozenset())
    return [
        (clique.nodes, clique.positive_edges, clique.negative_edges)
        for clique in result.cliques
    ]


def enumerate_parallel(
    graph: SignedGraph,
    alpha: float,
    k: int,
    workers: int = 2,
    selection: str = "greedy",
    reduction: str = "mcnew",
    maxtest: str = "exact",
    min_parallel_components: int = 2,
) -> List[SignedClique]:
    """Enumerate all maximal (alpha, k)-cliques using *workers* processes.

    Returns exactly the sequential answer (sorted largest-first). Falls
    back to the sequential enumerator when the reduced graph has fewer
    than *min_parallel_components* non-trivial components or when
    ``workers <= 1``. Accepts a :class:`repro.fastpath.CompiledGraph`
    for *graph*; each shipped component is itself compiled, so workers
    receive compact CSR arrays and run the fastpath search either way.
    """
    params = AlphaK(alpha, k)
    compiled = graph if isinstance(graph, CompiledGraph) else None
    graph = graph.source if compiled is not None else graph
    components = [
        set(c) for c in reduction_components(compiled or graph, params, method=reduction)
    ]
    large = [c for c in components if len(c) >= SMALL_COMPONENT]
    if workers <= 1 or len(large) < min_parallel_components:
        searcher = MSCE(
            compiled or graph, params, selection=selection, reduction=reduction, maxtest=maxtest
        )
        return searcher.enumerate_all().cliques

    payloads = []
    for component in components:
        payloads.append(
            (
                compile_graph(graph.subgraph(component)),
                alpha,
                k,
                selection,
                maxtest,
                _component_fingerprint(component),
            )
        )
    # Biggest components first so stragglers start early.
    payloads.sort(key=lambda p: -p[0].n)

    cliques: List[SignedClique] = []
    with ProcessPoolExecutor(max_workers=workers) as executor:
        for rows in executor.map(_enumerate_component, payloads):
            for nodes, positive, negative in rows:
                cliques.append(
                    SignedClique(
                        nodes=nodes,
                        params=params,
                        positive_edges=positive,
                        negative_edges=negative,
                    )
                )
    return sort_cliques(cliques)
