"""Parallel maximal (alpha, k)-clique enumeration.

MSCE's structure is embarrassingly parallel at the component level:
after the MCCore reduction, each connected component is an independent
search (Algorithm 4, lines 2-4), and maximality testing only looks at a
clique's common neighbourhood — which stays inside its component. This
module fans the components out over worker processes.

Determinism: results are identical to the sequential enumerator
(component order does not matter; each worker uses its own seeded RNG
for the random strategy, keyed by a stable component fingerprint).

When to use: component fan-out only helps when the reduced graph has
several *large* components (e.g. low thresholds on community-rich
graphs). Single-huge-component workloads gain nothing — the paper's
branch-and-bound tree is sequential within a component — so
:func:`enumerate_parallel` transparently falls back to the in-process
path for few/small components.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.bbe import MSCE
from repro.core.cliques import SignedClique, sort_cliques
from repro.core.params import AlphaK
from repro.core.reduction import reduction_components
from repro.graphs.signed_graph import Node, SignedGraph

#: Components below this node count are batched into the local worker.
SMALL_COMPONENT = 32


def _component_fingerprint(component: Set[Node]) -> int:
    """Stable seed material for a component (order-independent)."""
    return sum(hash(repr(node)) % 1_000_003 for node in component) % 2_147_483_647


def _enumerate_component(
    payload: Tuple[SignedGraph, float, int, Set[Node], str, str, int]
) -> List[Tuple[FrozenSet[Node], int, int]]:
    """Worker: enumerate one component's subgraph; return plain tuples.

    The component's *induced subgraph* is shipped (not the whole graph)
    to keep pickling costs proportional to the work. Maximality within
    the subgraph equals global maximality because a clique's common
    neighbourhood never leaves its (sign-blind) component.
    """
    subgraph, alpha, k, component, selection, maxtest, seed = payload
    params = AlphaK(alpha, k)
    searcher = MSCE(
        subgraph,
        params,
        selection=selection,
        reduction="none",  # the parent already reduced; avoid re-reducing
        maxtest=maxtest,
        seed=seed,
    )
    result = searcher.enumerate_seeded(set(component), frozenset())
    return [
        (clique.nodes, clique.positive_edges, clique.negative_edges)
        for clique in result.cliques
    ]


def enumerate_parallel(
    graph: SignedGraph,
    alpha: float,
    k: int,
    workers: int = 2,
    selection: str = "greedy",
    reduction: str = "mcnew",
    maxtest: str = "exact",
    min_parallel_components: int = 2,
) -> List[SignedClique]:
    """Enumerate all maximal (alpha, k)-cliques using *workers* processes.

    Returns exactly the sequential answer (sorted largest-first). Falls
    back to the sequential enumerator when the reduced graph has fewer
    than *min_parallel_components* non-trivial components or when
    ``workers <= 1``.
    """
    params = AlphaK(alpha, k)
    components = [set(c) for c in reduction_components(graph, params, method=reduction)]
    large = [c for c in components if len(c) >= SMALL_COMPONENT]
    if workers <= 1 or len(large) < min_parallel_components:
        searcher = MSCE(graph, params, selection=selection, reduction=reduction, maxtest=maxtest)
        return searcher.enumerate_all().cliques

    payloads = []
    for component in components:
        payloads.append(
            (
                graph.subgraph(component),
                alpha,
                k,
                component,
                selection,
                maxtest,
                _component_fingerprint(component),
            )
        )
    # Biggest components first so stragglers start early.
    payloads.sort(key=lambda p: -len(p[3]))

    cliques: List[SignedClique] = []
    with ProcessPoolExecutor(max_workers=workers) as executor:
        for rows in executor.map(_enumerate_component, payloads):
            for nodes, positive, negative in rows:
                cliques.append(
                    SignedClique(
                        nodes=nodes,
                        params=params,
                        positive_edges=positive,
                        negative_edges=negative,
                    )
                )
    return sort_cliques(cliques)
