"""Parallel maximal (alpha, k)-clique enumeration.

Two levels of parallelism compose here, both operating on *frames* —
``(candidates, included)`` bitmask pairs naming one subtree of MSCE's
branch-and-bound search:

* **component fan-out** (Algorithm 4, lines 2-4): after the MCCore
  reduction each connected component is an independent search, so every
  medium component becomes one seed frame;
* **intra-component root branching**: a giant component's search is
  split *at the root* along the exclude spine
  (:func:`repro.fastpath.search.decompose_root`) — with the default
  greedy selector the branch vertices follow a degeneracy-style
  min-positive-degree order, so task ``i`` is vertex ``v_i`` plus its
  surviving later-ordered candidates, with all earlier branch vertices
  excluded. Subtrees partition the search tree, so every maximal clique
  is found exactly once and merging needs no cross-task dedup. This is
  what makes single-giant-component workloads (the common shape of real
  signed networks after reduction) scale past one core.

Frames are driven by a work-stealing scheduler
(:class:`repro.core.scheduler.WorkStealingScheduler`): a worker whose
subtree exceeds a node budget sheds its deepest unexplored branches
back to the queue, so load balances adaptively even when the presplit
guessed wrong. Graph data crosses the process boundary exactly once —
the reduced survivor subgraph is CSR-sliced out of the parent's
compilation (:meth:`~repro.fastpath.CompiledGraph.extract`, no
dict-of-sets subgraphs) and published as a
:class:`~repro.fastpath.shared.SharedCompiledGraph` shared-memory
block; tasks themselves are two integers. Components below
:data:`SMALL_COMPONENT` nodes never ship at all: the parent searches
them inline while the workers chew on the big frames.

Determinism: every frame is processed exactly once somewhere, with
branch selection a pure function of the frame (the random strategy
hashes the frame instead of consuming a sequential stream — see
``frame_rng`` on :class:`~repro.core.bbe.MSCE`). The merged cliques
*and* the summed :class:`~repro.core.bbe.SearchStats` are therefore
bit-identical across ``workers`` counts and repeated runs, and — for
the deterministic selection strategies — bit-identical to the
sequential enumerator.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.bbe import MSCE, EnumerationResult, SearchStats
from repro.core.cliques import SignedClique, sort_cliques
from repro.core.params import AlphaK
from repro.core.scheduler import (
    DEFAULT_MAX_OFFLOAD,
    DEFAULT_TASK_BUDGET,
    WorkStealingScheduler,
)
from repro.fastpath.bitset import bit_count
from repro.fastpath.compiled import CompiledGraph, compile_graph, source_graph
from repro.fastpath.kernels import component_masks, reduce_mask
from repro.fastpath.search import FrameSearch, decompose_root
from repro.fastpath.shared import SharedCompiledGraph
from repro.graphs.signed_graph import Node, SignedGraph

#: Components below this node count are searched inline in the parent
#: while the worker processes handle the large frames.
SMALL_COMPONENT = 32

#: Components of at least this node count are root-branch decomposed
#: into multiple tasks instead of shipping as one frame.
SPLIT_COMPONENT = 128


def enumerate_parallel(
    graph: SignedGraph,
    alpha: float,
    k: int,
    workers: int = 2,
    selection: str = "greedy",
    reduction: str = "mcnew",
    maxtest: str = "exact",
    seed: int = 0,
    small_component: int = SMALL_COMPONENT,
    split_component: int = SPLIT_COMPONENT,
    presplit: Optional[int] = None,
    task_budget: int = DEFAULT_TASK_BUDGET,
    max_offload: int = DEFAULT_MAX_OFFLOAD,
) -> EnumerationResult:
    """Enumerate all maximal (alpha, k)-cliques using *workers* processes.

    Returns an :class:`~repro.core.bbe.EnumerationResult` whose cliques
    are exactly the sequential answer (sorted largest-first) and whose
    :class:`~repro.core.bbe.SearchStats` aggregate the per-frame
    counters across the parent and all workers — for the deterministic
    selection strategies they equal the sequential run's counters
    bit-for-bit; for ``"random"`` they are identical across worker
    counts and repeated runs (frame-hashed draws). The ``parallel``
    field carries scheduling counters, including the shared-memory
    payload size that replaces per-task subgraph pickling.

    Accepts a :class:`repro.fastpath.CompiledGraph` for *graph* to skip
    recompilation. ``workers <= 1`` runs the identical decomposition
    in-process (same frames, same stats) with no worker processes.

    Parameters beyond the enumerator's usual knobs:

    small_component / split_component:
        Node-count thresholds selecting, per reduced component, between
        inline search, a single task, and root-branch decomposition.
    presplit:
        Root branches carved per giant component before scheduling
        (default ``4 * workers``); the residual spine frame becomes the
        final task either way.
    task_budget / max_offload:
        Work-stealing re-split knobs, see
        :mod:`repro.core.scheduler`. Scheduling granularity only —
        results and stats are invariant.
    """
    params = AlphaK(alpha, k)
    started = time.perf_counter()
    compiled = graph if isinstance(graph, CompiledGraph) else compile_graph(graph)

    # Reduce once, then carve the survivor subgraph straight out of the
    # CSR arrays — no per-component dict-of-sets subgraph rebuilds.
    survivor_mask = reduce_mask(compiled, params, method=reduction)
    if survivor_mask == compiled.full_mask:
        extracted = compiled
    else:
        extracted = compiled.extract(survivor_mask)
        # The parent emits and maxtests against the original graph, like
        # the sequential enumerator (workers use the reduced subgraph,
        # which provably gives the same answers); seeding the source
        # also avoids an O(m) reconstruction in MSCE's constructor.
        extracted._source = source_graph(graph)

    searcher = MSCE(
        extracted,
        params,
        selection=selection,
        reduction="none",  # already reduced above
        maxtest=maxtest,
        seed=seed,
        frame_rng=True,
    )

    stats = SearchStats()
    found: Dict[FrozenSet[Node], SignedClique] = {}
    size_heap: List[int] = []

    inline_frames: List[Tuple[int, int]] = []
    tasks: List[Tuple[int, int]] = []
    presplit_cap = presplit if presplit is not None else max(4 * workers, 4)
    split_components = 0
    for mask in component_masks(extracted):
        stats.components += 1
        size = bit_count(mask)
        if size < small_component:
            inline_frames.append((mask, 0))
        elif size < split_component:
            tasks.append((mask, 0))
        else:
            split_components += 1
            tasks.extend(
                decompose_root(searcher, mask, stats, found, size_heap, presplit_cap)
            )
    # Biggest subtrees first so stragglers start early; deterministic
    # tie-break keeps the seeded order stable across runs.
    tasks.sort(key=lambda frame: (-bit_count(frame[0]), frame[0], frame[1]))

    report: Dict[str, int] = {
        "workers": max(1, workers),
        "tasks_seeded": len(tasks),
        "inline_components": len(inline_frames),
        "presplit_components": split_components,
        "shared_graph_bytes": 0,
        "frames_resplit": 0,
    }

    def run_inline(frames: List[Tuple[int, int]]) -> None:
        if frames:
            FrameSearch(searcher, stats, found, size_heap, None, None).run(
                [(candidates, included, None) for candidates, included in frames]
            )

    if workers <= 1 or not tasks:
        # Same frames, same order semantics, no processes: results and
        # stats match the multi-worker path bit for bit.
        run_inline(tasks + inline_frames)
        report["tasks_completed"] = len(tasks)
    else:
        shared = SharedCompiledGraph.create(extracted)
        try:
            scheduler = WorkStealingScheduler(
                shared,
                workers,
                params,
                selection,
                maxtest,
                seed,
                task_budget=task_budget,
                max_offload=max_offload,
            )
            rows, worker_stats = scheduler.run(
                tasks, local_work=lambda: run_inline(inline_frames)
            )
        finally:
            shared.close()
            shared.unlink()
        for nodes, positive, negative in rows:
            found[nodes] = SignedClique(
                nodes=nodes,
                params=params,
                positive_edges=positive,
                negative_edges=negative,
            )
        for key, value in worker_stats.items():
            setattr(stats, key, getattr(stats, key) + value)
        report.update(scheduler.report)

    cliques = sort_cliques(found.values())
    stats.maximal_found = len(cliques)
    return EnumerationResult(
        cliques=cliques,
        stats=stats,
        elapsed_seconds=time.perf_counter() - started,
        parallel=report,
    )
