"""Parallel maximal (alpha, k)-clique enumeration.

Two levels of parallelism compose here, both operating on *frames* —
``(candidates, included)`` bitmask pairs naming one subtree of MSCE's
branch-and-bound search:

* **component fan-out** (Algorithm 4, lines 2-4): after the MCCore
  reduction each connected component is an independent search, so every
  medium component becomes one seed frame;
* **intra-component root branching**: a giant component's search is
  split *at the root* along the exclude spine
  (:func:`repro.fastpath.search.decompose_root`) — with the default
  greedy selector the branch vertices follow a degeneracy-style
  min-positive-degree order, so task ``i`` is vertex ``v_i`` plus its
  surviving later-ordered candidates, with all earlier branch vertices
  excluded. Subtrees partition the search tree, so every maximal clique
  is found exactly once and merging needs no cross-task dedup. This is
  what makes single-giant-component workloads (the common shape of real
  signed networks after reduction) scale past one core.

Frames are driven by a fault-tolerant work-stealing scheduler
(:class:`repro.core.scheduler.WorkStealingScheduler`): a worker whose
subtree exceeds a node budget sheds its deepest unexplored branches
back to the queue, so load balances adaptively even when the presplit
guessed wrong; a worker that *dies* has its frames retried elsewhere
(bounded per frame, then quarantined) without perturbing results. Graph
data crosses the process boundary exactly once — the reduced survivor
subgraph is CSR-sliced out of the parent's compilation
(:meth:`~repro.fastpath.CompiledGraph.extract`, no dict-of-sets
subgraphs) and published as a
:class:`~repro.fastpath.shared.SharedCompiledGraph` shared-memory
block; tasks themselves are two integers. Components below
:data:`SMALL_COMPONENT` nodes never ship at all: the parent searches
them inline while the workers chew on the big frames.

Robustness: the entry point degrades rather than dies. If shared
memory cannot be allocated, the worker pool cannot spawn, or the pool
collapses mid-run, the remaining frames are finished inline in the
parent — same frames, same answers — and the fallback reason is
recorded in ``result.parallel["degraded"]``. A ``time_limit`` /
``max_memory_bytes`` guard stops the run cooperatively across the
parent and all workers, returning a partial
:class:`~repro.core.bbe.EnumerationResult` with ``interrupted`` set
instead of raising.

Determinism: every frame is processed exactly once somewhere, with
branch selection a pure function of the frame (the random strategy
hashes the frame instead of consuming a sequential stream — see
``frame_rng`` on :class:`~repro.core.bbe.MSCE`). The merged cliques
*and* the summed :class:`~repro.core.bbe.SearchStats` are therefore
bit-identical across ``workers`` counts, repeated runs, and injected
worker crashes, and — for the deterministic selection strategies —
bit-identical to the sequential enumerator.

Observability: the run is wrapped in an ``msce_parallel`` span with
``enumerate`` / ``merge`` children; worker metrics ride back as
registry snapshots on terminal messages (exactly-once under retry, see
:mod:`repro.core.scheduler`) and the aggregated snapshot lands both in
``result.parallel["metrics"]`` and in the ambient observer's registry.
Pass ``progress=`` a callback to receive throttled
:class:`~repro.obs.progress.ProgressEvent` samples with an ETA derived
from frames outstanding.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.bbe import MSCE, EnumerationResult, SearchStats, seed_topr_state
from repro.core.cliques import SignedClique, sort_cliques
from repro.core.params import AlphaK
from repro.core.scheduler import (
    DEFAULT_FRAME_RETRIES,
    DEFAULT_MAX_OFFLOAD,
    DEFAULT_TASK_BUDGET,
    RESULT_DRAIN_TIMEOUT,
    WorkStealingScheduler,
)
from repro.exceptions import SharedMemoryError
from repro.fastpath.backend import resolve_backend
from repro.fastpath.bitset import bit_count, iter_bits
from repro.fastpath.compiled import CompiledGraph, compile_graph, source_graph
from repro.fastpath.kernels import component_masks, reduce_mask
from repro.fastpath.search import FrameSearch, decompose_root
from repro.fastpath.shared import SharedCompiledGraph, resolve_transport
from repro.fastpath.storage import SpillFrontier
from repro.graphs.signed_graph import Node, SignedGraph
from repro.heuristics import prepare_warm_start
from repro.limits import make_guard, resolve_memory_budget
from repro.models import make_constraint, resolve_model
from repro.obs import runtime as obs
from repro.obs.progress import ProgressEvent, ProgressReporter

#: Components below this node count are searched inline in the parent
#: while the worker processes handle the large frames.
SMALL_COMPONENT = 32

#: Components of at least this node count are root-branch decomposed
#: into multiple tasks instead of shipping as one frame.
SPLIT_COMPONENT = 128


def _shard_footprint(compiled: CompiledGraph, mask: int) -> int:
    """Estimated resident bytes to search the *mask* component shard.

    Dominated by the per-node adjacency bitmasks the frame search builds
    (three sign classes of ``n``-bit integers per member) plus the CSR
    rows actually touched; a constant overhead keeps tiny shards from
    estimating zero. Only the *relative order* matters — the budgeted
    execution plan runs the heaviest shards first, while the spill
    frontier is emptiest — so a coarse model is enough.
    """
    xadj = compiled.xadj
    degree_sum = 0
    for i in iter_bits(mask):
        degree_sum += xadj[i + 1] - xadj[i]
    size = bit_count(mask)
    return size * (3 * (compiled.n >> 3) + 64) + degree_sum * 8 + 1024


def _require_positive_int(name: str, value) -> int:
    """Reject bools, non-ints and values below 1 with a clear message."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"{name} must be a positive integer, got {value!r} ({type(value).__name__})"
        )
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def enumerate_parallel(
    graph: SignedGraph,
    alpha: float,
    k: int,
    workers: int = 2,
    selection: str = "greedy",
    reduction: str = "mcnew",
    maxtest: str = "exact",
    seed: int = 0,
    small_component: int = SMALL_COMPONENT,
    split_component: int = SPLIT_COMPONENT,
    presplit: Optional[int] = None,
    task_budget: int = DEFAULT_TASK_BUDGET,
    max_offload: int = DEFAULT_MAX_OFFLOAD,
    time_limit: Optional[float] = None,
    max_memory_bytes: Optional[int] = None,
    frame_retries: int = DEFAULT_FRAME_RETRIES,
    max_respawns: Optional[int] = None,
    strict: bool = False,
    drain_timeout: float = RESULT_DRAIN_TIMEOUT,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    backend: Optional[str] = None,
    model: Optional[str] = None,
    memory_budget_bytes: Optional[int] = None,
    spill_dir: Optional[str] = None,
    transport: Optional[str] = None,
    top_r: Optional[int] = None,
    warm_start=None,
) -> EnumerationResult:
    """Enumerate all maximal (alpha, k)-cliques using *workers* processes.

    Returns an :class:`~repro.core.bbe.EnumerationResult` whose cliques
    are exactly the sequential answer (sorted largest-first) and whose
    :class:`~repro.core.bbe.SearchStats` aggregate the per-frame
    counters across the parent and all workers — for the deterministic
    selection strategies they equal the sequential run's counters
    bit-for-bit; for ``"random"`` they are identical across worker
    counts and repeated runs (frame-hashed draws). The ``parallel``
    field carries scheduling counters, including the shared-memory
    payload size that replaces per-task subgraph pickling, plus the
    fault-tolerance report: ``retries``, ``respawns``, ``workers_lost``,
    ``quarantined_frames``, ``degraded`` (the fallback reason, or
    ``None``), the interruption fields mirrored from the result, and
    ``metrics`` — the aggregated
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` combining the
    search counters with per-task scheduling metrics.

    Accepts a :class:`repro.fastpath.CompiledGraph` for *graph* to skip
    recompilation. ``workers <= 1`` runs the identical decomposition
    in-process (same frames, same stats) with no worker processes.

    Parameters beyond the enumerator's usual knobs:

    small_component / split_component:
        Node-count thresholds selecting, per reduced component, between
        inline search, a single task, and root-branch decomposition.
    presplit:
        Root branches carved per giant component before scheduling
        (default ``4 * workers``); the residual spine frame becomes the
        final task either way.
    task_budget / max_offload:
        Work-stealing re-split knobs, see
        :mod:`repro.core.scheduler`. Scheduling granularity only —
        results and stats are invariant.
    time_limit / max_memory_bytes:
        Wall-clock budget in seconds / peak-RSS ceiling in bytes,
        enforced cooperatively in the parent and every worker. When
        either trips, the call **returns** a partial result with
        ``interrupted`` set, ``interrupted_reason`` of ``"deadline"``
        or ``"memory"``, and ``incomplete_frames`` counting abandoned
        subtrees — it never raises.
    frame_retries / max_respawns:
        Fault-tolerance budgets: failed attempts one frame survives
        before quarantine, and total worker respawns across the run
        (default ``2 * workers``).
    strict:
        Disable graceful degradation: shared-memory failure raises
        :class:`~repro.exceptions.SharedMemoryError` and a collapsed
        worker pool raises
        :class:`~repro.exceptions.WorkerCrashError` instead of
        finishing the remaining frames inline.
    drain_timeout:
        Shutdown salvage window forwarded to the scheduler (see
        :data:`repro.core.scheduler.RESULT_DRAIN_TIMEOUT`).
    progress:
        Callback receiving throttled
        :class:`~repro.obs.progress.ProgressEvent` samples (completed
        and outstanding frame counts, completion rate, ETA) while the
        pool runs, plus one forced final sample.
    backend:
        Kernel tier (:data:`repro.fastpath.backend.BACKENDS`). Resolved
        once in the parent and shipped to every worker, so the whole
        run uses one consistent tier; recorded in
        ``result.parallel["backend"]``. Results are bit-identical
        across tiers.
    model:
        Signed-cohesion model (:data:`repro.models.MODELS`). Resolved
        once (explicit > ``REPRO_MODEL`` env > ``"msce"``) and shipped
        to every worker, so the whole run applies one consistent
        constraint; recorded in ``result.parallel["model"]`` and on the
        result's stats. The requested ``reduction`` is mapped through
        the model's :meth:`~repro.models.SignedConstraint.reduction_rule`
        (non-MSCE models degrade it to ``"none"``).
    memory_budget_bytes:
        *Soft* peak-RSS target in bytes enabling the out-of-core
        execution plan (explicit argument wins over the
        ``REPRO_MEMORY_BUDGET`` environment variable). Component shards
        are ordered by estimated footprint (heaviest first, while the
        frontier is emptiest) and the parent-side frame searches run
        under a :class:`~repro.fastpath.storage.SpillFrontier` that
        parks bottom-of-stack frames in a disk-backed frame store when
        the in-memory frontier crosses its budget-derived high-water
        mark. Unlike ``max_memory_bytes`` it never interrupts the run —
        every frame still runs exactly once, so cliques and stats are
        bit-identical to the unbudgeted path; ``spilled_frames`` /
        ``spill_bytes`` land in ``result.parallel``.
    spill_dir:
        Directory for spill files and mmap-transport artifacts (default
        system tempdir). All are crash-guarded temp files.
    transport:
        Graph transport (:data:`repro.fastpath.shared.TRANSPORTS`):
        ``"shm"`` publishes the reduced graph in a shared-memory block,
        ``"mmap"`` in an on-disk artifact workers map read-only
        (file-backed pages the OS can evict — the right choice next to
        a memory budget). Resolved once (explicit > ``REPRO_TRANSPORT``
        env > shm) and recorded in ``result.parallel["transport"]``;
        results are bit-identical across transports.
    top_r:
        Return only the ``r`` largest maximal cliques, with the
        paper's size-based subspace cutoff active in the parent *and*
        every worker task (per-task size heaps hold only genuine
        answer sizes, so each local cutoff under-estimates the true
        r-th-largest size and no top-r clique is ever pruned). The
        returned cliques are bit-identical to the sequential
        ``MSCE.top_r`` answer at any worker count; search *counters*
        under top-r depend on the worker count (each task prunes
        against its own heap), unlike full enumeration.
    warm_start:
        Seed every size heap with incumbent cliques before any frame
        runs (requires ``top_r``): a strategy name from
        :data:`repro.heuristics.WARM_START_STRATEGIES` runs the
        seeding portfolio against the source graph, an iterable of
        cliques is validated strictly (every incumbent must be a
        distinct maximal clique of the active model, else
        :class:`~repro.exceptions.ParameterError`). Incumbent rows
        ship to workers through the scheduler config so the seeded
        bound prunes from frame one; the portfolio's report lands in
        ``result.parallel["seeded"]``. Answers are unchanged — seeded
        and unseeded runs return the identical clique set.

    Raises
    ------
    ValueError
        If ``workers``, ``task_budget`` or ``max_offload`` is not a
        positive integer (bools are rejected too).
    """
    _require_positive_int("workers", workers)
    _require_positive_int("task_budget", task_budget)
    _require_positive_int("max_offload", max_offload)
    if isinstance(frame_retries, bool) or not isinstance(frame_retries, int) or frame_retries < 0:
        raise ValueError(f"frame_retries must be a non-negative integer, got {frame_retries!r}")
    if max_respawns is not None and (
        isinstance(max_respawns, bool) or not isinstance(max_respawns, int) or max_respawns < 0
    ):
        raise ValueError(f"max_respawns must be a non-negative integer or None, got {max_respawns!r}")
    if top_r is not None and top_r <= 0:
        from repro.exceptions import ParameterError

        raise ParameterError(f"top_r must be positive, got {top_r}")
    if warm_start is not None and top_r is None:
        from repro.exceptions import ParameterError

        raise ParameterError("warm_start requires top_r")

    params = AlphaK(alpha, k)
    # Resolve once up front: workers inherit the concrete tier name, so
    # a native->vectorized degradation in the parent applies everywhere.
    backend = resolve_backend(backend)
    model = resolve_model(model)
    # The parent reduces before any MSCE exists, so map the requested
    # reduction through the model's soundness rule here (balanced ->
    # "none"); the same effective method is recorded on the span.
    reduction = make_constraint(model, params).reduction_rule(reduction)
    transport = resolve_transport(transport)
    memory_budget_bytes = resolve_memory_budget(memory_budget_bytes)
    started = time.perf_counter()
    reporter = (
        ProgressReporter(progress) if progress is not None else None
    )
    with obs.span(
        "msce_parallel",
        alpha=params.alpha,
        k=params.k,
        workers=workers,
        selection=selection,
        reduction=reduction,
        backend=backend,
        model=model,
    ):
        # The deadline is an absolute time.monotonic timestamp so the parent
        # and forked workers (same clock) agree on when time is up.
        deadline_ts = time.monotonic() + time_limit if time_limit is not None else None
        guard = make_guard(
            deadline_ts, max_memory_bytes, memory_budget_bytes=memory_budget_bytes
        )
        compiled = graph if isinstance(graph, CompiledGraph) else compile_graph(graph)

        # Reduce once, then carve the survivor subgraph straight out of the
        # CSR arrays — no per-component dict-of-sets subgraph rebuilds.
        survivor_mask = reduce_mask(compiled, params, method=reduction, backend=backend)
        if survivor_mask == compiled.full_mask:
            extracted = compiled
        else:
            extracted = compiled.extract(survivor_mask)
            # The parent emits and maxtests against the original graph, like
            # the sequential enumerator (workers use the reduced subgraph,
            # which provably gives the same answers); seeding the source
            # also avoids an O(m) reconstruction in MSCE's constructor.
            extracted._source = source_graph(graph)

        searcher = MSCE(
            extracted,
            params,
            selection=selection,
            reduction="none",  # already reduced above
            maxtest=maxtest,
            seed=seed,
            frame_rng=True,
            backend=backend,
            model=model,
        )

        stats = SearchStats()
        stats.backend = backend
        stats.model = model
        found: Dict[FrozenSet[Node], SignedClique] = {}
        size_heap: List[int] = []

        # Warm-start seeding happens before any frame exists, so the
        # decompose spine walk, the inline searches and every worker
        # task all prune against the seeded bound from their first
        # frame. Incumbents are validated maximal cliques of the model
        # (the portfolio certifies its own output; explicit lists are
        # strictly checked), which is what keeps seeding answer-neutral.
        warm = None
        incumbent_rows: Tuple[Tuple[FrozenSet[Node], int, int], ...] = ()
        if warm_start is not None:
            warm = prepare_warm_start(
                searcher.graph,
                params,
                top_r,
                warm_start,
                model=model,
                reduction=reduction,
            )
            seed_topr_state(found, size_heap, warm.cliques, top_r)
            searcher._seeded_keys = frozenset(c.nodes for c in warm.cliques)
            incumbent_rows = tuple(
                (c.nodes, c.positive_edges, c.negative_edges) for c in warm.cliques
            )

        inline_frames: List[Tuple[int, int]] = []
        tasks: List[Tuple[int, int]] = []
        presplit_cap = presplit if presplit is not None else max(4 * workers, 4)
        split_components = 0
        for mask in component_masks(extracted):
            stats.components += 1
            size = bit_count(mask)
            if size < small_component:
                inline_frames.append((mask, 0))
            elif size < split_component:
                tasks.append((mask, 0))
            else:
                split_components += 1
                tasks.extend(
                    decompose_root(
                        searcher,
                        mask,
                        stats,
                        found,
                        size_heap,
                        presplit_cap,
                        guard=guard,
                        top_r=top_r,
                    )
                )
        if memory_budget_bytes is not None:
            # Budgeted execution plan: order shards by estimated resident
            # footprint, heaviest first, so the big components run while
            # the spill frontier is emptiest. Ordering changes nothing
            # observable — frames partition the search tree and counters
            # are additive — so results stay bit-identical either way.
            tasks.sort(
                key=lambda frame: (
                    -_shard_footprint(extracted, frame[0]),
                    frame[0],
                    frame[1],
                )
            )
        else:
            # Biggest subtrees first so stragglers start early; deterministic
            # tie-break keeps the seeded order stable across runs.
            tasks.sort(key=lambda frame: (-bit_count(frame[0]), frame[0], frame[1]))

        report: Dict[str, object] = {
            "workers": workers,
            "backend": backend,
            "model": model,
            "transport": transport,
            "tasks_seeded": len(tasks),
            "inline_components": len(inline_frames),
            "presplit_components": split_components,
            "shared_graph_bytes": 0,
            "frames_resplit": 0,
            "memory_budget_bytes": memory_budget_bytes,
            "spilled_frames": 0,
            "spill_bytes": 0,
        }
        degraded: Optional[str] = None
        # Interruption state accumulated by the parent-side inline searches
        # (small components, degraded fallbacks, leftover completion).
        inline_state: Dict[str, object] = {"reason": None, "incomplete": 0}
        # One disk-backed frontier shared by every parent-side inline
        # search of a budgeted run; each run() drains it before
        # returning, so reuse across calls is safe.
        frontier = (
            SpillFrontier(
                memory_budget_bytes, extracted.n, dir=spill_dir, guard=guard
            )
            if memory_budget_bytes is not None
            else None
        )

        def run_inline(frames: List[Tuple[int, int]]) -> None:
            if not frames:
                return
            if frontier is not None and len(frames) > 1:
                # The DFS pops from the end, so ascending footprint puts
                # the heaviest shard first in execution order.
                frames = sorted(
                    frames,
                    key=lambda frame: (
                        _shard_footprint(extracted, frame[0]),
                        frame[0],
                        frame[1],
                    ),
                )
            frame_search = FrameSearch(searcher, stats, found, size_heap, top_r, guard)
            reason = frame_search.run(
                [(candidates, included, None) for candidates, included in frames],
                frontier=frontier,
            )
            if reason is not None:
                if inline_state["reason"] is None:
                    inline_state["reason"] = reason
                inline_state["incomplete"] += len(frame_search.incomplete)

        def finish_inline(leftover: List[Tuple[Tuple[int, int], int]]) -> None:
            """Finish frames the pool abandoned, skipping credited spawns.

            Replays each leftover frame with the same ``task_budget`` /
            ``max_offload`` offload semantics a worker would have used, so
            its spawn sequence is reproduced deterministically; the first
            ``credited`` spawned subtrees were already enqueued as separate
            tasks (completed or themselves leftover) and are dropped, while
            later ones are appended and finished here. Results therefore
            stay duplicate-free and bit-identical to a healthy run.
            """
            pending = deque(leftover)
            while pending:
                (candidates, included), credited = pending.popleft()
                index = 0
                fresh: List[Tuple[int, int]] = []

                def offload(child, _fresh=fresh, _credited=credited):
                    nonlocal index
                    if index >= _credited:
                        _fresh.append(child)
                    index += 1

                frame_search = FrameSearch(searcher, stats, found, size_heap, top_r, guard)
                reason = frame_search.run(
                    [(candidates, included, None)],
                    budget=task_budget,
                    offload=offload,
                    max_offload=max_offload,
                )
                for child in fresh:
                    pending.append((child, 0))
                if reason is not None:
                    if inline_state["reason"] is None:
                        inline_state["reason"] = reason
                    inline_state["incomplete"] += len(frame_search.incomplete) + len(pending)
                    return

        with obs.span("enumerate"):
            if workers <= 1 or not tasks:
                # Same frames, same order semantics, no processes: results and
                # stats match the multi-worker path bit for bit.
                degraded = "workers<=1" if workers <= 1 else "no parallel tasks"
                run_inline(tasks + inline_frames)
                report["tasks_completed"] = len(tasks)
            else:
                try:
                    shared = SharedCompiledGraph.create(
                        extracted, transport=transport, dir=spill_dir
                    )
                except SharedMemoryError as exc:
                    if strict:
                        raise
                    # Tiny or missing /dev/shm: the parallel payload cannot be
                    # published, so run the identical frames in-process.
                    degraded = f"shared memory unavailable ({exc})"
                    shared = None
                if shared is None:
                    run_inline(tasks + inline_frames)
                    report["tasks_completed"] = len(tasks)
                else:
                    try:
                        scheduler = WorkStealingScheduler(
                            shared,
                            workers,
                            params,
                            selection,
                            maxtest,
                            seed,
                            task_budget=task_budget,
                            max_offload=max_offload,
                            deadline=deadline_ts,
                            max_memory_bytes=max_memory_bytes,
                            frame_retries=frame_retries,
                            max_respawns=max_respawns,
                            strict=strict,
                            drain_timeout=drain_timeout,
                            progress=reporter.update if reporter is not None else None,
                            backend=backend,
                            model=model,
                            top_r=top_r,
                            incumbents=incumbent_rows,
                        )
                        rows, worker_metrics, leftover = scheduler.run(
                            tasks, local_work=lambda: run_inline(inline_frames)
                        )
                    finally:
                        shared.close()
                        shared.unlink()
                    for nodes, positive, negative in rows:
                        found[nodes] = SignedClique(
                            nodes=nodes,
                            params=params,
                            positive_edges=positive,
                            negative_edges=negative,
                        )
                    stats.merge_snapshot(worker_metrics)
                    report.update(scheduler.report)
                    if leftover and not scheduler.report["interrupted"]:
                        # The pool died under us (spawn failures or crashes past
                        # the respawn budget) without a resource guard tripping:
                        # finish the abandoned frames inline so the answer is
                        # still exhaustive.
                        if (
                            scheduler.report["spawn_failures"] > 0
                            and scheduler.report["workers_lost"] == 0
                        ):
                            degraded = "worker spawn failed"
                        else:
                            degraded = "worker pool collapsed"
                        report["incomplete_frames"] = (
                            scheduler.report["incomplete_frames"] - len(leftover)
                        )
                        finish_inline(leftover)

        if frontier is not None:
            report["spilled_frames"] = frontier.spilled_frames
            report["spill_bytes"] = frontier.spill_bytes
            frontier.close()

        interrupted_reason = report.get("interrupted_reason") or inline_state["reason"]
        incomplete_frames = int(report.get("incomplete_frames", 0)) + int(
            inline_state["incomplete"]
        )
        report["interrupted"] = interrupted_reason is not None
        report["interrupted_reason"] = interrupted_reason
        report["incomplete_frames"] = incomplete_frames
        report["degraded"] = degraded
        if degraded is not None:
            obs.journal_event("degraded", reason=degraded)

        with obs.span("merge"):
            cliques = sort_cliques(found.values())
            if top_r is not None:
                cliques = cliques[:top_r]
            stats.maximal_found = len(cliques)
            report["top_r"] = top_r
            if warm is not None:
                report["seeded"] = warm.report
            report["metrics"] = stats.registry.snapshot()
            # Surface the aggregated run metrics in the ambient registry
            # before the root span closes, so the "msce_parallel" span's
            # counter deltas carry the summed search counters.
            obs.merge_metrics(report["metrics"])
        if reporter is not None:
            reporter.finish(int(report.get("tasks_completed", 0)))
    return EnumerationResult(
        cliques=cliques,
        stats=stats,
        elapsed_seconds=time.perf_counter() - started,
        timed_out=interrupted_reason == "deadline",
        parallel=report,
        interrupted=interrupted_reason is not None,
        interrupted_reason=interrupted_reason,
        incomplete_frames=incomplete_frames,
    )


class _GridGroup:
    """Per-(alpha, k) search state of one :func:`enumerate_grid` run."""

    __slots__ = ("params", "searcher", "stats", "found", "size_heap", "reason", "incomplete")

    def __init__(self, params: AlphaK, searcher: MSCE):
        self.params = params
        self.searcher = searcher
        self.stats = SearchStats()
        self.found: Dict[FrozenSet[Node], SignedClique] = {}
        self.size_heap: List[int] = []
        self.reason: Optional[str] = None
        self.incomplete = 0


def enumerate_grid(
    graph: SignedGraph,
    points: Iterable[AlphaK],
    workers: int = 1,
    selection: str = "greedy",
    reduction: str = "mcnew",
    maxtest: str = "exact",
    seed: int = 0,
    small_component: int = SMALL_COMPONENT,
    split_component: int = SPLIT_COMPONENT,
    presplit: Optional[int] = None,
    task_budget: int = DEFAULT_TASK_BUDGET,
    max_offload: int = DEFAULT_MAX_OFFLOAD,
    time_limit: Optional[float] = None,
    max_memory_bytes: Optional[int] = None,
    frame_retries: int = DEFAULT_FRAME_RETRIES,
    max_respawns: Optional[int] = None,
    strict: bool = False,
    drain_timeout: float = RESULT_DRAIN_TIMEOUT,
    reducer: Optional[Callable] = None,
    backend: Optional[str] = None,
    model: Optional[str] = None,
    transport: Optional[str] = None,
    spill_dir: Optional[str] = None,
) -> Dict[AlphaK, EnumerationResult]:
    """Enumerate a whole (alpha, k) grid against one compiled graph.

    The batch counterpart of :func:`enumerate_parallel`: the graph is
    compiled once, each distinct setting is reduced once (``reducer``
    may memoise the coring across settings sharing a ``ceil(alpha * k)``
    ceiling — the serving engine injects one), and the frames of *all*
    settings ride a single :class:`~repro.core.scheduler.WorkStealingScheduler`
    pool over one shared-memory graph segment. Stealing therefore
    balances across the grid: while one setting's giant component drags
    on, idle workers chew through the other settings instead of waiting
    for a per-point barrier.

    Returns an ordered mapping of each *distinct* requested setting to
    an :class:`~repro.core.bbe.EnumerationResult` that is bit-identical
    (cliques and stats) to a sequential ``MSCE(graph, params,
    ...).enumerate_all()`` run of that setting, by the same argument as
    :func:`enumerate_parallel` (frames partition each setting's search
    tree; selection is frame-deterministic). Duplicate points are
    deduplicated, preserving first-seen order.

    ``workers <= 1`` (or a grid with no shippable frames) runs the same
    decomposition inline, and the degradation ladder matches
    :func:`enumerate_parallel`: shared-memory failure, spawn failure or
    pool collapse finish the remaining frames in the parent unless
    ``strict`` is set. A tripped ``time_limit`` / ``max_memory_bytes``
    guard marks the *affected* settings interrupted (their results are
    partial); settings that already completed stay exact.

    ``backend`` selects the kernel tier, ``model`` the signed-cohesion
    constraint, and ``transport`` the graph transport exactly as in
    :func:`enumerate_parallel`: resolved once, shipped to every worker,
    recorded in each result's ``parallel["backend"]`` /
    ``parallel["model"]`` / ``parallel["transport"]``; ``spill_dir``
    locates any mmap-transport artifact.
    """
    _require_positive_int("workers", workers)
    _require_positive_int("task_budget", task_budget)
    _require_positive_int("max_offload", max_offload)
    param_list = list(dict.fromkeys(points))
    if not param_list:
        return {}

    backend = resolve_backend(backend)
    model = resolve_model(model)
    # One model covers the grid, so one soundness mapping covers every
    # point's reduction (the rule reads the model, not the params).
    reduction = make_constraint(model, param_list[0]).reduction_rule(reduction)
    transport = resolve_transport(transport)
    started = time.perf_counter()
    with obs.span(
        "msce_grid",
        points=len(param_list),
        workers=workers,
        selection=selection,
        reduction=reduction,
        backend=backend,
        model=model,
    ):
        deadline_ts = time.monotonic() + time_limit if time_limit is not None else None
        guard = make_guard(deadline_ts, max_memory_bytes)
        compiled = graph if isinstance(graph, CompiledGraph) else compile_graph(graph)

        groups: List[_GridGroup] = []
        inline_frames: List[Tuple[int, Tuple[int, int]]] = []
        tasks: List[Tuple[int, Tuple[int, int]]] = []
        presplit_cap = presplit if presplit is not None else max(4 * workers, 4)
        report: Dict[str, object] = {
            "workers": workers,
            "backend": backend,
            "model": model,
            "transport": transport,
            "grid_points": len(param_list),
            "shared_graph_bytes": 0,
        }
        degraded: Optional[str] = None

        for index, params in enumerate(param_list):
            # Reduce in full-graph index space (no per-group extraction):
            # every group's frames then address the same shared segment.
            if reducer is not None:
                survivor_mask = reducer(compiled, params, reduction)
            else:
                survivor_mask = reduce_mask(compiled, params, method=reduction, backend=backend)
            group = _GridGroup(
                params,
                MSCE(
                    compiled,
                    params,
                    selection=selection,
                    reduction="none",  # reduced above
                    maxtest=maxtest,
                    seed=seed,
                    frame_rng=True,
                    backend=backend,
                    model=model,
                ),
            )
            group.stats.backend = backend
            group.stats.model = model
            groups.append(group)
            for mask in component_masks(compiled, survivor_mask):
                group.stats.components += 1
                size = bit_count(mask)
                if size < small_component:
                    inline_frames.append((index, (mask, 0)))
                elif size < split_component:
                    tasks.append((index, (mask, 0)))
                else:
                    tasks.extend(
                        (index, frame)
                        for frame in decompose_root(
                            group.searcher,
                            mask,
                            group.stats,
                            group.found,
                            group.size_heap,
                            presplit_cap,
                            guard=guard,
                        )
                    )
        # Biggest subtrees first across the whole grid; deterministic
        # tie-break keeps the seeded order stable across runs.
        tasks.sort(key=lambda task: (-bit_count(task[1][0]), task[0], task[1]))
        report["tasks_seeded"] = len(tasks)
        report["inline_components"] = len(inline_frames)

        def run_inline(frames: List[Tuple[int, Tuple[int, int]]]) -> None:
            # One FrameSearch per group per call, same as the sequential
            # enumerator's per-component sweeps; counters are additive so
            # the grouping order cannot affect results.
            by_group: Dict[int, List[Tuple[int, int]]] = {}
            for index, frame in frames:
                by_group.setdefault(index, []).append(frame)
            for index, group_frames in by_group.items():
                group = groups[index]
                frame_search = FrameSearch(
                    group.searcher, group.stats, group.found, group.size_heap, None, guard
                )
                reason = frame_search.run(
                    [(candidates, included, None) for candidates, included in group_frames]
                )
                if reason is not None:
                    if group.reason is None:
                        group.reason = reason
                    group.incomplete += len(frame_search.incomplete)

        def finish_inline(leftover: List[Tuple[int, Tuple[int, int], int]]) -> None:
            # Grouped version of enumerate_parallel's credit-skipping
            # replay: spawn sequences are per-frame deterministic, so the
            # first `credited` shed subtrees of each leftover frame were
            # already enqueued (and completed or handed back) elsewhere.
            pending = deque(leftover)
            while pending:
                index, (candidates, included), credited = pending.popleft()
                group = groups[index]
                spawn_index = 0
                fresh: List[Tuple[int, int]] = []

                def offload(child, _fresh=fresh, _credited=credited):
                    nonlocal spawn_index
                    if spawn_index >= _credited:
                        _fresh.append(child)
                    spawn_index += 1

                frame_search = FrameSearch(
                    group.searcher, group.stats, group.found, group.size_heap, None, guard
                )
                reason = frame_search.run(
                    [(candidates, included, None)],
                    budget=task_budget,
                    offload=offload,
                    max_offload=max_offload,
                )
                for child in fresh:
                    pending.append((index, child, 0))
                if reason is not None:
                    if group.reason is None:
                        group.reason = reason
                    group.incomplete += len(frame_search.incomplete)
                    for other_index, _, _ in pending:
                        groups[other_index].incomplete += 1
                        if groups[other_index].reason is None:
                            groups[other_index].reason = reason
                    return

        with obs.span("enumerate"):
            if workers <= 1 or not tasks:
                degraded = "workers<=1" if workers <= 1 else "no parallel tasks"
                run_inline(tasks + inline_frames)
                report["tasks_completed"] = len(tasks)
            else:
                try:
                    shared = SharedCompiledGraph.create(
                        compiled, transport=transport, dir=spill_dir
                    )
                except SharedMemoryError as exc:
                    if strict:
                        raise
                    degraded = f"shared memory unavailable ({exc})"
                    shared = None
                if shared is None:
                    run_inline(tasks + inline_frames)
                    report["tasks_completed"] = len(tasks)
                else:
                    try:
                        scheduler = WorkStealingScheduler(
                            shared,
                            workers,
                            [group.params for group in groups],
                            selection,
                            maxtest,
                            seed,
                            task_budget=task_budget,
                            max_offload=max_offload,
                            deadline=deadline_ts,
                            max_memory_bytes=max_memory_bytes,
                            frame_retries=frame_retries,
                            max_respawns=max_respawns,
                            strict=strict,
                            drain_timeout=drain_timeout,
                            backend=backend,
                            model=model,
                        )
                        rows_by_group, metrics_by_group, leftover = scheduler.run_grouped(
                            tasks, local_work=lambda: run_inline(inline_frames)
                        )
                    finally:
                        shared.close()
                        shared.unlink()
                    for index, group in enumerate(groups):
                        for nodes, positive, negative in rows_by_group.get(index, []):
                            group.found[nodes] = SignedClique(
                                nodes=nodes,
                                params=group.params,
                                positive_edges=positive,
                                negative_edges=negative,
                            )
                        group.stats.merge_snapshot(metrics_by_group.get(index, {}))
                    report.update(scheduler.report)
                    if scheduler.report["interrupted"]:
                        reason = scheduler.report["interrupted_reason"]
                        for index, _, _ in leftover:
                            groups[index].incomplete += 1
                            if groups[index].reason is None:
                                groups[index].reason = reason
                    elif leftover:
                        if (
                            scheduler.report["spawn_failures"] > 0
                            and scheduler.report["workers_lost"] == 0
                        ):
                            degraded = "worker spawn failed"
                        else:
                            degraded = "worker pool collapsed"
                        finish_inline(leftover)

        report["degraded"] = degraded
        if degraded is not None:
            obs.journal_event("degraded", reason=degraded)

        elapsed = time.perf_counter() - started
        results: Dict[AlphaK, EnumerationResult] = {}
        with obs.span("merge"):
            for index, group in enumerate(groups):
                cliques = sort_cliques(group.found.values())
                group.stats.maximal_found = len(cliques)
                metrics = group.stats.registry.snapshot()
                obs.merge_metrics(metrics)
                results[group.params] = EnumerationResult(
                    cliques=cliques,
                    stats=group.stats,
                    elapsed_seconds=elapsed,
                    timed_out=group.reason == "deadline",
                    parallel=dict(report, grid_group=index, metrics=metrics),
                    interrupted=group.reason is not None,
                    interrupted_reason=group.reason,
                    incomplete_frames=group.incomplete,
                )
    return results
