"""Query-driven signed community search.

The paper motivates maximal (alpha, k)-cliques through community
*detection*, but its introduction also cites the community *search*
problem (Sozio & Gionis's cocktail-party problem): given query nodes,
find the cohesive group around them. MSCE supports this natively — its
search spaces ``(R, I)`` already carry a set of mandatory nodes — so
this module exposes the query variant as a first-class API:

* :func:`signed_cliques_containing` — all maximal (alpha, k)-cliques
  that contain every query node;
* :func:`best_signed_clique_for` — the largest such clique (the
  community-search answer).

The search is seeded with ``I = query`` and its candidate space is the
query's common (sign-blind) neighbourhood inside the MCCore — typically
a tiny subgraph, making community search orders of magnitude cheaper
than full enumeration (see ``benchmarks/test_query_search.py``).

Correctness: every (alpha, k)-clique containing the query consists of
the query plus common neighbours of all query nodes, and lies inside
the MCCore (Lemma 3), so the seeded space covers all answers; and the
maximality test is global, so results are maximal in the whole graph.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set

from repro.algorithms.cliques import common_neighbors
from repro.core.bbe import MSCE, EnumerationResult
from repro.core.cliques import (
    SignedClique,
    violates_clique_constraint,
    violates_negative_constraint,
)
from repro.core.params import AlphaK
from repro.core.reduction import reduce_graph
from repro.exceptions import ParameterError
from repro.graphs.signed_graph import Node, SignedGraph


def _validated_query(graph: SignedGraph, query: Iterable[Node]) -> Set[Node]:
    query_set = set(query)
    if not query_set:
        raise ParameterError("query must contain at least one node")
    missing = [node for node in query_set if not graph.has_node(node)]
    if missing:
        raise ParameterError(f"query nodes not in graph: {sorted(map(repr, missing))}")
    return query_set


def query_candidate_space(
    graph: SignedGraph,
    query: Iterable[Node],
    params: AlphaK,
    reduction: str = "mcnew",
    reducer: Optional[Callable[[SignedGraph, AlphaK, str], Set[Node]]] = None,
) -> Optional[Set[Node]]:
    """Candidate space for cliques containing *query*, or ``None``.

    ``None`` means the answer is provably empty: the query violates the
    clique or negative-edge constraint on its own, or falls outside the
    MCCore. Otherwise the returned set is the query plus every common
    neighbour inside the MCCore whose addition respects the negative
    budget against the query.

    ``reducer`` optionally replaces :func:`~repro.core.reduction.reduce_graph`
    (same ``(graph, params, method) -> node set`` contract); the serving
    engine injects a memoised variant so repeated queries share coring.
    """
    query_set = _validated_query(graph, query)
    if violates_clique_constraint(graph, query_set) is not None:
        return None
    if violates_negative_constraint(graph, query_set, params) is not None:
        return None
    if reducer is not None:
        survivors = reducer(graph, params, reduction)
    else:
        survivors = reduce_graph(graph, params, method=reduction)
    if not query_set <= survivors:
        return None
    budget = params.k
    negative_inside = {
        node: len(graph.negative_neighbors(node) & query_set) for node in query_set
    }
    space = set(query_set)
    for candidate in common_neighbors(graph, query_set, within=survivors):
        negatives = graph.negative_neighbors(candidate) & query_set
        if len(negatives) > budget:
            continue
        if any(negative_inside[member] + 1 > budget for member in negatives):
            continue
        space.add(candidate)
    return space


def query_search(
    graph: SignedGraph,
    query: Iterable[Node],
    alpha: float,
    k: int,
    reduction: str = "mcnew",
    maxtest: str = "exact",
    time_limit: Optional[float] = None,
    max_results: Optional[int] = None,
    reducer: Optional[Callable[[SignedGraph, AlphaK, str], Set[Node]]] = None,
    search_graph: Optional[object] = None,
    backend: Optional[str] = None,
) -> EnumerationResult:
    """Run the seeded search and return the full :class:`EnumerationResult`.

    Every returned clique contains all query nodes and is maximal in the
    whole graph; an empty result with zero recursions means the query
    itself was infeasible.

    ``search_graph`` optionally supplies an already-compiled
    representation of *graph* (a :class:`~repro.fastpath.compiled.CompiledGraph`)
    so long-lived callers avoid recompiling per query; it must describe
    the same graph. ``reducer`` is forwarded to
    :func:`query_candidate_space`. ``backend`` selects the kernel tier
    for the seeded search (results are bit-identical across tiers).
    """
    params = AlphaK(alpha, k)
    query_set = _validated_query(graph, query)
    space = query_candidate_space(
        graph, query_set, params, reduction=reduction, reducer=reducer
    )
    searcher = MSCE(
        graph if search_graph is None else search_graph,
        params,
        reduction=reduction,
        maxtest=maxtest,
        time_limit=time_limit,
        max_results=max_results,
        backend=backend,
    )
    if space is None:
        return searcher.enumerate_seeded(set(), frozenset())
    return searcher.enumerate_seeded(space, frozenset(query_set))


def signed_cliques_containing(
    graph: SignedGraph,
    query: Iterable[Node],
    alpha: float,
    k: int,
    reduction: str = "mcnew",
    maxtest: str = "exact",
    time_limit: Optional[float] = None,
    max_results: Optional[int] = None,
) -> List[SignedClique]:
    """All maximal (alpha, k)-cliques containing every node of *query*.

    Returns an empty list when the query is infeasible (violates a
    constraint on its own or no valid clique exists); raises
    :class:`ParameterError` for an empty query or unknown nodes. Results
    are sorted largest-first.
    """
    result = query_search(
        graph,
        query,
        alpha,
        k,
        reduction=reduction,
        maxtest=maxtest,
        time_limit=time_limit,
        max_results=max_results,
    )
    return result.cliques


def best_signed_clique_for(
    graph: SignedGraph,
    query: Iterable[Node],
    alpha: float,
    k: int,
    time_limit: Optional[float] = None,
) -> Optional[SignedClique]:
    """The largest maximal (alpha, k)-clique containing *query*, or ``None``."""
    cliques = signed_cliques_containing(graph, query, alpha, k, time_limit=time_limit)
    return cliques[0] if cliques else None
