"""Reference enumerators used to validate MSCE.

Two deliberately simple (and deliberately slow) algorithms:

* :func:`brute_force_maximal` — test *every* subset of nodes against
  Definition 1, then keep the containment-maximal ones. Exponential in
  ``n``; guarded to small graphs. This is the ground truth the property
  tests compare everything else against.
* :func:`reference_enumerate` — the "straightforward method" the paper
  describes (and rejects for scale) in Section II: enumerate classic
  maximal cliques with Bron–Kerbosch, enumerate the (alpha, k)-clique
  subsets of each, and de-duplicate / maximality-filter globally.
  Exponential in the largest clique, so it handles medium graphs, and it
  doubles as the paper's implicit baseline for the motivation argument.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Set

from repro.algorithms.cliques import maximal_cliques
from repro.core.cliques import (
    SignedClique,
    filter_maximal_sets,
    is_alpha_k_clique,
    sort_cliques,
)
from repro.core.params import AlphaK
from repro.exceptions import ParameterError
from repro.graphs.signed_graph import Node, SignedGraph


def brute_force_maximal(
    graph: SignedGraph, params: AlphaK, node_limit: int = 20
) -> List[SignedClique]:
    """Ground-truth maximal (alpha, k)-cliques by exhaustive subset testing.

    Raises :class:`ParameterError` when the graph exceeds *node_limit*
    nodes (2^n subsets are generated).
    """
    nodes = sorted(graph.nodes(), key=repr)
    if len(nodes) > node_limit:
        raise ParameterError(
            f"brute force limited to {node_limit} nodes, graph has {len(nodes)}"
        )
    valid: List[FrozenSet[Node]] = []
    min_size = max(params.min_clique_size, 1)
    for size in range(min_size, len(nodes) + 1):
        for subset in combinations(nodes, size):
            subset_set = set(subset)
            if is_alpha_k_clique(graph, subset_set, params):
                valid.append(frozenset(subset_set))
    maximal = filter_maximal_sets(valid)
    return sort_cliques(
        SignedClique.from_nodes(graph, members, params) for members in maximal
    )


def brute_force_constraint(
    graph: SignedGraph, constraint, node_limit: int = 20
) -> List[SignedClique]:
    """Ground-truth maximal cliques of *any* signed-cohesion constraint.

    The model-generic twin of :func:`brute_force_maximal`: sweep every
    node subset through the constraint's
    :meth:`~repro.models.SignedConstraint.feasible` predicate (which
    includes reporting thresholds) and keep those its exact maximality
    test accepts. Maximality is judged by the constraint's own maxtest
    rather than containment among feasible sets, because models with
    reporting thresholds (the balanced model's minimum side size) define
    maximality against *all* model-valid cliques, not just the
    reportable ones. Exponential in ``n``; raises
    :class:`ParameterError` past *node_limit* nodes.
    """
    nodes = sorted(graph.nodes(), key=repr)
    if len(nodes) > node_limit:
        raise ParameterError(
            f"brute force limited to {node_limit} nodes, graph has {len(nodes)}"
        )
    maxtest = constraint.make_maxtest("exact")
    params = constraint.params
    found: List[FrozenSet[Node]] = []
    for size in range(1, len(nodes) + 1):
        for subset in combinations(nodes, size):
            subset_set = set(subset)
            if constraint.feasible(graph, subset_set) and maxtest(
                graph, subset_set, params
            ):
                found.append(frozenset(subset_set))
    return sort_cliques(
        SignedClique.from_nodes(graph, members, params) for members in found
    )


def _alpha_k_subsets(
    graph: SignedGraph, clique: FrozenSet[Node], params: AlphaK, size_limit: int
) -> List[FrozenSet[Node]]:
    """All (alpha, k)-clique subsets of one classic maximal clique."""
    members = sorted(clique, key=repr)
    if len(members) > size_limit:
        raise ParameterError(
            f"reference enumeration limited to maximal cliques of {size_limit} nodes, "
            f"found one with {len(members)}"
        )
    found: List[FrozenSet[Node]] = []
    min_size = max(params.min_clique_size, 1)
    for size in range(min_size, len(members) + 1):
        for subset in combinations(members, size):
            subset_set = set(subset)
            # Subsets of a clique are cliques; only the sign constraints
            # need checking, but the full predicate keeps this honest.
            if is_alpha_k_clique(graph, subset_set, params):
                found.append(frozenset(subset_set))
    return found


def reference_enumerate(
    graph: SignedGraph, params: AlphaK, max_clique_size: int = 22
) -> List[SignedClique]:
    """Maximal (alpha, k)-cliques via the paper's "straightforward method".

    Every (alpha, k)-clique is a clique, hence a subset of some classic
    maximal clique; collecting the valid subsets of every Bron–Kerbosch
    clique and keeping the containment-maximal ones therefore yields the
    exact answer. The method's cost — the reason the paper builds MSCE —
    is the per-maximal-clique 2^|C| subset sweep and the global
    de-duplication across overlapping maximal cliques.
    """
    candidates: Set[FrozenSet[Node]] = set()
    for clique in maximal_cliques(graph, sign="all"):
        for subset in _alpha_k_subsets(graph, clique, params, max_clique_size):
            candidates.add(subset)
    maximal = filter_maximal_sets(candidates)
    return sort_cliques(
        SignedClique.from_nodes(graph, members, params) for members in maximal
    )
