"""Greedy heuristic signed clique search (scalable approximate mode).

MSCE is exact but worst-case exponential; on graphs beyond its reach a
user still wants *some* good signed cliques. This module grows maximal
(alpha, k)-cliques greedily:

1. seed from each MCCore node in descending positive-degree order
   (or user-provided seeds);
2. repeatedly add the candidate with the most positive ties into the
   current set, among those keeping the clique + negative-budget
   pattern;
3. when no candidate remains, validate the grown set (the greedy path
   can stall below the positive threshold — such seeds yield nothing);
4. de-duplicate and report, largest first.

Every returned clique is a genuine **maximal** (alpha, k)-clique (the
grown set is maximal by construction: growth stops only when no node
can extend it — single-node extensions — and is then certified with the
exact test, dropping rare two-node-lift cases). The heuristic trades
*completeness* for speed: it finds at most one clique per seed. The
``exact vs greedy`` ablation benchmark measures the recall this buys on
the paper workloads.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Set

from repro.core.cliques import SignedClique, is_alpha_k_clique, sort_cliques
from repro.core.maxtest import is_maximal
from repro.core.params import AlphaK
from repro.core.reduction import reduce_graph
from repro.graphs.signed_graph import Node, SignedGraph


def _grow_clique(
    graph: SignedGraph, seed: Node, members: Set[Node], params: AlphaK
) -> Set[Node]:
    """Greedily grow a clique from *seed* within *members*."""
    budget = params.k
    current: Set[Node] = {seed}
    negative_inside = {seed: 0}
    candidates = {
        node
        for node in graph.neighbor_keys(seed) & members
        if len(graph.negative_neighbors(node) & current) <= budget
    }
    while candidates:
        # Most positive ties into the current set; ties by repr.
        best = max(
            candidates,
            key=lambda node: (len(graph.positive_neighbors(node) & current), repr(node)),
        )
        current.add(best)
        negative_inside[best] = len(graph.negative_neighbors(best) & current)
        for member in graph.negative_neighbors(best) & current:
            if member != best:
                negative_inside[member] += 1
        adjacency = graph.neighbor_keys(best)
        retained = set()
        for node in candidates:
            if node == best or node not in adjacency:
                continue
            negatives = graph.negative_neighbors(node) & current
            if len(negatives) > budget:
                continue
            if any(negative_inside[member] + 1 > budget for member in negatives):
                continue
            retained.add(node)
        candidates = retained
    return current


def greedy_signed_cliques(
    graph: SignedGraph,
    alpha: float,
    k: int,
    seeds: Optional[Iterable[Node]] = None,
    max_seeds: Optional[int] = None,
    reduction: str = "mcnew",
    certify: bool = True,
    within: Optional[Iterable[Node]] = None,
    deadline: Optional[float] = None,
) -> List[SignedClique]:
    """Greedily find maximal (alpha, k)-cliques (approximate, scalable).

    Parameters
    ----------
    graph, alpha, k:
        The problem instance.
    seeds:
        Nodes to grow from (default: every MCCore node in descending
        positive-degree order).
    max_seeds:
        Cap the number of seeds processed (cost control).
    reduction:
        Pre-pruning strength, as in :class:`MSCE`.
    certify:
        When ``True`` (default), each grown clique is certified with the
        exact Definition-2 maximality test; uncertified mode keeps
        cliques maximal under single-node extension only (faster, can
        rarely include a non-maximal clique).
    within:
        Restrict growth to this node region (intersected with the
        reduced member set). Maximality is still certified against the
        *whole* graph, so region-restricted growth leans on the certify
        step: a set maximal inside the region may be extensible — even
        only by a multi-node lift — outside it.
    deadline:
        Absolute :func:`time.perf_counter` deadline; seed processing
        stops (returning what was found so far) once it passes.

    Returns
    -------
    Distinct valid (alpha, k)-cliques, largest first — a subset of the
    exact answer, not necessarily all of it.
    """
    params = AlphaK(alpha, k)
    members = reduce_graph(graph, params, method=reduction)
    if within is not None:
        members = members & set(within)
    if not members:
        return []
    if seeds is None:
        ordered = sorted(
            members,
            key=lambda node: (-len(graph.positive_neighbors(node) & members), repr(node)),
        )
    else:
        ordered = [node for node in seeds if node in members]
    if max_seeds is not None:
        ordered = ordered[:max_seeds]

    found = {}
    for seed in ordered:
        if deadline is not None and time.perf_counter() >= deadline:
            break
        grown = _grow_clique(graph, seed, members, params)
        key = frozenset(grown)
        if key in found or not is_alpha_k_clique(graph, grown, params):
            continue
        if certify and not is_maximal(graph, grown, params):
            continue
        found[key] = SignedClique.from_nodes(graph, grown, params)
    return sort_cliques(found.values())
