"""Parameter object for the (alpha, k)-clique model.

Definition 1 of the paper takes a positive real ``alpha`` (alpha >= 1)
and an integer ``k``:

* **negative-edge constraint** — every member has at most ``k`` negative
  neighbours inside the clique;
* **positive-edge constraint** — every member has at least ``alpha * k``
  positive neighbours inside the clique. Degrees are integers, so this
  is equivalent to ``d+ >= ceil(alpha * k)``; the paper uses the ceiled
  form throughout and so do we (:attr:`AlphaK.positive_threshold`).

The paper's NP-hardness argument uses the degenerate setting
``alpha = 0, k = d-_max`` (classic maximal cliques), so this library
accepts ``alpha >= 0`` and treats ``alpha < 1`` as an explicitly
degenerate regime rather than rejecting it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ParameterError


@dataclass(frozen=True)
class AlphaK:
    """Validated (alpha, k) parameters with derived thresholds.

    Attributes
    ----------
    alpha:
        Positive-degree multiplier (``alpha >= 0``; the paper's model
        assumes ``alpha >= 1``, while ``alpha = 0`` recovers classic
        maximal cliques when paired with ``k = d-_max``).
    k:
        Negative-degree budget per member (``k >= 0``).

    Examples
    --------
    >>> p = AlphaK(alpha=3, k=1)
    >>> p.positive_threshold
    3
    >>> p.min_clique_size
    4
    """

    alpha: float
    k: int

    def __post_init__(self):
        if not isinstance(self.k, int):
            # Allow exact float integers such as 3.0 for convenience.
            if isinstance(self.k, float) and self.k.is_integer():
                object.__setattr__(self, "k", int(self.k))
            else:
                raise ParameterError(f"k must be an integer, got {self.k!r}")
        if self.k < 0:
            raise ParameterError(f"k must be non-negative, got {self.k}")
        if not (self.alpha >= 0):
            raise ParameterError(f"alpha must be non-negative, got {self.alpha!r}")

    @property
    def positive_threshold(self) -> int:
        """``ceil(alpha * k)`` — the minimum within-clique positive degree."""
        return math.ceil(self.alpha * self.k)

    @property
    def core_order(self) -> int:
        """Order of the ego-network core test: ``positive_threshold - 1``.

        Lemma 2: inside an (alpha, k)-clique, every member's positive
        neighbourhood must contain a (``ceil(alpha*k) - 1``)-core.
        Clamped at 0, where the test is vacuous.
        """
        return max(self.positive_threshold - 1, 0)

    @property
    def min_clique_size(self) -> int:
        """Smallest possible (alpha, k)-clique: ``positive_threshold + 1``.

        Every member needs ``positive_threshold`` positive neighbours
        inside the clique, so at least that many other members exist.
        For degenerate parameters (threshold 0) the minimum size is 1.
        """
        return self.positive_threshold + 1

    @property
    def is_degenerate(self) -> bool:
        """``True`` when the positive-edge constraint is vacuous.

        Happens when ``alpha * k == 0``; core-based pruning then cannot
        remove anything and the model reduces to negative-budgeted
        cliques (``k = 0`` further reduces to maximal cliques of G+).
        """
        return self.positive_threshold == 0

    def __str__(self) -> str:
        return f"(alpha={self.alpha:g}, k={self.k})"


def make_params(alpha: float, k: int) -> AlphaK:
    """Validate and construct an :class:`AlphaK` (convenience wrapper)."""
    return AlphaK(alpha=alpha, k=k)
