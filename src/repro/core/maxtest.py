"""Maximality testing for (alpha, k)-cliques (Definition 2).

An (alpha, k)-clique ``C`` is *maximal* iff no (alpha, k)-clique
strictly contains it. Any strict superset extends ``C`` by nodes that
are (sign-blind) common neighbours of all of ``C``, so the test searches
clique extensions inside ``CN(C)``.

Two tests are provided:

* :func:`single_extension_test` — the paper's ``MaxTest`` (Algorithm 4,
  lines 21-25): declare non-maximal as soon as one common neighbour
  ``v`` keeps every node of ``C ∪ {v}`` within the negative budget.
  Sound in one direction only: because negative degrees are monotone,
  a valid superset always yields such a ``v``, so *"maximal"* answers
  are always correct — but *"non-maximal"* answers may be wrong, since
  ``C ∪ {v}`` can fail the positive-edge constraint while no larger
  valid superset exists.
* :func:`is_maximal` — exact test: a branch-and-bound search over
  subsets of the viable common neighbours, with positive-core pruning.
  This is the default used by the enumerators so that Definition 2 is
  honoured exactly (and so the brute-force cross-validation tests can
  pass); ``maxtest="paper"`` selects the heuristic for ablations.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.algorithms.cliques import common_neighbors
from repro.algorithms.kcore import icore
from repro.core.cliques import is_alpha_k_clique
from repro.core.params import AlphaK
from repro.graphs.signed_graph import Node, SignedGraph


def _viable_single_extensions(
    graph: SignedGraph, members: Set[Node], params: AlphaK
) -> List[Node]:
    """Common neighbours whose addition keeps the negative budget intact.

    A node ``v`` is viable iff every node of ``members | {v}`` has at
    most ``k`` negative neighbours inside that set. Non-viable nodes can
    never participate in any superset clique (monotonicity), so this is
    both the paper's MaxTest filter and the starting candidate set of
    the exact search.
    """
    budget = params.k
    negative_inside: Dict[Node, int] = {
        node: len(graph.negative_neighbors(node) & members) for node in members
    }
    viable: List[Node] = []
    for v in common_neighbors(graph, members):
        negatives = graph.negative_neighbors(v) & members
        if len(negatives) > budget:
            continue
        if any(negative_inside[w] + 1 > budget for w in negatives):
            continue
        viable.append(v)
    return viable


def single_extension_test(graph: SignedGraph, members: Set[Node], params: AlphaK) -> bool:
    """The paper's MaxTest: ``True`` iff no single extension fits the budget.

    Returns ``True`` (reported maximal) when every common neighbour
    would push some node of the extended set over the negative budget.
    See the module docstring for the direction in which this test can be
    wrong.
    """
    return not _viable_single_extensions(graph, set(members), params)


def _extension_search(
    graph: SignedGraph,
    current: Set[Node],
    candidates: Set[Node],
    params: AlphaK,
    base_size: int,
) -> bool:
    """Return ``True`` if some clique extension of *current* is valid.

    Invariants: *current* is a clique satisfying the negative-edge
    constraint; every candidate is adjacent to all of *current* and its
    addition would keep the negative budget. The positive constraint is
    the only one re-checked per node.
    """
    if len(current) > base_size and is_alpha_k_clique(graph, current, params):
        return True
    if not candidates:
        return False
    # Positive-core pruning: a valid extension is a ceil(alpha*k)-core
    # of the positive-edge graph on current | candidates fixing current.
    threshold = params.positive_threshold
    if threshold > 0:
        flag, core = icore(
            graph, fixed=current, tau=threshold, within=current | candidates, sign="positive"
        )
        if not flag:
            return False
        candidates = candidates & core

    budget = params.k
    remaining = set(candidates)
    for v in sorted(remaining, key=repr):
        if v not in remaining:
            continue
        new_members = current | {v}
        new_candidates: Set[Node] = set()
        negative_inside = {
            node: len(graph.negative_neighbors(node) & new_members) for node in new_members
        }
        adjacency = graph.neighbors(v)
        for w in remaining:
            if w == v or w not in adjacency:
                continue
            negatives = graph.negative_neighbors(w) & new_members
            if len(negatives) > budget:
                continue
            if any(negative_inside[x] + 1 > budget for x in negatives):
                continue
            new_candidates.add(w)
        if _extension_search(graph, new_members, new_candidates, params, base_size):
            return True
        remaining.discard(v)
    return False


def is_maximal(graph: SignedGraph, members: Set[Node], params: AlphaK) -> bool:
    """Exact Definition-2 maximality test for an (alpha, k)-clique.

    Assumes *members* already is an (alpha, k)-clique (the enumerator
    guarantees it; use :func:`repro.core.cliques.is_alpha_k_clique` to
    check independently). Returns ``True`` iff no (alpha, k)-clique
    strictly contains *members*.
    """
    member_set = set(members)
    viable = _viable_single_extensions(graph, member_set, params)
    if not viable:
        return True
    return not _extension_search(graph, member_set, set(viable), params, len(member_set))


def make_maxtest(kind: str):
    """Return the maximality predicate for *kind* (``"exact"``/``"paper"``)."""
    if kind == "exact":
        return is_maximal
    if kind == "paper":
        return single_extension_test
    from repro.exceptions import ParameterError

    raise ParameterError(f"unknown maxtest kind {kind!r}; expected 'exact' or 'paper'")
