"""Signed clique percolation: from maximal cliques to communities.

The paper motivates maximal (alpha, k)-cliques as community building
blocks; clique percolation (Palla et al., Nature 2005) is the classic
way to assemble blocks into communities: two cliques belong to the same
community when they share at least ``overlap`` members, and communities
are the connected components of that clique-overlap relation. Members
of several cliques make the communities naturally overlapping.

Applied to *signed* cliques, percolation inherits the model's
guarantees inside every block (bounded conflict, guaranteed friendship)
while recovering communities larger than any single clique — the
missing piece between the enumeration output and the detection
benchmarks (`examples/detection_benchmark.py` shows the coverage/omega
gain over raw cliques).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.core.bbe import MSCE
from repro.core.cliques import SignedClique
from repro.core.params import AlphaK
from repro.exceptions import ParameterError
from repro.graphs.signed_graph import Node, SignedGraph


def merge_overlapping_cliques(
    cliques: Sequence[SignedClique],
    overlap: int = 2,
) -> List[Set[Node]]:
    """Union-find percolation over a clique list.

    Two cliques join the same community when they share >= *overlap*
    members. Returns the community node sets, largest first. Linear-ish
    via a node->cliques inverted index; the pairwise overlap test runs
    only between cliques sharing at least one node.
    """
    if overlap < 1:
        raise ParameterError(f"overlap must be >= 1, got {overlap}")
    parent = list(range(len(cliques)))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    by_node: Dict[Node, List[int]] = {}
    for index, clique in enumerate(cliques):
        for node in clique.nodes:
            by_node.setdefault(node, []).append(index)

    # Candidate pairs share a node; check the full overlap only there.
    checked: Set[FrozenSet[int]] = set()
    for indices in by_node.values():
        for i in range(len(indices)):
            for j in range(i + 1, len(indices)):
                a, b = indices[i], indices[j]
                if find(a) == find(b):
                    continue
                pair = frozenset((a, b))
                if pair in checked:
                    continue
                checked.add(pair)
                if len(cliques[a].nodes & cliques[b].nodes) >= overlap:
                    union(a, b)

    groups: Dict[int, Set[Node]] = {}
    for index, clique in enumerate(cliques):
        groups.setdefault(find(index), set()).update(clique.nodes)
    return sorted(groups.values(), key=lambda c: (-len(c), sorted(map(repr, c))))


def signed_clique_percolation(
    graph: SignedGraph,
    alpha: float,
    k: int,
    overlap: int = 2,
    time_limit: Optional[float] = None,
    max_results: Optional[int] = None,
) -> List[Set[Node]]:
    """Detect (possibly overlapping) communities by signed clique percolation.

    Enumerates the maximal (alpha, k)-cliques (optionally capped) and
    merges those sharing >= *overlap* members. Every returned community
    is a union of signed cliques — locally dense with bounded conflict —
    and communities can overlap in shared members.
    """
    params = AlphaK(alpha, k)
    result = MSCE(
        graph, params, time_limit=time_limit, max_results=max_results
    ).enumerate_all()
    return merge_overlapping_cliques(result.cliques, overlap=overlap)
