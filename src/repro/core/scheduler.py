"""Work-stealing scheduler for intra-component parallel MSCE.

The unit of work is a *frame*: a ``(candidates, included)`` bitmask
pair over a shared compiled graph — one node of MSCE's branch-and-bound
tree together with the whole subtree below it. The parent seeds the
queue with root frames (whole small-ish components, plus the
degeneracy-ordered root branches of giant components, see
:func:`repro.fastpath.search.decompose_root`); workers then keep the
queue warm themselves:

* every worker runs :meth:`repro.core.bbe.MSCE.run_frames` with a
  **node budget** — after ``task_budget`` processed frames it stops
  recursing into the deepest unexplored branches (the bottom of its
  DFS stack, which root the largest remaining subtrees) and sends them
  back as ``spawn`` messages;
* the parent re-enqueues spawned frames, so an idle worker steals
  exactly the big chunks a loaded worker sheds — adaptive re-splitting
  without any shared-state locking in the workers.

Graph data never rides on the queue: workers attach the
:class:`~repro.fastpath.shared.SharedCompiledGraph` block once per
process and every task is just two integers. Because each frame is
processed exactly once somewhere with frame-deterministic semantics
(see :class:`~repro.fastpath.search.FrameSearch`), the merged clique
set and the summed :class:`~repro.core.bbe.SearchStats` are
bit-identical across worker counts, scheduling orders and repeated
runs.

Completion accounting lives entirely in the parent: ``pending`` starts
at the number of seeded tasks, each ``spawn`` message increments it
(the parent is the only writer of the task queue, so a spawned frame's
``done`` can never be observed before its ``spawn``), each ``done``
decrements it, and ``pending == 0`` means the tree is exhausted. Worker
results stream back per task and are merged in completion order, so
clique construction in the parent overlaps with straggler subtrees.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.params import AlphaK

#: Frames processed by a worker before it sheds its deepest branches.
DEFAULT_TASK_BUDGET = 512

#: Maximum frames shed per budget overrun.
DEFAULT_MAX_OFFLOAD = 16

#: A task on the wire: (candidates mask, included mask).
TaskFrame = Tuple[int, int]

#: A finished clique on the wire: (member nodes, positive, negative).
CliqueRow = Tuple[frozenset, int, int]


def _make_context():
    """Prefer ``fork`` (cheap start, one resource tracker); fall back."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _worker_main(task_queue, result_queue, shared_meta, config) -> None:
    """Worker loop: attach the shared graph once, then drain frames.

    *config* is ``(params, selection, maxtest, seed, task_budget,
    max_offload)``. Each task is searched with
    :meth:`~repro.core.bbe.MSCE.run_frames`; branches shed by the node
    budget go back to the parent as ``("spawn", frame)`` messages
    *before* the task's ``("done", rows, stats)`` message, keeping the
    parent's pending count conservative.
    """
    from repro.core.bbe import MSCE
    from repro.fastpath.shared import SharedCompiledGraph

    view = None
    try:
        params, selection, maxtest, seed, task_budget, max_offload = config
        view = SharedCompiledGraph.attach(shared_meta)
        # MSCE materialises the maxtest/emit source graph eagerly, so the
        # one-off reconstruction cost lands here, once per process.
        searcher = MSCE(
            view.graph,
            params,
            selection=selection,
            reduction="none",  # the parent already reduced
            maxtest=maxtest,
            seed=seed,
            frame_rng=True,
        )
    except BaseException:
        result_queue.put(("error", traceback.format_exc()))
        return
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            try:
                result = searcher.run_frames(
                    [task],
                    budget=task_budget,
                    offload=lambda frame: result_queue.put(("spawn", frame)),
                    max_offload=max_offload,
                )
                rows: List[CliqueRow] = [
                    (clique.nodes, clique.positive_edges, clique.negative_edges)
                    for clique in result.cliques
                ]
                result_queue.put(("done", rows, result.stats.as_dict()))
            except BaseException:
                result_queue.put(("error", traceback.format_exc()))
                return
    finally:
        if view is not None:
            view.close()


class WorkStealingScheduler:
    """Drive frame tasks over worker processes with adaptive re-splitting.

    Parameters
    ----------
    shared:
        The parent-owned :class:`~repro.fastpath.shared.SharedCompiledGraph`
        every worker attaches to (the parent keeps ownership; this class
        never unlinks it).
    workers:
        Number of worker processes to spawn.
    params, selection, maxtest, seed:
        The enumerator configuration, forwarded verbatim to each
        worker's :class:`~repro.core.bbe.MSCE`.
    task_budget, max_offload:
        Re-splitting knobs: frames processed before shedding, and how
        many bottom-of-stack frames one shed may move. Both only change
        scheduling granularity — never results or stats.
    """

    def __init__(
        self,
        shared,
        workers: int,
        params: AlphaK,
        selection: str,
        maxtest: str,
        seed: int,
        task_budget: int = DEFAULT_TASK_BUDGET,
        max_offload: int = DEFAULT_MAX_OFFLOAD,
    ):
        self.shared = shared
        self.workers = max(1, workers)
        self.config = (params, selection, maxtest, seed, task_budget, max_offload)
        #: Filled by :meth:`run`: tasks executed, frames re-split, bytes.
        self.report: Dict[str, int] = {}

    def run(
        self,
        tasks: List[TaskFrame],
        local_work: Optional[Callable[[], None]] = None,
    ) -> Tuple[List[CliqueRow], Dict[str, int]]:
        """Execute *tasks* to exhaustion; return merged rows and stats.

        *local_work* (the parent's inline small-component sweep) runs
        after the queue is seeded and before result pumping, so it
        overlaps with the workers' first tasks. Returns the clique rows
        from all tasks (duplicate-free by construction — frames
        partition the search tree) and the summed per-task
        ``SearchStats`` counters.
        """
        ctx = _make_context()
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        processes = [
            ctx.Process(
                target=_worker_main,
                args=(task_queue, result_queue, self.shared.meta, self.config),
                daemon=True,
            )
            for _ in range(self.workers)
        ]
        for process in processes:
            process.start()
        for task in tasks:
            task_queue.put(task)

        rows: List[CliqueRow] = []
        stats_total: Dict[str, int] = {}
        pending = len(tasks)
        spawned = 0
        completed = 0
        try:
            if local_work is not None:
                local_work()
            while pending > 0:
                try:
                    message = result_queue.get(timeout=1.0)
                except queue_module.Empty:
                    dead = [p for p in processes if p.exitcode not in (None, 0)]
                    if dead:
                        raise RuntimeError(
                            f"parallel worker died with exit code {dead[0].exitcode}"
                        )
                    continue
                kind = message[0]
                if kind == "spawn":
                    task_queue.put(message[1])
                    pending += 1
                    spawned += 1
                elif kind == "done":
                    pending -= 1
                    completed += 1
                    rows.extend(message[1])
                    for key, value in message[2].items():
                        stats_total[key] = stats_total.get(key, 0) + value
                else:
                    raise RuntimeError(f"parallel worker failed:\n{message[1]}")
        finally:
            for _ in processes:
                task_queue.put(None)
            for process in processes:
                process.join(timeout=5.0)
            for process in processes:
                if process.is_alive():  # pragma: no cover - defensive
                    process.terminate()
                    process.join(timeout=1.0)
            task_queue.close()
            result_queue.close()
        self.report = {
            "tasks_seeded": len(tasks),
            "tasks_completed": completed,
            "frames_resplit": spawned,
            "shared_graph_bytes": self.shared.nbytes,
        }
        return rows, stats_total
