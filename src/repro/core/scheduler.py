"""Fault-tolerant work-stealing scheduler for intra-component parallel MSCE.

The unit of work is a *frame*: a ``(candidates, included)`` bitmask
pair over a shared compiled graph — one node of MSCE's branch-and-bound
tree together with the whole subtree below it. The parent seeds the
pool with root frames (whole small-ish components, plus the
degeneracy-ordered root branches of giant components, see
:func:`repro.fastpath.search.decompose_root`); workers then keep the
pool warm themselves:

* every worker runs :meth:`repro.core.bbe.MSCE.run_frames` with a
  **node budget** — after ``task_budget`` processed frames it stops
  recursing into the deepest unexplored branches (the bottom of its
  DFS stack, which root the largest remaining subtrees) and sends them
  back as ``spawn`` messages;
* the parent re-enqueues spawned frames and assigns them to the
  least-loaded worker, so an idle worker steals exactly the big chunks
  a loaded worker sheds — adaptive re-splitting without any
  shared-state locking in the workers.

Graph data never rides on the queues: workers attach the
:class:`~repro.fastpath.shared.SharedCompiledGraph` block once per
process and every task is three integers. Because each frame is
processed exactly once somewhere with frame-deterministic semantics
(see :class:`~repro.fastpath.search.FrameSearch`), the merged clique
set and the summed :class:`~repro.core.bbe.SearchStats` are
bit-identical across worker counts, scheduling orders and repeated
runs.

Fault tolerance
---------------
Unlike a bare process pool, this scheduler assumes workers *will* die
and frames *will* misbehave on long production runs:

* **Ownership tracking + retry.** Tasks are assigned to a specific
  worker through a per-worker queue, so the parent always knows which
  frames are riding on which process. When a worker dies (nonzero exit,
  unexpected exit, or a ``fatal`` message), its outstanding frames are
  re-queued and the worker slot is respawned with a bumped *epoch*. A
  frame whose attempts exceed ``frame_retries`` is **quarantined** —
  reported in :attr:`quarantined`, never retried forever.
* **Exactly-once accounting under retry.** A worker streams its shed
  frames as ``spawn`` messages tagged with a per-task index, but its
  rows and stats ride only on the final ``done`` message — a crashed
  attempt therefore contributes *nothing*. Because the spawn sequence
  of a task is a pure function of the task (offload points depend only
  on processed-frame counts), a retry re-emits the same spawns in the
  same order; the parent credits each index once and drops replays, so
  no subtree is enqueued twice and no counter is double-summed. This is
  what keeps results bit-identical even under injected worker crashes.
* **Deadline / memory guards.** An absolute ``deadline``
  (``time.monotonic`` scale, shared by parent and workers) and a
  ``max_memory_bytes`` ceiling stop the run cooperatively: workers
  return partial ``interrupted`` results for in-flight tasks, the
  parent stops assigning, and :meth:`run` hands back the unfinished
  frames instead of raising.
* **Graceful degradation.** If the pool collapses entirely (spawn
  failures, repeated crashes past the respawn budget) the scheduler
  returns the unfinished frames — with their spawn credit, so the
  caller can finish them inline without re-running already-credited
  subtrees. ``strict=True`` turns that into
  :class:`~repro.exceptions.WorkerCrashError` instead.
* **Leak-proof shutdown.** Every path — exhaustion, interruption,
  collapse, ``KeyboardInterrupt`` — drains the result queue for rows
  healthy workers already completed, cancels the task queues' feeder
  joins (so a full queue cannot hang shutdown), joins or terminates
  every child, and closes all queues. The shared graph segment itself
  is owned by the caller (plus a crash-path finalizer in
  :class:`~repro.fastpath.shared.SharedCompiledGraph`).

Completion accounting lives entirely in the parent: ``pending`` starts
at the number of seeded tasks, each credited ``spawn`` increments it,
each completed or quarantined task decrements it, and ``pending == 0``
means the tree is exhausted. Worker results stream back per task and
are merged in completion order, so clique construction in the parent
overlaps with straggler subtrees.
"""

from __future__ import annotations

import queue as queue_module
import time
import traceback
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.params import AlphaK
from repro.exceptions import WorkerCrashError
from repro.limits import make_guard
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry
from repro.testing import faults

#: Frames processed by a worker before it sheds its deepest branches.
DEFAULT_TASK_BUDGET = 512

#: Maximum frames shed per budget overrun.
DEFAULT_MAX_OFFLOAD = 16

#: Failed attempts a frame survives before it is quarantined
#: (``frame_retries = 2`` means three attempts total).
DEFAULT_FRAME_RETRIES = 2

#: Tasks queued to one worker at a time (1 running + 1 prefetched keeps
#: the pipe full without hoarding stealable work).
DEFAULT_PREFETCH = 2

#: Seconds the graceful shutdown path spends draining the result queue
#: for rows healthy workers completed while a sibling failed. The window
#: only bounds the *salvage* sweep after sentinels were acknowledged —
#: normal completion never waits on it — so it trades a small worst-case
#: shutdown delay against losing finished work; ``drain_timeout`` on
#: :class:`WorkStealingScheduler` overrides it per run.
RESULT_DRAIN_TIMEOUT = 0.5

#: A task on the wire: (candidates mask, included mask).
TaskFrame = Tuple[int, int]

#: A finished clique on the wire: (member nodes, positive, negative).
CliqueRow = Tuple[frozenset, int, int]

#: An unfinished frame handed back to the caller:
#: ``(frame, spawns_credited)`` — the credit count lets an inline
#: re-run skip the subtrees that were already shed as separate tasks.
LeftoverFrame = Tuple[TaskFrame, int]

#: A grouped task: ``(group index, frame)`` — the group selects which
#: parameter setting (one entry of the scheduler's ``params`` sequence)
#: the frame is searched under. Grid runs interleave frames of many
#: (alpha, k) settings through one pool and one shared graph segment.
GroupedTask = Tuple[int, TaskFrame]

#: A grouped leftover: ``(group, frame, spawns_credited)``.
GroupedLeftover = Tuple[int, TaskFrame, int]

# Task lifecycle states (parent-side bookkeeping).
_QUEUED, _ASSIGNED, _COMPLETED, _QUARANTINED = range(4)


def _make_context():
    """Prefer ``fork`` (cheap start, one resource tracker); fall back."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class _Task:
    """Parent-side record of one frame's journey through the pool."""

    __slots__ = (
        "task_id",
        "frame",
        "group",
        "attempts",
        "spawns_credited",
        "state",
        "assigned",
        "origin",
    )

    def __init__(
        self,
        task_id: int,
        frame: TaskFrame,
        origin: Optional[int] = None,
        group: int = 0,
    ):
        self.task_id = task_id
        self.frame = frame
        #: Index into the scheduler's parameter groups.
        self.group = group
        #: Failed attempts so far (crash or in-task exception).
        self.attempts = 0
        #: Spawn messages accepted for this task across all attempts.
        self.spawns_credited = 0
        self.state = _QUEUED
        #: ``(slot, epoch)`` currently holding the task, or ``None``.
        self.assigned: Optional[Tuple[int, int]] = None
        #: Slot that shed this frame (``None`` for parent-seeded tasks);
        #: assignment to any *other* slot is a steal, journalled as such.
        self.origin = origin


class _Worker:
    """One worker slot: a process, its private task queue, its cargo."""

    __slots__ = ("slot", "epoch", "process", "queue", "in_flight")

    def __init__(self, slot: int, epoch: int, process, queue):
        self.slot = slot
        self.epoch = epoch
        self.process = process
        self.queue = queue
        #: Tasks assigned to this incarnation, by task id.
        self.in_flight: Dict[int, _Task] = {}


def _worker_main(slot, epoch, task_queue, result_queue, shared_meta, config) -> None:
    """Worker loop: attach the shared graph once, then drain frames.

    *config* is ``(param_groups, selection, maxtest, seed, task_budget,
    max_offload, deadline, max_memory_bytes, backend, model, top_r,
    incumbent_rows)`` where ``param_groups`` is
    a tuple of :class:`~repro.core.params.AlphaK` settings; each task
    names its group and the worker keeps one lazily-built
    :class:`~repro.core.bbe.MSCE` per group, all sharing the attached
    graph (single-setting runs have exactly one group, so this is the
    old behaviour). ``top_r`` (single-group runs only) turns on the
    size-based subspace cutoff inside every task, and
    ``incumbent_rows`` — :data:`CliqueRow` tuples of the parent's
    warm-start incumbents — preload each task's size heap so the
    cutoff binds from the task's first frame; both default to
    ``None`` / empty for full enumeration. Each task is searched with
    :meth:`~repro.core.bbe.MSCE.run_frames`; branches shed by the
    node budget go back as indexed ``spawn`` messages *before* the
    task's terminal message, keeping the parent's pending count
    conservative. Terminal messages per task:

    * ``("done", slot, epoch, task_id, rows, stats)`` — exhausted;
    * ``("interrupted", slot, epoch, task_id, rows, stats, dropped,
      reason)`` — the deadline / memory guard tripped mid-task;
    * ``("task_error", slot, epoch, task_id, traceback)`` — the frame
      raised; the worker survives and moves to its next task.

    ``("fatal", slot, epoch, traceback)`` reports an unrecoverable
    worker-level failure (e.g. the shared graph cannot be attached).
    """
    from repro.core.bbe import MSCE
    from repro.core.cliques import SignedClique
    from repro.fastpath.shared import SharedCompiledGraph

    (
        param_groups,
        selection,
        maxtest,
        seed,
        task_budget,
        max_offload,
        deadline,
        max_memory_bytes,
        backend,
        model,
        top_r,
        incumbent_rows,
    ) = config
    # Warm-start incumbents are single-group by construction (the
    # scheduler rejects top_r with multiple parameter groups), so the
    # rows rebuild against the sole setting.
    incumbents = [
        SignedClique(
            nodes=nodes,
            params=param_groups[0],
            positive_edges=positive,
            negative_edges=negative,
        )
        for nodes, positive, negative in incumbent_rows
    ]
    tick = faults.worker_tick(slot, epoch, result_queue)
    view = None
    searchers: Dict[int, MSCE] = {}
    try:
        view = SharedCompiledGraph.attach(shared_meta)
        # MSCE materialises the maxtest/emit source graph eagerly, so the
        # one-off reconstruction cost lands here, once per process; the
        # per-group searchers below all share this compiled view.
        compiled = view.graph
        # The parent ships the *resolved* backend and model names, so
        # every worker runs the same kernel tier and constraint no
        # matter what its own environment says (a worker missing numba
        # still degrades safely).
        searchers[0] = MSCE(
            compiled,
            param_groups[0],
            selection=selection,
            reduction="none",  # the parent already reduced
            maxtest=maxtest,
            seed=seed,
            frame_rng=True,
            backend=backend,
            model=model,
        )
    except BaseException:
        result_queue.put(("fatal", slot, epoch, traceback.format_exc()))
        if view is not None:
            view.close()
        return
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            task_id, group, candidates, included = task
            searcher = searchers.get(group)
            if searcher is None:
                searcher = MSCE(
                    compiled,
                    param_groups[group],
                    selection=selection,
                    reduction="none",
                    maxtest=maxtest,
                    seed=seed,
                    frame_rng=True,
                    backend=backend,
                    model=model,
                )
                searchers[group] = searcher
            spawn_index = 0

            def offload(frame, _task_id=task_id):
                nonlocal spawn_index
                faults.message_delay()
                result_queue.put(("spawn", slot, epoch, _task_id, spawn_index, frame))
                spawn_index += 1

            try:
                faults.check_task(task_id)
                result = searcher.run_frames(
                    [(candidates, included)],
                    budget=task_budget,
                    offload=offload,
                    max_offload=max_offload,
                    deadline=deadline,
                    max_memory_bytes=max_memory_bytes,
                    tick=tick,
                    top_r=top_r,
                    incumbents=incumbents if top_r is not None else None,
                )
                rows: List[CliqueRow] = [
                    (clique.nodes, clique.positive_edges, clique.negative_edges)
                    for clique in result.cliques
                ]
                # The task's metrics ride only on its terminal message,
                # keyed by (slot, epoch): a crashed attempt contributes
                # nothing, so the parent's credit dedup gives exactly-once
                # aggregation. The per-task extras are deterministic too
                # (one tasks tick, one recursions observation per frame
                # task, regardless of which worker ran it).
                registry = result.stats.registry
                registry.counter("worker_tasks").inc()
                registry.histogram("task_recursions").observe(result.stats.recursions)
                metrics = registry.snapshot()
                faults.message_delay()
                if result.interrupted:
                    result_queue.put(
                        (
                            "interrupted",
                            slot,
                            epoch,
                            task_id,
                            rows,
                            metrics,
                            result.incomplete_frames,
                            result.interrupted_reason,
                        )
                    )
                else:
                    result_queue.put(("done", slot, epoch, task_id, rows, metrics))
            except Exception:
                # The frame failed but the worker is healthy: report and
                # keep draining — the parent decides retry vs quarantine.
                faults.message_delay()
                result_queue.put(("task_error", slot, epoch, task_id, traceback.format_exc()))
    except BaseException:
        result_queue.put(("fatal", slot, epoch, traceback.format_exc()))
    finally:
        view.close()


class WorkStealingScheduler:
    """Drive frame tasks over a self-healing pool of worker processes.

    Parameters
    ----------
    shared:
        The parent-owned :class:`~repro.fastpath.shared.SharedCompiledGraph`
        every worker attaches to (the parent keeps ownership; this class
        never unlinks it).
    workers:
        Number of worker slots in the pool.
    params, selection, maxtest, seed:
        The enumerator configuration, forwarded verbatim to each
        worker's :class:`~repro.core.bbe.MSCE`. ``params`` may be a
        single :class:`~repro.core.params.AlphaK` or a sequence of them
        (*parameter groups*); grouped tasks submitted through
        :meth:`run_grouped` then name which setting each frame is
        searched under, letting one pool serve a whole (alpha, k) grid
        against one shared graph segment.
    task_budget, max_offload:
        Re-splitting knobs: frames processed before shedding, and how
        many bottom-of-stack frames one shed may move. Both only change
        scheduling granularity — never results or stats.
    deadline:
        Absolute ``time.monotonic`` timestamp after which the run stops
        cooperatively and unfinished frames are handed back.
    max_memory_bytes:
        Peak-RSS ceiling enforced in the parent *and* every worker.
    frame_retries:
        Failed attempts a frame survives before quarantine.
    max_respawns:
        Total worker respawns allowed across the run (default
        ``2 * workers``); past the budget, dead slots stay empty.
    prefetch:
        Tasks queued to one worker at a time.
    strict:
        When ``True``, a collapsed pool raises
        :class:`~repro.exceptions.WorkerCrashError` instead of
        returning the unfinished frames for inline completion.
    drain_timeout:
        Seconds the graceful shutdown drains the result queue for rows
        completed by healthy workers (see :data:`RESULT_DRAIN_TIMEOUT`).
    progress:
        Optional ``callback(completed, outstanding)`` invoked by the
        parent loop after every handled message — throttle it with a
        :class:`~repro.obs.progress.ProgressReporter`.
    backend:
        Kernel tier request; resolved once here (see
        :func:`repro.fastpath.backend.resolve_backend`) and shipped to
        every worker, so one run always uses one consistent tier.
    model:
        Signed-cohesion model request; resolved once here (see
        :func:`repro.models.resolve_model`) and shipped to every
        worker, so one run always applies one consistent constraint.
    top_r:
        Enable the top-r subspace cutoff inside every worker task.
        Requires exactly one parameter group (the cutoff is a property
        of one search, not a grid). Per-task cutoffs are sound because
        each task's heap holds only sizes of genuine maximal cliques
        (its own emissions plus *incumbents*), so it under-estimates
        the global r-th-largest size at every point.
    incumbents:
        Warm-start incumbent rows (:data:`CliqueRow` tuples of
        already-validated maximal cliques) shipped to every worker and
        preloaded into each task's size heap. Only meaningful with
        ``top_r``; rejected otherwise.
    """

    def __init__(
        self,
        shared,
        workers: int,
        params: Union[AlphaK, Sequence[AlphaK]],
        selection: str,
        maxtest: str,
        seed: int,
        task_budget: int = DEFAULT_TASK_BUDGET,
        max_offload: int = DEFAULT_MAX_OFFLOAD,
        deadline: Optional[float] = None,
        max_memory_bytes: Optional[int] = None,
        frame_retries: int = DEFAULT_FRAME_RETRIES,
        max_respawns: Optional[int] = None,
        prefetch: int = DEFAULT_PREFETCH,
        strict: bool = False,
        drain_timeout: float = RESULT_DRAIN_TIMEOUT,
        progress: Optional[Callable[[int, int], None]] = None,
        backend: Optional[str] = None,
        model: Optional[str] = None,
        top_r: Optional[int] = None,
        incumbents: Sequence[CliqueRow] = (),
    ):
        self.shared = shared
        self.workers = max(1, workers)
        if isinstance(params, AlphaK):
            self.param_groups: Tuple[AlphaK, ...] = (params,)
        else:
            self.param_groups = tuple(params)
            if not self.param_groups:
                raise ValueError("params must name at least one (alpha, k) setting")
        from repro.fastpath.backend import resolve_backend
        from repro.models import resolve_model

        #: Resolved kernel tier shipped to every worker, so parent and
        #: workers can never disagree on the tier mid-run.
        self.backend = resolve_backend(backend)
        #: Resolved model name shipped alongside, for the same reason.
        self.model = resolve_model(model)
        if top_r is not None and len(self.param_groups) != 1:
            raise ValueError(
                f"top_r requires exactly one parameter group, "
                f"got {len(self.param_groups)}"
            )
        if incumbents and top_r is None:
            raise ValueError("incumbents require top_r")
        self.config = (
            self.param_groups,
            selection,
            maxtest,
            seed,
            task_budget,
            max_offload,
            deadline,
            max_memory_bytes,
            self.backend,
            self.model,
            top_r,
            tuple(incumbents),
        )
        self.deadline = deadline
        self.max_memory_bytes = max_memory_bytes
        self.frame_retries = frame_retries
        self.max_respawns = 2 * self.workers if max_respawns is None else max_respawns
        self.prefetch = max(1, prefetch)
        self.strict = strict
        self.drain_timeout = drain_timeout
        self.progress = progress
        #: Filled by :meth:`run`: scheduling + fault-tolerance counters.
        self.report: Dict[str, int] = {}
        #: Filled by :meth:`run`: ``(task_id, frame, last_error)`` per
        #: quarantined frame.
        self.quarantined: List[Tuple[int, TaskFrame, str]] = []
        #: Aggregated worker metrics, merged snapshot by snapshot as
        #: terminal messages are accepted (exactly-once under retry).
        self.metrics = MetricsRegistry()
        #: Per-group worker metrics (same exactly-once guarantee); every
        #: registry here is also merged into :attr:`metrics`.
        self.group_metrics: Dict[int, MetricsRegistry] = {
            group: MetricsRegistry() for group in range(len(self.param_groups))
        }

        # Run-state (created in run()).
        self._ctx = None
        self._result_queue = None
        self._records: Dict[int, _Task] = {}
        self._backlog: deque = deque()
        self._pool: Dict[int, _Worker] = {}
        self._retired_queues: List = []
        self._rows_by_group: Dict[int, List[CliqueRow]] = {
            group: [] for group in range(len(self.param_groups))
        }
        self._next_id = 0
        self._pending = 0
        self._completed = 0
        self._spawned = 0
        self._retries = 0
        self._respawns = 0
        self._workers_lost = 0
        self._spawn_failures: List[str] = []
        self._corrupt_messages = 0
        self._worker_incomplete = 0
        self._interrupted_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(
        self,
        tasks: List[TaskFrame],
        local_work: Optional[Callable[[], None]] = None,
    ) -> Tuple[List[CliqueRow], Dict[str, Dict], List[LeftoverFrame]]:
        """Execute *tasks* under the sole parameter group; legacy shape.

        The single-setting entry point (one (alpha, k) for the whole
        run): a thin wrapper over :meth:`run_grouped` that assigns every
        frame to group 0 and strips the group tags off the results.

        The middle element is the aggregated worker registry snapshot
        (see :meth:`repro.obs.metrics.MetricsRegistry.snapshot`): the
        summed ``msce_*`` search counters plus per-task scheduling
        metrics (``worker_tasks``, the ``task_recursions`` histogram).

        *local_work* (the parent's inline small-component sweep) runs
        after the pool is seeded and before result pumping, so it
        overlaps with the workers' first tasks. The returned clique
        rows are duplicate-free by construction (frames partition the
        search tree; a retried frame's rows are counted exactly once).
        The third element lists frames that did **not** finish — empty
        on a healthy exhaustive run, populated when a deadline /
        memory guard tripped or the pool collapsed. Each leftover
        carries its spawn credit so the caller can finish it inline
        without duplicating already-credited subtrees.
        """
        rows_by_group, metrics_by_group, leftover = self.run_grouped(
            [(0, (frame[0], frame[1])) for frame in tasks], local_work=local_work
        )
        return (
            rows_by_group.get(0, []),
            self.metrics.snapshot(),
            [(frame, credited) for _, frame, credited in leftover],
        )

    def run_grouped(
        self,
        tasks: List[GroupedTask],
        local_work: Optional[Callable[[], None]] = None,
    ) -> Tuple[Dict[int, List[CliqueRow]], Dict[int, Dict[str, Dict]], List[GroupedLeftover]]:
        """Execute ``(group, frame)`` tasks; return per-group results.

        The grid entry point: frames of every parameter group ride the
        same backlog, pool and stealing policy, so a straggler component
        of one (alpha, k) setting overlaps with the whole rest of the
        grid. Returns ``(rows by group, metrics snapshot by group,
        grouped leftovers)``; within each group the same exactly-once /
        bit-identical-merge guarantees hold as for :meth:`run`.
        """
        self._ctx = _make_context()
        self._result_queue = self._ctx.Queue()
        guard = make_guard(self.deadline, self.max_memory_bytes)
        for group, frame in tasks:
            if not 0 <= group < len(self.param_groups):
                raise ValueError(
                    f"task group {group} out of range for "
                    f"{len(self.param_groups)} parameter groups"
                )
            record = _Task(self._next_id, (frame[0], frame[1]), group=group)
            self._records[record.task_id] = record
            self._backlog.append(record)
            self._next_id += 1
        self._pending = len(tasks)

        try:
            if guard is not None and guard.check() is not None:
                # Dead on arrival (e.g. time_limit=0): never spawn.
                self._interrupted_reason = guard.tripped
                if local_work is not None:
                    local_work()
            else:
                for slot in range(self.workers):
                    self._try_spawn(slot, 0)
                if local_work is not None:
                    local_work()
                self._pump(guard)
            self._shutdown(graceful=True)
        except BaseException:
            # KeyboardInterrupt or an unexpected parent-side failure:
            # kill the children immediately, never hang on a queue, and
            # let the caller's finally unlink the shared segment.
            self._shutdown(graceful=False)
            raise

        leftover: List[GroupedLeftover] = [
            (record.group, record.frame, record.spawns_credited)
            for record in self._records.values()
            if record.state in (_QUEUED, _ASSIGNED)
        ]
        self.report = {
            "workers": self.workers,
            "parameter_groups": len(self.param_groups),
            "tasks_seeded": len(tasks),
            "tasks_completed": self._completed,
            "frames_resplit": self._spawned,
            "shared_graph_bytes": self.shared.nbytes,
            "shared_graph_transport": self.shared.transport,
            "interrupted": self._interrupted_reason is not None,
            "interrupted_reason": self._interrupted_reason,
            "incomplete_frames": len(leftover) + self._worker_incomplete,
            "retries": self._retries,
            "respawns": self._respawns,
            "workers_lost": self._workers_lost,
            "quarantined_frames": len(self.quarantined),
            "spawn_failures": len(self._spawn_failures),
            "corrupt_messages": self._corrupt_messages,
        }
        if self.strict and leftover and self._interrupted_reason is None:
            raise WorkerCrashError(
                f"worker pool collapsed with {len(leftover)} unfinished frames "
                f"({self._workers_lost} workers lost, "
                f"{len(self._spawn_failures)} spawn failures)"
            )
        return (
            self._rows_by_group,
            {
                group: registry.snapshot()
                for group, registry in self.group_metrics.items()
            },
            leftover,
        )

    # ------------------------------------------------------------------
    # Parent loop
    # ------------------------------------------------------------------
    def _pump(self, guard) -> None:
        """Assign, receive and merge until exhaustion or interruption."""
        messages = 0
        while self._pending > 0:
            if guard is not None:
                reason = guard.check()
                if reason is not None:
                    self._interrupted_reason = reason
                    return
            if not self._pool:
                return  # collapsed: survivors become leftovers
            self._assign()
            try:
                message = self._result_queue.get(timeout=0.2)
            except queue_module.Empty:
                self._reap_dead()
                if not self._pool and not self._backlog:
                    return
                continue
            except (EOFError, OSError):  # pragma: no cover - torn message
                self._corrupt_messages += 1
                self._reap_dead()
                continue
            self._handle(message)
            messages += 1
            if self.progress is not None:
                self.progress(self._completed, self._pending)
            faults.parent_message_tick(messages)

    def _assign(self) -> None:
        """Feed queued tasks to the least-loaded live workers."""
        while self._backlog and self._pool:
            record = self._backlog[0]
            if record.state != _QUEUED:
                self._backlog.popleft()  # completed by a stale message
                continue
            worker = min(
                self._pool.values(), key=lambda w: (len(w.in_flight), w.slot)
            )
            if len(worker.in_flight) >= self.prefetch:
                return
            self._backlog.popleft()
            record.state = _ASSIGNED
            record.assigned = (worker.slot, worker.epoch)
            worker.in_flight[record.task_id] = record
            if record.origin is not None and record.origin != worker.slot:
                obs.journal_event(
                    "frame_steal",
                    task=record.task_id,
                    origin=record.origin,
                    slot=worker.slot,
                )
            worker.queue.put(
                (record.task_id, record.group, record.frame[0], record.frame[1])
            )

    def _handle(self, message) -> None:
        kind = message[0]
        if kind == "spawn":
            _, slot, epoch, task_id, index, frame = message
            parent = self._records.get(task_id)
            if parent is None:
                return
            if index < parent.spawns_credited:
                return  # deterministic replay by a retried attempt
            parent.spawns_credited = index + 1
            # A shed branch is a subtree of its parent's frame, so it is
            # searched under the same parameter group.
            child = _Task(
                self._next_id, (frame[0], frame[1]), origin=slot, group=parent.group
            )
            self._next_id += 1
            self._records[child.task_id] = child
            self._backlog.append(child)
            self._pending += 1
            self._spawned += 1
            obs.journal_event(
                "frame_spawn", task=child.task_id, parent=task_id, slot=slot
            )
        elif kind in ("done", "interrupted"):
            task_id, rows, metrics = message[3], message[4], message[5]
            record = self._records.get(task_id)
            if record is None or record.state in (_COMPLETED, _QUARANTINED):
                return  # duplicate terminal message from a stale attempt
            self._release(record)
            record.state = _COMPLETED
            self._pending -= 1
            self._completed += 1
            self._rows_by_group[record.group].extend(rows)
            self.group_metrics[record.group].merge_snapshot(metrics)
            self.metrics.merge_snapshot(metrics)
            if kind == "interrupted":
                self._worker_incomplete += message[6]
                if self._interrupted_reason is None:
                    self._interrupted_reason = message[7]
        elif kind == "task_error":
            _, slot, epoch, task_id, tb = message
            record = self._records.get(task_id)
            if (
                record is None
                or record.state != _ASSIGNED
                or record.assigned != (slot, epoch)
            ):
                return  # stale report from a superseded attempt
            self._release(record)
            self._retry_or_quarantine(record, tb)
        elif kind == "fatal":
            _, slot, epoch, tb = message
            worker = self._pool.get(slot)
            if worker is not None and worker.epoch == epoch:
                self._fail_worker(worker, f"worker reported fatal error:\n{tb}")
        else:  # pragma: no cover - protocol bug
            raise RuntimeError(f"unknown worker message kind {kind!r}")

    def _release(self, record: _Task) -> None:
        """Detach *record* from whichever worker currently holds it."""
        if record.assigned is None:
            return
        worker = self._pool.get(record.assigned[0])
        if worker is not None:
            worker.in_flight.pop(record.task_id, None)
        record.assigned = None

    def _retry_or_quarantine(self, record: _Task, why: str) -> None:
        record.attempts += 1
        if record.attempts > self.frame_retries:
            record.state = _QUARANTINED
            self._pending -= 1
            last_line = why.strip().splitlines()[-1] if why.strip() else "unknown"
            self.quarantined.append((record.task_id, record.frame, last_line))
            obs.journal_event(
                "frame_quarantine",
                task=record.task_id,
                attempts=record.attempts,
                why=last_line,
            )
        else:
            record.state = _QUEUED
            self._backlog.appendleft(record)
            self._retries += 1
            obs.journal_event(
                "frame_retry", task=record.task_id, attempts=record.attempts
            )

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _try_spawn(self, slot: int, epoch: int) -> bool:
        queue = None
        try:
            faults.check_worker_spawn(slot, epoch)
            queue = self._ctx.Queue()
            process = self._ctx.Process(
                target=_worker_main,
                args=(slot, epoch, queue, self._result_queue, self.shared.meta, self.config),
                daemon=True,
            )
            process.start()
        except (OSError, faults.InjectedFault) as exc:
            self._spawn_failures.append(f"slot {slot} epoch {epoch}: {exc}")
            obs.journal_event(
                "worker_spawn_failed", slot=slot, epoch=epoch, why=str(exc)
            )
            if queue is not None:
                self._retired_queues.append(queue)
            return False
        self._pool[slot] = _Worker(slot, epoch, process, queue)
        obs.journal_event("worker_spawn", slot=slot, epoch=epoch, pid=process.pid)
        return True

    def _reap_dead(self) -> None:
        """Detect crashed workers; requeue their cargo and respawn."""
        for worker in list(self._pool.values()):
            code = worker.process.exitcode
            if code is not None:
                # Any exit during the run loop is abnormal — sentinels
                # are only sent at shutdown.
                self._fail_worker(worker, f"worker died with exit code {code}")

    def _fail_worker(self, worker: _Worker, why: str) -> None:
        self._pool.pop(worker.slot, None)
        self._workers_lost += 1
        obs.journal_event(
            "worker_lost",
            slot=worker.slot,
            epoch=worker.epoch,
            in_flight=len(worker.in_flight),
            why=why.strip().splitlines()[0] if why.strip() else "unknown",
        )
        # Credit whatever the dead worker managed to flush before dying
        # (completed rows, shed frames) before deciding what to retry.
        self._drain_available()
        for record in list(worker.in_flight.values()):
            if record.state == _ASSIGNED:
                record.assigned = None
                self._retry_or_quarantine(record, why)
        worker.in_flight.clear()
        self._retired_queues.append(worker.queue)
        if not worker.process.is_alive():
            worker.process.join(timeout=0.5)
        if self._respawns < self.max_respawns:
            self._respawns += 1
            if self._try_spawn(worker.slot, worker.epoch + 1):
                obs.journal_event(
                    "worker_respawn", slot=worker.slot, epoch=worker.epoch + 1
                )

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def _drain_available(self) -> None:
        """Apply every message already readable, without blocking."""
        while True:
            try:
                message = self._result_queue.get_nowait()
            except queue_module.Empty:
                return
            except (EOFError, OSError):  # pragma: no cover - torn message
                self._corrupt_messages += 1
                return
            try:
                self._handle(message)
            except Exception:  # pragma: no cover - defensive
                self._corrupt_messages += 1

    def _shutdown(self, graceful: bool) -> None:
        """Stop the pool; never hang, never silently drop finished rows.

        The graceful path sends sentinels, joins briefly, then drains
        the result queue so rows completed by healthy workers while
        another one failed are still merged (they arrive ahead of the
        sentinel acknowledgements). The emergency path (unexpected
        parent exception, ``KeyboardInterrupt``) terminates children
        immediately. Both paths ``cancel_join_thread()`` every task
        queue — the parent is their only writer, and a full queue must
        not block interpreter exit — and close all queues.
        """
        workers = list(self._pool.values())
        self._pool.clear()
        if graceful:
            for worker in workers:
                try:
                    worker.queue.put(None)
                except Exception:  # pragma: no cover - feeder already dead
                    pass
            for worker in workers:
                worker.process.join(timeout=2.0)
            for worker in workers:
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
            # Salvage completed rows that were still in flight
            # (satellite guarantee: a crashed sibling must not cost a
            # healthy worker its finished tasks).
            deadline = time.monotonic() + self.drain_timeout
            while time.monotonic() < deadline:
                try:
                    message = self._result_queue.get(timeout=0.05)
                except queue_module.Empty:
                    break
                except (EOFError, OSError):  # pragma: no cover
                    self._corrupt_messages += 1
                    break
                try:
                    self._handle(message)
                except Exception:  # pragma: no cover - defensive
                    self._corrupt_messages += 1
        else:
            for worker in workers:
                worker.process.terminate()
            for worker in workers:
                worker.process.join(timeout=1.0)
        for queue in [worker.queue for worker in workers] + self._retired_queues:
            queue.cancel_join_thread()
            queue.close()
        self._retired_queues = []
        if self._result_queue is not None:
            self._result_queue.cancel_join_thread()
            self._result_queue.close()
