"""Signed graph reduction entry points (Section III of the paper).

Three reduction strengths are available, in increasing pruning power and
cost:

* ``"none"`` — no reduction (for ablation benchmarks only);
* ``"positive-core"`` — the maximal positive-edge ceil(alpha*k)-core of
  Lemma 1;
* ``"mcbasic"`` / ``"mcnew"`` — the maximal constrained ceil(alpha*k)-core
  (MCCore, Definition 3) computed by Algorithm 2 or Algorithm 3. Both
  produce the same node set; they differ only in running time.

:func:`reduce_graph` dispatches among them and is what the MSCE
enumerator calls first.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Set

from repro.algorithms.kcore import icore
from repro.core.params import AlphaK
from repro.exceptions import ParameterError
from repro.graphs.components import connected_components
from repro.graphs.signed_graph import Node, SignedGraph


def positive_core_reduction(graph: SignedGraph, params: AlphaK) -> Set[Node]:
    """Return the node set of the maximal positive-edge ceil(alpha*k)-core.

    Lemma 1: every maximal (alpha, k)-clique lives inside a connected
    component of this core, so every node outside it can be discarded.
    For degenerate parameters (threshold 0) the whole node set is
    returned — the lemma prunes nothing.
    """
    threshold = params.positive_threshold
    if threshold == 0:
        from repro.fastpath.compiled import CompiledGraph

        if isinstance(graph, CompiledGraph):
            return set(graph.nodes)
        return graph.node_set()
    _flag, nodes = icore(graph, fixed=(), tau=threshold, sign="positive")
    return nodes


_METHODS: Dict[str, Callable[[SignedGraph, AlphaK], Set[Node]]] = {}


def reduce_graph(
    graph: SignedGraph, params: AlphaK, method: str = "mcnew", compile: bool = True
) -> Set[Node]:
    """Return the surviving node set under the requested reduction *method*.

    ``method`` is one of ``"none"``, ``"positive-core"``, ``"mcbasic"``,
    ``"mcnew"``. Accepts a :class:`repro.fastpath.CompiledGraph`, in
    which case the reduction runs on the fastpath kernels
    (``compile=False`` forces the pure path).
    """
    # Imported lazily to keep module import acyclic (mcbasic/mcnew import
    # this module's positive_core_reduction).
    from repro.core.mcbasic import mccore_basic
    from repro.core.mcnew import mccore_new
    from repro.fastpath.compiled import CompiledGraph

    if isinstance(graph, CompiledGraph) and not compile:
        graph = graph.source

    methods: Dict[str, Callable[[], Set[Node]]] = {
        "none": lambda: set(graph.nodes) if isinstance(graph, CompiledGraph) else graph.node_set(),
        "positive-core": lambda: positive_core_reduction(graph, params),
        "mcbasic": lambda: mccore_basic(graph, params),
        "mcnew": lambda: mccore_new(graph, params),
    }
    try:
        chosen = methods[method]
    except KeyError:
        raise ParameterError(
            f"unknown reduction method {method!r}; expected one of {sorted(methods)}"
        ) from None
    from repro.obs import runtime as obs

    with obs.span("reduce", method=method):
        return chosen()


def reduction_components(
    graph: SignedGraph, params: AlphaK, method: str = "mcnew", compile: bool = True
) -> Iterator[Set[Node]]:
    """Yield the connected components of the reduced node set.

    MSCE enumerates inside each component independently (Algorithm 4,
    lines 2-4). Components are taken sign-blind, matching Lemma 1/3's
    "connected component of the core" phrasing; for the degenerate
    threshold-0 case this is simply the components of the graph.
    """
    from repro.fastpath.compiled import CompiledGraph, source_graph

    if isinstance(graph, CompiledGraph) and compile:
        from repro.fastpath.kernels import component_masks, reduce_mask

        survivor_mask = reduce_mask(graph, params, method=method)
        for mask in component_masks(graph, survivor_mask):
            yield graph.nodes_from_mask(mask)
        return
    survivors = reduce_graph(graph, params, method=method, compile=compile)
    yield from connected_components(source_graph(graph), nodes=survivors)


def reduction_report(graph: SignedGraph, params: AlphaK) -> Dict[str, int]:
    """Return surviving-node counts under every reduction method.

    Used by the Figure-4 experiment and handy when choosing parameters
    interactively: shows how much of the graph each pruning level
    removes.
    """
    report: Dict[str, int] = {"graph": graph.number_of_nodes()}
    for method in ("positive-core", "mcbasic", "mcnew"):
        report[method] = len(reduce_graph(graph, params, method=method))
    return report
