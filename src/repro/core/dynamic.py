"""Incremental maintenance of the maximal (alpha, k)-clique set.

Signed networks evolve — ratings arrive, collaborations repeat, edges
flip sign. Re-enumerating after every update wastes the locality of the
change: an edge update at ``(u, v)`` can only disturb cliques inside the
closed neighbourhood of its endpoints. The paper cites core-maintenance
work ([32]) as the adjacent technique; this module applies the idea one
level up, maintaining the *answer set* itself.

Locality argument (the correctness contract, unit- and property-tested
against from-scratch enumeration):

* a clique containing ``u`` is a subset of ``{u} ∪ N(u)``, so any
  clique whose *validity* changes lies inside the affected region
  ``A = {u, v} ∪ N(u) ∪ N(v)`` (neighbourhoods taken in both the old
  and the new graph);
* a clique can *lose* maximality only to a strictly larger valid clique
  that uses the modified adjacency, i.e. one containing ``u`` or ``v``
  — and a subset of a clique through ``u`` is again inside ``A``;
* a clique can *gain* maximality only if its previously-blocking
  superset died, and that superset contained ``u`` or ``v`` — so the
  gainer is inside ``A`` too.

Hence exactly the cached cliques contained in ``A`` are invalidated,
and the replacement set is "every globally-maximal (alpha, k)-clique
contained in ``A``" — which :meth:`MSCE.enumerate_seeded` computes
directly (its maximality test is global even when the search space is
restricted).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.core.bbe import MSCE
from repro.core.cliques import SignedClique, sort_cliques
from repro.core.params import AlphaK
from repro.exceptions import GraphError
from repro.graphs.signed_graph import Node, SignedGraph


def closed_neighborhood(graph: SignedGraph, node: Node) -> Set[Node]:
    """``{node} ∪ N(node)``, tolerating nodes absent from *graph*.

    The building block of the affected region ``A``: take it in the
    *old* graph before mutating, union with ``{u, v}`` afterwards.
    """
    if not graph.has_node(node):
        return {node}
    return {node} | graph.neighbors(node)


def refresh_region(
    graph: SignedGraph,
    params: AlphaK,
    cliques: Dict[FrozenSet[Node], SignedClique],
    region: Set[Node],
    maxtest: str = "exact",
    search_graph: Optional[object] = None,
) -> int:
    """Apply the locality rule to a cached answer set, in place.

    Drops every cached clique contained in *region* (the only ones whose
    validity or maximality can have changed — see the module docstring)
    and replaces them with the globally-maximal cliques inside *region*
    on the *current* graph, via :meth:`MSCE.enumerate_seeded`. Returns
    the number of cliques invalidated.

    ``search_graph`` may supply an already-compiled representation of
    *graph* (the serving engine passes its long-lived
    :class:`~repro.fastpath.compiled.CompiledGraph`) so repairs across
    many cached (alpha, k) entries share one compilation.
    """
    region = {node for node in region if graph.has_node(node)}
    stale = [key for key in cliques if key <= region]
    for key in stale:
        del cliques[key]
    searcher = MSCE(
        graph if search_graph is None else search_graph, params, maxtest=maxtest
    )
    result = searcher.enumerate_seeded(region, frozenset())
    for clique in result.cliques:
        cliques[clique.nodes] = clique
    return len(stale)


class DynamicSignedCliqueIndex:
    """A live index of all maximal (alpha, k)-cliques under graph updates.

    The index owns a private copy of the graph; mutate it through the
    index's update methods only. Query methods are O(1)/O(result).

    Parameters
    ----------
    graph:
        Initial signed graph (copied).
    params:
        The (alpha, k) parameters the index maintains.
    maxtest:
        Maximality test kind, as in :class:`MSCE` (default exact).

    Examples
    --------
    >>> from repro.graphs import SignedGraph
    >>> from repro.core.params import AlphaK
    >>> g = SignedGraph([(1, 2, "+"), (1, 3, "+"), (2, 3, "+")])
    >>> index = DynamicSignedCliqueIndex(g, AlphaK(2, 1))
    >>> [sorted(c.nodes) for c in index.cliques()]
    [[1, 2, 3]]
    >>> index.add_edge(1, 4, "+"); index.add_edge(2, 4, "+"); index.add_edge(3, 4, "+")
    >>> [sorted(c.nodes) for c in index.cliques()]
    [[1, 2, 3, 4]]
    """

    def __init__(self, graph: SignedGraph, params: AlphaK, maxtest: str = "exact"):
        self._graph = graph.copy()
        self._params = params
        self._maxtest = maxtest
        self._cliques: Dict[FrozenSet[Node], SignedClique] = {
            clique.nodes: clique
            for clique in MSCE(self._graph, params, maxtest=maxtest).enumerate_all().cliques
        }
        #: Number of updates applied since construction.
        self.updates_applied = 0
        #: Total cliques invalidated/recomputed across updates (stats).
        self.cliques_invalidated = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> SignedGraph:
        """The index's current graph (treat as read-only)."""
        return self._graph

    @property
    def params(self) -> AlphaK:
        """The maintained (alpha, k) parameters."""
        return self._params

    def cliques(self) -> List[SignedClique]:
        """All current maximal (alpha, k)-cliques, largest first."""
        return sort_cliques(self._cliques.values())

    def top_r(self, r: int) -> List[SignedClique]:
        """The ``r`` largest current cliques."""
        return self.cliques()[: max(r, 0)]

    def cliques_containing(self, node: Node) -> List[SignedClique]:
        """Current maximal cliques that contain *node*."""
        return sort_cliques(
            clique for clique in self._cliques.values() if node in clique.nodes
        )

    def __len__(self) -> int:
        return len(self._cliques)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add an isolated node (no cliques can change)."""
        self._graph.add_node(node)
        self.updates_applied += 1

    def add_edge(self, u: Node, v: Node, sign: object) -> None:
        """Add edge ``(u, v)``; raises if present with a different sign."""
        region = self._closed_neighborhood(u) | self._closed_neighborhood(v)
        self._graph.add_edge(u, v, sign)
        region |= {u, v}
        self._refresh(region)

    def set_sign(self, u: Node, v: Node, sign: object) -> None:
        """Add edge ``(u, v)`` or flip its sign."""
        region = self._closed_neighborhood(u) | self._closed_neighborhood(v)
        self._graph.set_sign(u, v, sign)
        region |= {u, v}
        self._refresh(region)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``(u, v)``; raises :class:`GraphError` if absent."""
        region = self._closed_neighborhood(u) | self._closed_neighborhood(v)
        self._graph.remove_edge(u, v)
        self._refresh(region)

    def remove_node(self, node: Node) -> None:
        """Remove *node* and its incident edges."""
        if not self._graph.has_node(node):
            raise GraphError(f"node {node!r} not in graph")
        region = self._closed_neighborhood(node)
        self._graph.remove_node(node)
        region.discard(node)
        # Drop every cached clique that contained the node outright,
        # then refresh the rest of the region.
        stale = [key for key in self._cliques if node in key]
        for key in stale:
            del self._cliques[key]
        self.cliques_invalidated += len(stale)
        self._refresh(region)

    def apply_edits(self, edits: Iterable) -> None:
        """Apply a sequence of ``("add"/"remove"/"flip", u, v[, sign])`` edits."""
        for edit in edits:
            operation = edit[0]
            if operation == "add":
                self.add_edge(edit[1], edit[2], edit[3])
            elif operation == "remove":
                self.remove_edge(edit[1], edit[2])
            elif operation == "flip":
                self.set_sign(edit[1], edit[2], edit[3])
            else:
                raise GraphError(f"unknown edit operation {operation!r}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _closed_neighborhood(self, node: Node) -> Set[Node]:
        return closed_neighborhood(self._graph, node)

    def _refresh(self, region: Set[Node]) -> None:
        """Recompute the maximal cliques contained in *region*."""
        self.updates_applied += 1
        self.cliques_invalidated += refresh_region(
            self._graph, self._params, self._cliques, region, maxtest=self._maxtest
        )
