"""Disk-backed caching of enumeration results.

Enumeration is the expensive step of every workflow here; analyses
re-run it over the same (graph, alpha, k) triples constantly. The cache
keys results by a content fingerprint of the graph (order-independent
SHA-256 over the edge multiset and isolated nodes) plus the parameters,
so stale hits are impossible: touch one edge and the key changes.

>>> import tempfile
>>> from repro.graphs import SignedGraph
>>> g = SignedGraph([(1, 2, "+"), (1, 3, "+"), (2, 3, "+")])
>>> with tempfile.TemporaryDirectory() as tmp:
...     first = cached_enumerate(g, alpha=2, k=1, cache_dir=tmp)   # computes
...     again = cached_enumerate(g, alpha=2, k=1, cache_dir=tmp)   # disk hit
>>> [sorted(c.nodes) for c in again]
[[1, 2, 3]]
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import repro
from repro.core.bbe import MSCE
from repro.core.cliques import SignedClique
from repro.core.params import AlphaK
from repro.graphs.signed_graph import Node, SignedGraph

PathLike = Union[str, Path]

#: On-disk payload schema revision. Bump whenever the JSON layout written
#: by :meth:`ResultCache.put` changes shape; old entries then miss (their
#: filenames carry the old revision) instead of being misparsed.
#: v2: entries may carry a ``stats`` dict (the SearchStats counters of
#: the run that produced them) next to the cliques.
#: v3: keys carry the signed-cohesion model segment, so answers produced
#: under one constraint (e.g. ``balanced``) can never be served for
#: another (``msce``) sharing the same graph and (alpha, k).
CACHE_SCHEMA_VERSION = 3


def graph_fingerprint(graph: SignedGraph) -> str:
    """Order-independent content hash of *graph* (SHA-256 hex digest).

    Covers every edge with its sign and every isolated node; isomorphic
    but differently-labelled graphs hash differently (labels are part of
    the content — caching is per concrete graph, not per isomorphism
    class).

    The digest is memoised on the graph instance and invalidated by its
    mutation counter, so hot query paths (the serving engine, repeated
    :func:`cached_enumerate` calls) pay the O(m) hash once per graph
    *version* rather than once per call.
    """
    cached = getattr(graph, "_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    edge_lines = sorted(
        f"{min(repr(u), repr(v))}|{max(repr(u), repr(v))}|{sign}"
        for u, v, sign in graph.edges()
    )
    isolated = sorted(
        repr(node) for node in graph.nodes() if graph.degree(node) == 0
    )
    for line in edge_lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    digest.update(b"--isolated--\n")
    for line in isolated:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    fingerprint = digest.hexdigest()
    try:
        graph._fingerprint = fingerprint
    except AttributeError:
        pass  # duck-typed graphs without the memo slot still work
    return fingerprint


def entry_key(
    fingerprint: str, params: AlphaK, kind: str, model: str = "msce"
) -> str:
    """The canonical cache key for (graph fingerprint, model, params, kind).

    Shared by the disk tier (as the filename stem) and the serving
    engine's in-memory LRU, so a result can move between tiers without
    re-keying and a hit in either tier denotes the exact same
    computation. The key carries the schema revision and the package
    version next to the graph fingerprint, so entries written by an
    older layout (or an older release with different enumeration
    semantics) are simply never found rather than deserialised into
    wrong results. The ``model`` segment keeps constraints apart: a
    balanced-clique answer can never be served for an MSCE request on
    the same graph and parameters (or vice versa).
    """
    safe_kind = "".join(ch for ch in kind if ch.isalnum() or ch in "-_")
    safe_model = "".join(ch for ch in model if ch.isalnum() or ch in "-_")
    version_tag = f"s{CACHE_SCHEMA_VERSION}-v{repro.__version__}"
    return (
        f"{fingerprint[:32]}-{version_tag}-m{safe_model}"
        f"-a{params.alpha:g}-k{params.k}-{safe_kind}"
    )


def storage_artifact_path(directory: PathLike, fingerprint: str) -> Path:
    """Canonical path of a compiled-graph storage artifact under *directory*.

    The serving engine persists :class:`~repro.fastpath.compiled.CompiledGraph`
    artifacts (see :mod:`repro.fastpath.storage`) next to the result cache,
    keyed like :func:`entry_key`: the graph-content fingerprint plus the
    storage-layout revision, so a layout bump simply misses instead of
    mis-attaching old bytes.
    """
    from repro.fastpath.storage import STORAGE_VERSION

    return (
        Path(directory)
        / "graphs"
        / f"graph-{fingerprint[:32]}-s{STORAGE_VERSION}.graph"
    )


class ResultCache:
    """Filesystem cache of clique results under one directory.

    Entries are JSON files named by the combined key; node labels
    round-trip when they are JSON representable (int/str); other label
    types are refused at ``put`` time.
    """

    def __init__(self, directory: PathLike):
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)

    def _path(
        self, fingerprint: str, params: AlphaK, kind: str, model: str = "msce"
    ) -> Path:
        return self._dir / (entry_key(fingerprint, params, kind, model=model) + ".json")

    def get(
        self, graph: SignedGraph, params: AlphaK, kind: str = "all", model: str = "msce"
    ) -> Optional[List[SignedClique]]:
        """Return the cached cliques, or ``None`` on a miss/corrupt entry."""
        entry = self.get_entry(graph, params, kind, model=model)
        return None if entry is None else entry[0]

    def get_entry(
        self, graph: SignedGraph, params: AlphaK, kind: str = "all", model: str = "msce"
    ) -> Optional[Tuple[List[SignedClique], Optional[Dict[str, int]]]]:
        """Return ``(cliques, stats-or-None)``, or ``None`` on a miss.

        ``stats`` is the :class:`~repro.core.bbe.SearchStats` counter
        dict recorded by the run that produced the entry (entries written
        by :meth:`put` without stats yield ``None``). Because the key
        pins the exact graph content and code version, replaying those
        counters on a hit is indistinguishable from recomputing.
        """
        path = self._path(graph_fingerprint(graph), params, kind, model=model)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            cliques = [
                SignedClique(
                    nodes=frozenset(entry["nodes"]),
                    params=params,
                    positive_edges=entry["positive_edges"],
                    negative_edges=entry["negative_edges"],
                )
                for entry in payload["cliques"]
            ]
            stats = payload.get("stats")
            if stats is not None:
                stats = {str(name): int(value) for name, value in stats.items()}
            return cliques, stats
        except (ValueError, KeyError, TypeError, AttributeError):
            return None  # treat corruption as a miss; the entry is rewritten

    def put(
        self,
        graph: SignedGraph,
        params: AlphaK,
        cliques: List[SignedClique],
        kind: str = "all",
        stats: Optional[Dict[str, int]] = None,
        model: str = "msce",
    ) -> None:
        """Store *cliques* (and optionally their run's stats counters)."""
        for clique in cliques:
            for node in clique.nodes:
                if not isinstance(node, (int, str)):
                    raise TypeError(
                        f"cache requires int/str node labels, got {type(node).__name__}"
                    )
        payload = {
            "alpha": params.alpha,
            "k": params.k,
            "cliques": [
                {
                    "nodes": sorted(clique.nodes, key=repr),
                    "positive_edges": clique.positive_edges,
                    "negative_edges": clique.negative_edges,
                }
                for clique in cliques
            ],
        }
        if stats is not None:
            payload["stats"] = dict(stats)
        path = self._path(graph_fingerprint(graph), params, kind, model=model)
        path.write_text(json.dumps(payload), encoding="utf-8")

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in self._dir.glob("*.json"):
            path.unlink()
            removed += 1
        return removed


def cached_enumerate(
    graph: SignedGraph,
    alpha: float,
    k: int,
    cache_dir: PathLike,
    **msce_options,
) -> List[SignedClique]:
    """Enumerate with a disk cache wrapped around :class:`MSCE`.

    Results produced under a ``time_limit``/``max_results`` cap are
    *not* cached (they are partial); pass no caps for cacheable runs.
    A ``model=`` option participates in the cache key, so constraints
    never share entries.
    """
    from repro.models import resolve_model

    params = AlphaK(alpha, k)
    model = resolve_model(msce_options.get("model"))
    cache = ResultCache(cache_dir)
    hit = cache.get(graph, params, model=model)
    if hit is not None:
        return hit
    result = MSCE(graph, params, **msce_options).enumerate_all()
    if not (result.timed_out or result.truncated):
        cache.put(graph, params, result.cliques, model=model)
    return result.cliques
