"""Signed edge-list I/O.

Reads and writes the de-facto standard formats used by the paper's data
sources:

* **SNAP style** (Slashdot/Epinions releases): whitespace-separated
  ``src dst sign`` with ``sign`` in ``{1, -1}``; ``#`` comment lines.
* **KONECT style** (the Wiki dataset): identical shape, ``%`` comments,
  optionally a weight column whose sign is taken.

:func:`read_signed_edgelist` accepts both (comment prefixes ``#`` and
``%``), tolerates blank lines, and resolves duplicate pairs with a
configurable policy via :class:`~repro.graphs.SignedGraphBuilder`.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO, Tuple, Union

from repro.exceptions import ParseError
from repro.graphs.builder import SignedGraphBuilder
from repro.graphs.signed_graph import SignedGraph

_COMMENT_PREFIXES = ("#", "%")

PathLike = Union[str, Path]


def _parse_node(token: str):
    """Return an int when the token is numeric, else the raw string."""
    try:
        return int(token)
    except ValueError:
        return token


def iter_signed_edges(lines: Iterable[str]) -> Iterator[Tuple[object, object, int]]:
    """Parse an iterable of edge-list lines into ``(u, v, sign)`` triples.

    Raises :class:`ParseError` with the offending line number on
    malformed input. Self-loops are skipped (real SNAP dumps contain a
    few), since signed cliques are defined on simple graphs.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.split()
        if len(parts) < 3:
            raise ParseError(
                f"expected 'src dst sign', got {line!r}", line_number=line_number
            )
        u = _parse_node(parts[0])
        v = _parse_node(parts[1])
        if u == v:
            continue
        token = parts[2]
        try:
            value = float(token)
        except ValueError:
            if token in ("+", "-"):
                yield (u, v, token)
                continue
            raise ParseError(f"unparseable sign {token!r}", line_number=line_number) from None
        if value == 0 or value != value:  # zero or NaN carries no sign
            raise ParseError(
                f"weight {token!r} has no sign", line_number=line_number
            )
        yield (u, v, 1 if value > 0 else -1)


def read_signed_edgelist(
    source: Union[PathLike, TextIO], on_duplicate: str = "last"
) -> SignedGraph:
    """Read a signed graph from a path or an open text stream.

    Duplicate node pairs (real datasets contain reciprocal ratings) are
    resolved by *on_duplicate*: ``"last"`` (default), ``"majority"`` or
    ``"error"``. Paths ending in ``.gz`` are decompressed transparently
    (SNAP distributes its signed networks gzipped).
    """
    builder = SignedGraphBuilder(on_duplicate=on_duplicate)
    if isinstance(source, (str, Path)):
        opener = gzip.open if str(source).endswith(".gz") else open
        with opener(source, "rt", encoding="utf-8") as handle:
            builder.add_all(iter_signed_edges(handle))
    else:
        builder.add_all(iter_signed_edges(source))
    return builder.build()


def read_signed_edgelist_string(text: str, on_duplicate: str = "last") -> SignedGraph:
    """Read a signed graph from an in-memory edge-list string."""
    return read_signed_edgelist(io.StringIO(text), on_duplicate=on_duplicate)


def write_signed_edgelist(
    graph: SignedGraph, destination: Union[PathLike, TextIO], header: str = ""
) -> None:
    """Write *graph* as ``src dst sign`` lines (sign is ``1``/``-1``).

    The optional *header* is emitted as ``#``-prefixed comment lines.
    Node order is deterministic (sorted by repr) so round-trips are
    reproducible.
    """

    def _write(handle: TextIO) -> None:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v, sign in sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1]))):
            handle.write(f"{u} {v} {sign}\n")

    if isinstance(destination, (str, Path)):
        opener = gzip.open if str(destination).endswith(".gz") else open
        with opener(destination, "wt", encoding="utf-8") as handle:
            _write(handle)
    else:
        _write(destination)
