"""Interoperability: networkx graphs and numpy adjacency matrices.

Downstream users usually already hold their signed network in networkx
(with a sign/weight attribute) or as a signed adjacency matrix; these
converters move data in and out of :class:`~repro.graphs.SignedGraph`
losslessly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.exceptions import ParseError
from repro.graphs.signed_graph import Node, SignedGraph, normalize_sign


def to_networkx(graph: SignedGraph, sign_attribute: str = "sign"):
    """Return an undirected :class:`networkx.Graph` with sign attributes.

    Each edge carries ``{sign_attribute: +1/-1}``; node identities are
    preserved. Requires networkx (an optional dependency used only by
    this converter and the test-suite).
    """
    import networkx as nx

    result = nx.Graph()
    result.add_nodes_from(graph.nodes())
    for u, v, sign in graph.edges():
        result.add_edge(u, v, **{sign_attribute: sign})
    return result


def from_networkx(nx_graph, sign_attribute: str = "sign", default_sign: object = None) -> SignedGraph:
    """Build a :class:`SignedGraph` from a networkx graph.

    The sign is taken from ``sign_attribute`` (falling back to the sign
    of a numeric ``weight`` attribute); edges with neither attribute use
    *default_sign*, and raise :class:`ParseError` when that is ``None``.
    Directed input is symmetrised with "last write wins".
    """
    graph = SignedGraph()
    for node in nx_graph.nodes():
        graph.add_node(node)
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            continue
        if sign_attribute in data:
            sign = data[sign_attribute]
        elif "weight" in data and isinstance(data["weight"], (int, float)):
            weight = data["weight"]
            if weight == 0:
                raise ParseError(f"edge ({u!r}, {v!r}) has zero weight; no sign derivable")
            sign = 1 if weight > 0 else -1
        elif default_sign is not None:
            sign = default_sign
        else:
            raise ParseError(
                f"edge ({u!r}, {v!r}) lacks a {sign_attribute!r} or numeric weight attribute"
            )
        graph.set_sign(u, v, normalize_sign(sign))
    return graph


def to_adjacency_matrix(
    graph: SignedGraph, order: Optional[Sequence[Node]] = None
) -> Tuple["object", List[Node]]:
    """Return ``(matrix, order)``: a signed numpy adjacency matrix.

    ``matrix[i, j]`` is ``+1``/``-1``/``0``; symmetric; diagonal zero.
    *order* fixes the node ordering (default: sorted by repr).
    """
    import numpy as np

    nodes = list(order) if order is not None else sorted(graph.nodes(), key=repr)
    index = {node: i for i, node in enumerate(nodes)}
    matrix = np.zeros((len(nodes), len(nodes)), dtype=np.int8)
    for u, v, sign in graph.edges():
        if u in index and v in index:
            matrix[index[u], index[v]] = sign
            matrix[index[v], index[u]] = sign
    return matrix, nodes


def from_adjacency_matrix(matrix, nodes: Optional[Sequence[Node]] = None) -> SignedGraph:
    """Build a :class:`SignedGraph` from a signed adjacency matrix.

    Entries must be symmetric with values in {-1, 0, +1} (any numeric
    type; the sign of non-zero entries is taken). The diagonal is
    ignored. *nodes* labels the rows (default ``0..n-1``).
    """
    import numpy as np

    array = np.asarray(matrix)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise ParseError(f"adjacency matrix must be square, got shape {array.shape}")
    n = array.shape[0]
    labels = list(nodes) if nodes is not None else list(range(n))
    if len(labels) != n:
        raise ParseError(f"{n}x{n} matrix needs {n} node labels, got {len(labels)}")
    graph = SignedGraph(nodes=labels)
    for i in range(n):
        for j in range(i + 1, n):
            value = array[i, j]
            if value != array[j, i]:
                raise ParseError(
                    f"matrix not symmetric at ({i}, {j}): {value!r} vs {array[j, i]!r}"
                )
            if value > 0:
                graph.add_edge(labels[i], labels[j], 1)
            elif value < 0:
                graph.add_edge(labels[i], labels[j], -1)
    return graph
