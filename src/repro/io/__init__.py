"""Graph and result I/O: signed edge lists (SNAP/KONECT style) and JSON."""

from repro.io.edgelist import (
    iter_signed_edges,
    read_signed_edgelist,
    read_signed_edgelist_string,
    write_signed_edgelist,
)
from repro.io.cache import ResultCache, cached_enumerate, entry_key, graph_fingerprint
from repro.io.dot import save_dot, to_dot
from repro.io.converters import (
    from_adjacency_matrix,
    from_networkx,
    to_adjacency_matrix,
    to_networkx,
)
from repro.io.json_io import (
    cliques_to_dict,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_cliques,
    save_graph,
)

__all__ = [
    "iter_signed_edges",
    "read_signed_edgelist",
    "read_signed_edgelist_string",
    "write_signed_edgelist",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "cliques_to_dict",
    "save_cliques",
    "to_networkx",
    "from_networkx",
    "to_adjacency_matrix",
    "from_adjacency_matrix",
    "ResultCache",
    "cached_enumerate",
    "entry_key",
    "graph_fingerprint",
    "to_dot",
    "save_dot",
]
