"""JSON (de)serialisation of signed graphs and clique results.

The JSON shape is intentionally boring and stable::

    {
      "directed": false,
      "nodes": [1, 2, 3],
      "edges": [[1, 2, 1], [2, 3, -1]]
    }

Clique result lists serialise with their parameters so an enumeration
run can be archived next to a benchmark report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.core.cliques import SignedClique
from repro.core.params import AlphaK
from repro.exceptions import ParseError
from repro.graphs.signed_graph import SignedGraph

PathLike = Union[str, Path]


def graph_to_dict(graph: SignedGraph) -> dict:
    """Return the JSON-ready dictionary form of *graph*."""
    return {
        "directed": False,
        "nodes": sorted(graph.nodes(), key=repr),
        "edges": sorted(
            ([u, v, sign] for u, v, sign in graph.edges()),
            key=lambda edge: (repr(edge[0]), repr(edge[1])),
        ),
    }


def graph_from_dict(payload: dict) -> SignedGraph:
    """Rebuild a :class:`SignedGraph` from :func:`graph_to_dict` output."""
    if not isinstance(payload, dict) or "edges" not in payload:
        raise ParseError("expected an object with an 'edges' list")
    graph = SignedGraph()
    for node in payload.get("nodes", []):
        graph.add_node(node)
    for entry in payload["edges"]:
        if len(entry) != 3:
            raise ParseError(f"edge entry must be [u, v, sign], got {entry!r}")
        u, v, sign = entry
        graph.add_edge(u, v, sign)
    return graph


def save_graph(graph: SignedGraph, path: PathLike) -> None:
    """Write *graph* to *path* as JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph)), encoding="utf-8")


def load_graph(path: PathLike) -> SignedGraph:
    """Read a graph written by :func:`save_graph`."""
    return graph_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def cliques_to_dict(cliques: Iterable[SignedClique]) -> dict:
    """Serialise an enumeration result list (with its parameters)."""
    items: List[dict] = []
    params: AlphaK | None = None
    for clique in cliques:
        params = clique.params
        items.append(
            {
                "nodes": sorted(clique.nodes, key=repr),
                "positive_edges": clique.positive_edges,
                "negative_edges": clique.negative_edges,
            }
        )
    payload: dict = {"cliques": items}
    if params is not None:
        payload["alpha"] = params.alpha
        payload["k"] = params.k
    return payload


def save_cliques(cliques: Iterable[SignedClique], path: PathLike) -> None:
    """Write clique results to *path* as JSON."""
    Path(path).write_text(json.dumps(cliques_to_dict(cliques), indent=2), encoding="utf-8")
