"""Graphviz DOT export of signed graphs and communities.

The paper's Fig. 10 is literally a drawing of signed communities — black
edges positive, red edges negative. :func:`to_dot` produces that drawing
for any graph or community: positive edges solid black, negative edges
red (dashed), optional highlighted node groups with distinct fill
colours. Render with ``dot -Tpdf out.dot -o out.pdf`` (Graphviz) or any
DOT viewer.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence, Set, Union

from repro.graphs.signed_graph import Node, SignedGraph

PathLike = Union[str, Path]

#: Fill colours cycled over highlighted groups.
GROUP_COLORS = ("lightblue", "lightgoldenrod", "lightpink", "palegreen", "lavender")


def _quote(node: Node) -> str:
    text = str(node).replace('"', r"\"")
    return f'"{text}"'


def to_dot(
    graph: SignedGraph,
    highlight: Sequence[Iterable[Node]] = (),
    members_only: bool = False,
    name: str = "signed",
) -> str:
    """Render *graph* as Graphviz DOT text.

    Parameters
    ----------
    graph:
        The signed graph.
    highlight:
        Node groups to fill with distinct colours (e.g. discovered
        communities). Nodes in several groups take the first group's
        colour.
    members_only:
        When ``True``, restrict the drawing to highlighted nodes and
        their internal edges — the paper's Fig.-10 style close-up.
    name:
        DOT graph name.
    """
    groups = [set(group) for group in highlight]
    scope: Optional[Set[Node]] = None
    if members_only:
        scope = set()
        for group in groups:
            scope |= group

    lines = [f"graph {name} {{"]
    lines.append('  node [style=filled, fillcolor=white, shape=circle];')
    lines.append('  edge [color=black];')

    fill: dict = {}
    for index, group in enumerate(groups):
        color = GROUP_COLORS[index % len(GROUP_COLORS)]
        for node in group:
            fill.setdefault(node, color)

    for node in sorted(graph.nodes(), key=repr):
        if scope is not None and node not in scope:
            continue
        attributes = f' [fillcolor={fill[node]}]' if node in fill else ""
        lines.append(f"  {_quote(node)}{attributes};")

    for u, v, sign in sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1]))):
        if scope is not None and (u not in scope or v not in scope):
            continue
        if sign > 0:
            lines.append(f"  {_quote(u)} -- {_quote(v)};")
        else:
            lines.append(f'  {_quote(u)} -- {_quote(v)} [color=red, style=dashed];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_dot(
    graph: SignedGraph,
    path: PathLike,
    highlight: Sequence[Iterable[Node]] = (),
    members_only: bool = False,
) -> None:
    """Write :func:`to_dot` output to *path*."""
    Path(path).write_text(
        to_dot(graph, highlight=highlight, members_only=members_only), encoding="utf-8"
    )
