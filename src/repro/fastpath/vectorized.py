"""numpy-vectorized kernel tier over packed-``uint64`` bitsets.

Each function here is a *result-identical* port of a tier-0 kernel in
:mod:`repro.fastpath.kernels`; the 3-way differential suite in
``tests/test_fastpath.py`` pins the equivalence across the generator
suite. The ports trade the sequential peel loops for **wave peeling**:
instead of popping one violator at a time off a queue, every current
violator is removed in one numpy step and degrees are recomputed with a
``bincount`` over the gathered CSR neighbourhoods. That changes the
*order* of removal but not the *result*:

* the maximal tau-core is unique (the constraint "degree >= tau within
  the survivors" is monotone), so :func:`icore` converges to exactly
  the mask tier-0's queue produces, including the fixed-node failure
  condition (``fixed ⊄ core``);
* the MC-core of MCNew is the greatest fixpoint of a monotone
  constraint system over (alive nodes, directed surviving-ego edges),
  so :func:`mccore_new_mask` — which only ever removes constraint
  violators — lands on the identical node mask.

Core *numbers* are likewise unique per node, but the wave peel's order
is not a valid bucket-queue tie-break, so degeneracy *orders* (used by
:meth:`CompiledGraph.oriented`) always come from tier-0/native
``core_numbers_csr`` — orientation stays backend-stable.

This module requires numpy and must only be imported behind
``backend.HAS_NUMPY`` (the :func:`~repro.fastpath.backend.resolve_backend`
ladder guarantees that).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import ParameterError
from repro.fastpath import packed
from repro.fastpath.compiled import CompiledGraph
from repro.graphs.signed_graph import Node

if TYPE_CHECKING:  # imported lazily at runtime to keep repro.core acyclic
    from repro.core.params import AlphaK

#: Rows per popcount batch: bounds the (chunk, n_words) gather buffers
#: to ~20 MB at n = 10k instead of materialising an (m, n_words) matrix.
_CHUNK = 1 << 14


def _csr(compiled: CompiledGraph, sign: str) -> Tuple[np.ndarray, np.ndarray]:
    """The sign-class CSR pair as zero-copy int64 numpy views."""
    xadj, adj = compiled.csr(sign)
    return packed.as_int64(xadj), packed.as_int64(adj)


def _gather(xadj: np.ndarray, adj: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Concatenate the CSR rows of the *idx* nodes (vectorized)."""
    starts = xadj[idx]
    counts = xadj[idx + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64)
    offsets += np.repeat(starts - ends + counts, counts)
    return adj[offsets]


def pair_popcounts(
    left: np.ndarray, right: np.ndarray, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """``popcount(left[rows[i]] & right[cols[i]])`` per pair, batched.

    The batched candidate-intersection primitive: one fancy-indexed AND
    plus a row popcount per chunk, never an O(pairs x words) resident
    matrix. The two gather buffers are allocated once and reused across
    chunks — refaulting fresh pages per chunk dominated the runtime of
    the first version of this loop.
    """
    pairs = rows.shape[0]
    out = np.empty(pairs, dtype=np.int64)
    if pairs == 0:
        return out
    span = min(_CHUNK, pairs)
    buf_left = np.empty((span, left.shape[1]), dtype=np.uint64)
    buf_right = np.empty_like(buf_left)
    for start in range(0, pairs, _CHUNK):
        stop = min(start + _CHUNK, pairs)
        size = stop - start
        np.take(left, rows[start:stop], axis=0, out=buf_left[:size])
        np.take(right, cols[start:stop], axis=0, out=buf_right[:size])
        np.bitwise_and(buf_left[:size], buf_right[:size], out=buf_left[:size])
        out[start:stop] = packed.popcount_rows(buf_left[:size])
    return out


def _wedge_counts(
    bit_rows: np.ndarray,
    tails: np.ndarray,
    heads: np.ndarray,
    xadj: np.ndarray,
    adj: np.ndarray,
) -> np.ndarray:
    """``popcount(bit_rows[tails[i]] & row(heads[i]))`` via wedge probes.

    Result-identical to :func:`pair_popcounts` against the packed form
    of the ``(xadj, adj)`` CSR, but each wedge ``(u, v, w)`` — edge
    ``(u, v)`` times neighbour ``w`` of ``v`` — probes a *single bit* of
    ``bit_rows[u]`` instead of ANDing two full ``n_words`` rows. For
    sparse rows (the common case: average degree << n) this moves one
    word per set bit rather than ``n_words`` words per pair, which is
    what the triangle benchmarks gate on.
    """
    probe_w = _gather(xadj, adj, heads)
    counts = xadj[heads + 1] - xadj[heads]
    if probe_w.size == 0:
        return np.zeros(tails.shape[0], dtype=np.int64)
    probe_u = np.repeat(tails, counts)
    bits = packed.test_bit(bit_rows, probe_u, probe_w)
    # Segmented sum per edge, restricted to non-empty segments: reduceat
    # sums [index[i], index[i+1]), so an empty segment's start must not
    # appear in the index list at all — clipping it in-range would steal
    # the last element of the preceding segment.
    starts = np.zeros(tails.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    sums = np.zeros(tails.shape[0], dtype=np.int64)
    occupied = counts > 0
    sums[occupied] = np.add.reduceat(bits, starts[occupied], dtype=np.int64)
    return sums


# ----------------------------------------------------------------------
# Core decomposition
# ----------------------------------------------------------------------
def core_values(n: int, xadj: np.ndarray, adj: np.ndarray) -> List[int]:
    """Core numbers by wave peeling (no order; see module docstring)."""
    if n == 0:
        return []
    degree = np.diff(xadj).copy()
    alive = np.ones(n, dtype=bool)
    core = np.zeros(n, dtype=np.int64)
    remaining = n
    k = 0
    while remaining:
        k = max(k, int(degree[alive].min()))
        frontier = alive & (degree <= k)
        while True:
            idx = np.flatnonzero(frontier)
            if idx.size == 0:
                break
            core[idx] = k
            alive[idx] = False
            remaining -= idx.size
            neighbours = _gather(xadj, adj, idx)
            if neighbours.size:
                degree -= np.bincount(neighbours, minlength=n)
            frontier = alive & (degree <= k)
        k += 1
    return core.tolist()


def core_numbers(compiled: CompiledGraph, sign: str = "all") -> Dict[Node, int]:
    """Vectorized port of :func:`repro.fastpath.kernels.core_numbers_fast`."""
    xadj, adj = _csr(compiled, sign)
    core = core_values(compiled.n, xadj, adj)
    nodes = compiled.nodes
    return {nodes[i]: core[i] for i in range(compiled.n)}


# ----------------------------------------------------------------------
# ICore
# ----------------------------------------------------------------------
def icore(
    compiled: CompiledGraph,
    fixed_mask: int,
    tau: int,
    within_mask: Optional[int] = None,
    sign: str = "all",
) -> Tuple[bool, int]:
    """Vectorized port of :func:`repro.fastpath.kernels.icore_fast`.

    Computes the (unique) maximal tau-core of the induced subgraph by
    wave peeling, then applies tier-0's failure conditions: a fixed
    node outside the survivors, or an empty core, yields ``(False, 0)``.
    """
    if tau < 0:
        raise ParameterError(f"tau must be non-negative, got {tau}")
    n = compiled.n
    members = compiled.full_mask if within_mask is None else within_mask
    if fixed_mask & ~members:
        return False, 0
    if members == 0:
        return False, 0
    xadj, adj = _csr(compiled, sign)
    alive = packed.unpack_bool(packed.pack_mask(members, n), n)
    if within_mask is None or members == compiled.full_mask:
        degree = np.diff(xadj).copy()
    else:
        idx = np.flatnonzero(alive)
        counts = xadj[idx + 1] - xadj[idx]
        sources = np.repeat(idx, counts)
        neighbours = _gather(xadj, adj, idx)
        inside = alive[neighbours]
        degree = np.bincount(sources[inside], minlength=n)
    frontier = alive & (degree < tau)
    while True:
        idx = np.flatnonzero(frontier)
        if idx.size == 0:
            break
        alive[idx] = False
        neighbours = _gather(xadj, adj, idx)
        if neighbours.size:
            degree -= np.bincount(neighbours, minlength=n)
        frontier = alive & (degree < tau)
    mask = packed.unpack_mask(packed.pack_bool(alive))
    if mask == 0 or fixed_mask & ~mask:
        return False, 0
    return True, mask


# ----------------------------------------------------------------------
# MCNew peeling
# ----------------------------------------------------------------------
def mccore_new_mask(compiled: CompiledGraph, params: "AlphaK") -> int:
    """Vectorized port of :func:`repro.fastpath.kernels.mccore_new_mask`.

    State is the ``(n, n_words)`` surviving-ego matrix ``OUT`` (row *u*
    = tier-0's ``out_pos[u]``) plus the alive vector. Each round
    recomputes every surviving directed edge's Lemma-4 delta
    ``popcount(OUT[u] & N_all(v))`` in one batched popcount, clears the
    violating edge bits, and kills nodes whose surviving positive degree
    dropped below the threshold; the loop stops at the (unique) greatest
    fixpoint tier-0's queue also reaches.
    """
    threshold = params.positive_threshold
    if threshold == 0:
        return compiled.full_mask
    tau = threshold - 1
    flag, alive_mask = icore(compiled, 0, threshold, None, sign="positive")
    if not flag:
        return 0
    n = compiled.n
    alive = packed.unpack_bool(packed.pack_mask(alive_mask, n), n)
    alive_words = packed.pack_mask(alive_mask, n)
    ego = np.bitwise_and(compiled.packed("positive"), alive_words[np.newaxis, :])
    ego[~alive] = 0
    all_rows = compiled.packed("all")

    pxadj, padj = _csr(compiled, "positive")
    tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(pxadj))
    heads = padj
    inside = alive[tails] & alive[heads]
    tails, heads = tails[inside], heads[inside]

    while True:
        present = packed.test_bit(ego, tails, heads)
        tails, heads = tails[present], heads[present]
        delta = pair_popcounts(ego, all_rows, tails, heads)
        bad = delta < tau
        degree = packed.popcount_rows(ego)
        dead = alive & (degree < threshold)
        if not bad.any() and not dead.any():
            break
        packed.clear_bits(ego, tails[bad], heads[bad])
        if dead.any():
            alive &= ~dead
            ego[dead] = 0
            alive_words = packed.pack_bool(alive)
            ego &= alive_words[np.newaxis, :]
    return packed.unpack_mask(packed.pack_bool(alive))


# ----------------------------------------------------------------------
# Triangles
# ----------------------------------------------------------------------
def _oriented_arrays(
    compiled: CompiledGraph, sign: str
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(oxadj, tails, heads, packed_rows)`` of the degeneracy DAG.

    Orients every undirected edge from the lower to the higher
    degeneracy rank (the same total order tier-0's
    :meth:`CompiledGraph.oriented` uses), as flat edge arrays plus the
    packed out-neighbour matrix. Cached on the compiled graph next to
    the packed sign-class matrices.
    """
    key = "oriented:" + sign
    cached = compiled._packed.get(key)
    if cached is None:
        n = compiled.n
        order, _rows = compiled.oriented(sign)
        rank = np.empty(n, dtype=np.int64)
        rank[np.asarray(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
        xadj, adj = _csr(compiled, sign)
        tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(xadj))
        keep = rank[tails] < rank[adj]
        tails, heads = tails[keep], adj[keep]
        oxadj = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(tails, minlength=n), out=oxadj[1:])
        cached = (oxadj, tails, heads, packed.pack_edges(n, tails, heads))
        compiled._packed[key] = cached
    return cached


def triangle_count(compiled: CompiledGraph, sign: str = "all") -> int:
    """Vectorized port of :func:`repro.fastpath.kernels.triangle_count_fast`.

    Every triangle is counted exactly once at its source edge — for any
    acyclic orientation, ``sum(|out(u) & out(v)|)`` over directed edges
    ``(u, v)`` — so probing the degeneracy DAG's packed out-rows with
    :func:`_wedge_counts` reproduces tier-0's total exactly.
    """
    if compiled.n == 0:
        return 0
    oxadj, tails, heads, rows = _oriented_arrays(compiled, sign)
    if tails.size == 0:
        return 0
    return int(_wedge_counts(rows, tails, heads, oxadj, heads).sum())


def ego_triangle_degrees(
    compiled: CompiledGraph, within: Optional[Set[Node]] = None
) -> Dict[Tuple[Node, Node], int]:
    """Vectorized port of :func:`repro.fastpath.kernels.ego_triangle_degrees_fast`.

    The Lemma-4 delta of a directed positive edge ``(u, v)`` is
    ``|OUT[u] & N_all(v)|`` with ``OUT[u]`` the member-restricted
    positive ego row; each delta is assembled by probing ``OUT`` bits
    over the wedges ``w in N_all(v)`` (*unrestricted*, as in tier-0),
    one word per wedge instead of a full-row AND per edge.
    """
    n = compiled.n
    member_mask = (
        compiled.full_mask if within is None else compiled.mask_from_nodes(within)
    )
    if n == 0 or member_mask == 0:
        return {}
    pxadj, padj = _csr(compiled, "positive")
    tails = np.repeat(np.arange(n, dtype=np.int64), np.diff(pxadj))
    heads = padj
    restricted = member_mask != compiled.full_mask
    if restricted:
        member = packed.unpack_bool(packed.pack_mask(member_mask, n), n)
        inside = member[tails] & member[heads]
        tails, heads = tails[inside], heads[inside]
    # Probe the *positive* side: wedges (u, v, w) with w over pos(u) —
    # tails are CSR-sorted, so the row gathers walk padj sequentially —
    # testing w against the packed unrestricted all-row of v; the member
    # restriction of OUT[u] becomes a filter on the probed w instead.
    probe_w = _gather(pxadj, padj, tails)
    counts = pxadj[tails + 1] - pxadj[tails]
    if probe_w.size == 0:
        sums = np.zeros(tails.shape[0], dtype=np.int64)
    else:
        probe_v = np.repeat(heads, counts)
        bits = packed.test_bit(compiled.packed("all"), probe_v, probe_w)
        if restricted:
            bits &= member[probe_w]
        # Non-empty segments only (see _wedge_counts); every tail here
        # has positive degree >= 1, but keep the same safe pattern.
        starts = np.zeros(tails.shape[0], dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        sums = np.zeros(tails.shape[0], dtype=np.int64)
        occupied = counts > 0
        sums[occupied] = np.add.reduceat(bits, starts[occupied], dtype=np.int64)
    nodes = compiled.nodes
    if restricted:
        pairs = list(
            zip(
                map(nodes.__getitem__, tails.tolist()),
                map(nodes.__getitem__, heads.tolist()),
            )
        )
    else:
        # The unrestricted key list depends only on the positive CSR —
        # cache it beside the packed matrices; building 2m node-pair
        # tuples is a fixed cost comparable to the probe work itself.
        pairs = compiled._packed.get("ego_pairs")
        if pairs is None:
            pairs = list(
                zip(
                    map(nodes.__getitem__, tails.tolist()),
                    map(nodes.__getitem__, heads.tolist()),
                )
            )
            compiled._packed["ego_pairs"] = pairs
    return dict(zip(pairs, sums.tolist()))
