"""Compilation of a :class:`SignedGraph` into flat CSR integer arrays.

``SignedGraph`` stores adjacency as per-node hashed sets of arbitrary
hashable nodes — ideal for construction and mutation, expensive to scan.
:class:`CompiledGraph` is the read-only counterpart: nodes are densely
renumbered ``0..n-1`` and each adjacency class (combined / positive /
negative) becomes one CSR (compressed sparse row) pair of stdlib
``array`` buffers, so the kernels in :mod:`repro.fastpath.kernels` scan
neighbours by integer indexing with no hashing at all.

Besides the CSR arrays the compilation carries:

* a stable node<->index mapping (``nodes`` list / :meth:`index_of`);
* edge signs aligned with the combined adjacency, which is enough to
  reconstruct an equal ``SignedGraph`` (:meth:`to_signed_graph`) — this
  is what makes a ``CompiledGraph`` a *compact pickle* for shipping
  subgraphs to worker processes;
* lazily-built per-node adjacency bitmasks (:meth:`masks`) used by the
  bitset kernels; built with numpy's ``packbits`` when numpy is
  importable, with a pure-Python fallback otherwise (numpy is an
  optional accelerator, never a dependency);
* lazily-built degeneracy orders and degeneracy-oriented adjacency
  (:meth:`oriented`), the substrate of the triangle kernels;
* a lazily-built ``repr``-rank permutation used to replicate the pure
  path's deterministic tie-breaking exactly.

Compiled graphs deliberately support no mutation: recompile after
changing the source graph.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.fastpath.bitset import iter_bits, mask_of
from repro.graphs.signed_graph import NEGATIVE, POSITIVE, Node, SignedGraph

try:  # Optional accelerator only; every code path has a stdlib fallback.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

_SIGN_SELECTORS = ("all", "positive", "negative")


class CompiledGraph:
    """A read-only CSR compilation of a :class:`SignedGraph`.

    Build one with :func:`compile_graph`; hand it to any fastpath-aware
    entry point (``MSCE``, ``mccore_new``, ``core_numbers``, ...) in
    place of the source graph.

    Attributes
    ----------
    nodes:
        Index -> original node, in source-graph iteration order.
    xadj / adj / signs:
        Combined CSR: the neighbours of node ``i`` are
        ``adj[xadj[i]:xadj[i+1]]`` (ascending indices) and
        ``signs[...]`` carries the aligned ``+1``/``-1`` labels.
    pxadj / padj, nxadj / nadj:
        Positive-only and negative-only CSR adjacency.
    """

    __slots__ = (
        "nodes",
        "n",
        "xadj",
        "adj",
        "signs",
        "pxadj",
        "padj",
        "nxadj",
        "nadj",
        "_index",
        "_source",
        "_masks",
        "_oriented",
        "_repr_rank",
        "_packed",
        "_storage",
    )

    def __init__(
        self,
        nodes: Sequence[Node],
        xadj: Sequence[int],
        adj: Sequence[int],
        signs: Sequence[int],
        source: Optional[SignedGraph] = None,
    ):
        self.nodes: List[Node] = list(nodes)
        self.n = len(self.nodes)
        self.xadj = array("q", xadj)
        self.adj = array("q", adj)
        self.signs = array("b", signs)
        pxadj, padj, nxadj, nadj = _split_by_sign(self.n, self.xadj, self.adj, self.signs)
        self.pxadj, self.padj = pxadj, padj
        self.nxadj, self.nadj = nxadj, nadj
        self._index: Optional[Dict[Node, int]] = None
        self._source = source
        self._masks: Dict[str, List[int]] = {}
        self._oriented: Dict[str, Tuple[List[int], List[List[int]]]] = {}
        self._repr_rank: Optional[List[int]] = None
        self._packed: Dict[str, object] = {}
        #: The open GraphStore when this graph is an mmap view, else None.
        self._storage: Optional[object] = None

    # ------------------------------------------------------------------
    # Mapping between nodes and indices
    # ------------------------------------------------------------------
    @property
    def index(self) -> Dict[Node, int]:
        """The node -> index mapping (built on first use)."""
        if self._index is None:
            self._index = {node: i for i, node in enumerate(self.nodes)}
        return self._index

    def index_of(self, node: Node) -> int:
        """Return the compiled index of *node* (KeyError when absent)."""
        return self.index[node]

    def node_of(self, index: int) -> Node:
        """Return the original node at compiled *index*."""
        return self.nodes[index]

    def mask_from_nodes(self, members: Iterable[Node]) -> int:
        """Return the bitmask of the compiled indices of *members*.

        Nodes absent from the compilation are ignored silently, matching
        the tolerant ``within`` semantics of the pure kernels.
        """
        index = self.index
        mask = 0
        for node in members:
            i = index.get(node)
            if i is not None:
                mask |= 1 << i
        return mask

    def nodes_from_mask(self, mask: int) -> Set[Node]:
        """Return the original-node set selected by bitmask *mask*."""
        nodes = self.nodes
        return {nodes[i] for i in iter_bits(mask)}

    @property
    def full_mask(self) -> int:
        """The mask with all ``n`` node bits set."""
        return (1 << self.n) - 1

    @property
    def repr_rank(self) -> List[int]:
        """``repr_rank[i]`` = rank of node ``i`` under ``sorted(key=repr)``.

        The pure-Python selectors break ties by ``repr`` of the node;
        comparing these precomputed ranks reproduces that order exactly
        without re-stringifying nodes inside the search.
        """
        if self._repr_rank is None:
            order = sorted(range(self.n), key=lambda i: repr(self.nodes[i]))
            rank = [0] * self.n
            for position, i in enumerate(order):
                rank[i] = position
            self._repr_rank = rank
        return self._repr_rank

    # ------------------------------------------------------------------
    # Adjacency accessors
    # ------------------------------------------------------------------
    def csr(self, sign: str = "all") -> Tuple[array, array]:
        """Return the ``(xadj, adj)`` CSR pair for the sign class."""
        if sign == "all":
            return self.xadj, self.adj
        if sign == "positive":
            return self.pxadj, self.padj
        if sign == "negative":
            return self.nxadj, self.nadj
        from repro.exceptions import ParameterError

        raise ParameterError(
            f"unknown sign selector {sign!r}; expected one of {_SIGN_SELECTORS}"
        )

    def degree(self, i: int, sign: str = "all") -> int:
        """Return the degree of compiled node *i* in the sign class."""
        xadj, _adj = self.csr(sign)
        return xadj[i + 1] - xadj[i]

    def masks(self, sign: str = "all") -> List[int]:
        """Return per-node adjacency bitmasks for the sign class (cached).

        ``masks(sign)[i]`` has bit ``j`` set iff ``j`` is a *sign*-class
        neighbour of ``i``. Memory is O(n^2 / 8) bits, so this is meant
        for the (reduced) graphs the enumerator actually searches, not
        for million-node inputs; the CSR kernels never require it.
        """
        cached = self._masks.get(sign)
        if cached is None:
            xadj, adj = self.csr(sign)
            cached = _build_masks(self.n, xadj, adj)
            self._masks[sign] = cached
        return cached

    def packed(self, sign: str = "all"):
        """Return the ``(n, n_words)`` packed-``uint64`` adjacency (cached).

        The numpy counterpart of :meth:`masks`: row ``i`` is node *i*'s
        adjacency bitmask in the little-endian packed layout of
        :mod:`repro.fastpath.packed`, so ``int.from_bytes(row, "little")
        == masks(sign)[i]``. Requires numpy; callers route through
        :func:`repro.fastpath.backend.resolve_backend`, which never
        selects a packed-consuming tier without it.
        """
        cached = self._packed.get(sign)
        if cached is None:
            from repro.fastpath import packed as packed_mod

            xadj, adj = self.csr(sign)
            cached = packed_mod.pack_csr(self.n, xadj, adj)
            self._packed[sign] = cached
        return cached

    def degeneracy_order(self, sign: str = "all") -> List[int]:
        """Return a degeneracy (smallest-remaining-degree) peel order."""
        return self.oriented(sign)[0]

    def oriented(self, sign: str = "all") -> Tuple[List[int], List[List[int]]]:
        """Return ``(order, rows)``: degeneracy-oriented adjacency (cached).

        ``order`` is a degeneracy peel order of the sign-class graph;
        ``rows[i]`` lists the neighbours of ``i`` that appear *later* in
        that order. Orienting every edge from earlier to later bounds
        each out-degree by the degeneracy, which is what makes the
        triangle kernels O(degeneracy * m).
        """
        cached = self._oriented.get(sign)
        if cached is None:
            from repro.fastpath.kernels import core_numbers_csr

            xadj, adj = self.csr(sign)
            order = core_numbers_csr(self.n, xadj, adj)[1]
            position = [0] * self.n
            for rank, i in enumerate(order):
                position[i] = rank
            rows: List[List[int]] = [[] for _ in range(self.n)]
            for i in range(self.n):
                pos_i = position[i]
                row = rows[i]
                for t in range(xadj[i], xadj[i + 1]):
                    j = adj[t]
                    if position[j] > pos_i:
                        row.append(j)
            cached = (order, rows)
            self._oriented[sign] = cached
        return cached

    # ------------------------------------------------------------------
    # Subgraph extraction
    # ------------------------------------------------------------------
    def extract(self, member_mask: int) -> "CompiledGraph":
        """Return the compiled induced subgraph of the *member_mask* nodes.

        Slices the CSR arrays directly — O(sum of member degrees), no
        intermediate dict-of-sets ``SignedGraph`` is ever built — which
        is how the parallel enumerator carves the reduced survivor set
        (or a component) out of a full compilation without the serial
        ``graph.subgraph`` + ``compile_graph`` prefix it used to pay per
        component. Kept nodes are renumbered ``0..k-1`` in ascending
        original-index order, so CSR rows stay ascending and the
        ``repr``-rank tie-breaking of the search is unaffected. The
        result carries no source graph; :attr:`source` reconstructs one
        on demand.
        """
        keep = list(iter_bits(member_mask))
        new_index = [-1] * self.n
        for new, old in enumerate(keep):
            new_index[old] = new
        nodes = [self.nodes[old] for old in keep]
        xadj, adj, signs = self.xadj, self.adj, self.signs
        sub_xadj: List[int] = [0]
        sub_adj: List[int] = []
        sub_signs: List[int] = []
        for old in keep:
            for t in range(xadj[old], xadj[old + 1]):
                j = adj[t]
                if (member_mask >> j) & 1:
                    sub_adj.append(new_index[j])
                    sub_signs.append(signs[t])
            sub_xadj.append(len(sub_adj))
        return CompiledGraph(nodes, sub_xadj, sub_adj, sub_signs, source=None)

    def extract_nodes(self, members: Iterable[Node]) -> "CompiledGraph":
        """Node-set convenience wrapper over :meth:`extract`."""
        return self.extract(self.mask_from_nodes(members))

    # ------------------------------------------------------------------
    # Round trips
    # ------------------------------------------------------------------
    @property
    def source(self) -> SignedGraph:
        """The source :class:`SignedGraph` (reconstructed after unpickling).

        When the compilation crossed a process boundary the original
        graph is rebuilt from the CSR arrays on first access; the result
        compares equal (``==``) to the graph that was compiled.
        """
        if self._source is None:
            self._source = self.to_signed_graph()
        return self._source

    def to_signed_graph(self) -> SignedGraph:
        """Materialise a fresh, equal :class:`SignedGraph` from the CSR."""
        graph = SignedGraph(nodes=self.nodes)
        nodes, xadj, adj, signs = self.nodes, self.xadj, self.adj, self.signs
        for i in range(self.n):
            u = nodes[i]
            for t in range(xadj[i], xadj[i + 1]):
                j = adj[t]
                if j > i:  # each undirected edge once
                    graph.add_edge(u, nodes[j], signs[t])
        return graph

    # ------------------------------------------------------------------
    # Durable storage (see repro.fastpath.storage)
    # ------------------------------------------------------------------
    def save(self, path, packed: object = "auto", fingerprint=None) -> int:
        """Write this graph to *path* as a versioned on-disk artifact.

        Delegates to :func:`repro.fastpath.storage.save_compiled`;
        returns the artifact size in bytes. The artifact re-attaches
        with :meth:`mmap` as a zero-copy view — no pickle, no array
        copies — in any process that can see the file.
        """
        from repro.fastpath.storage import save_compiled

        return save_compiled(self, path, packed=packed, fingerprint=fingerprint)

    @classmethod
    def mmap(cls, path, expected_fingerprint=None) -> "CompiledGraph":
        """Attach a saved artifact as a read-only zero-copy graph.

        Delegates to :func:`repro.fastpath.storage.mmap_compiled`. The
        CSR slots are ``memoryview`` casts into the file mapping and any
        stored packed matrices arrive as read-only numpy views; mutation
        through either raises. The mapping lives as long as the graph.
        """
        from repro.fastpath.storage import mmap_compiled

        return mmap_compiled(path, expected_fingerprint=expected_fingerprint)

    def __getstate__(self):
        # Ship only the compact arrays; the source graph, masks,
        # orientations and ranks are all derivable on the far side.
        return (self.nodes, self.xadj, self.adj, self.signs)

    def __setstate__(self, state):
        nodes, xadj, adj, signs = state
        self.__init__(nodes, xadj, adj, signs, source=None)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"CompiledGraph(n={self.n}, m={len(self.adj) // 2}, "
            f"pos={len(self.padj) // 2}, neg={len(self.nadj) // 2})"
        )


def compile_graph(graph: SignedGraph) -> CompiledGraph:
    """Compile *graph* into a :class:`CompiledGraph` (the graph is untouched).

    Node indices follow the graph's iteration order; neighbour lists are
    sorted by index so the kernels can rely on ascending CSR rows.
    """
    if isinstance(graph, CompiledGraph):
        return graph
    from repro.obs import runtime as obs

    with obs.span("compile", nodes=graph.number_of_nodes()):
        nodes = list(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        xadj: List[int] = [0]
        adj: List[int] = []
        signs: List[int] = []
        for node in nodes:
            positive = graph.positive_neighbors(node)
            row = [(index[v], POSITIVE) for v in positive]
            row.extend((index[v], NEGATIVE) for v in graph.negative_neighbors(node))
            row.sort()
            adj.extend(j for j, _s in row)
            signs.extend(s for _j, s in row)
            xadj.append(len(adj))
        compiled = CompiledGraph(nodes, xadj, adj, signs, source=graph)
        compiled._index = index
        return compiled


def as_compiled(graph) -> Optional[CompiledGraph]:
    """Return *graph* when it is a :class:`CompiledGraph`, else ``None``.

    The dispatch helper used by the fastpath-aware entry points.
    """
    return graph if isinstance(graph, CompiledGraph) else None


def source_graph(graph) -> SignedGraph:
    """Return the underlying :class:`SignedGraph` of either representation."""
    return graph.source if isinstance(graph, CompiledGraph) else graph


def _split_by_sign(
    n: int, xadj: array, adj: array, signs: array
) -> Tuple[array, array, array, array]:
    """Split the combined CSR into positive-only and negative-only CSR."""
    pxadj = array("q", [0])
    nxadj = array("q", [0])
    padj: List[int] = []
    nadj: List[int] = []
    for i in range(n):
        for t in range(xadj[i], xadj[i + 1]):
            if signs[t] == POSITIVE:
                padj.append(adj[t])
            else:
                nadj.append(adj[t])
        pxadj.append(len(padj))
        nxadj.append(len(nadj))
    return pxadj, array("q", padj), nxadj, array("q", nadj)


def _build_masks(n: int, xadj: array, adj: array) -> List[int]:
    """Build one adjacency bitmask per node from a CSR pair."""
    if _np is not None and n:
        # numpy path: one packbits per node, C speed end to end.
        np_adj = _np.frombuffer(adj, dtype=_np.int64) if len(adj) else _np.zeros(0, _np.int64)
        masks: List[int] = []
        row_bits = _np.zeros(n, dtype=_np.uint8)
        for i in range(n):
            start, stop = xadj[i], xadj[i + 1]
            if start == stop:
                masks.append(0)
                continue
            row = np_adj[start:stop]
            row_bits[row] = 1
            packed = _np.packbits(row_bits, bitorder="little")
            masks.append(int.from_bytes(packed.tobytes(), "little"))
            row_bits[row] = 0
        return masks
    return [mask_of(adj[xadj[i] : xadj[i + 1]]) for i in range(n)]
