"""Versioned on-disk storage for :class:`CompiledGraph` + frame spilling.

Two storage tiers live here, both built for graphs (and frontiers) that
should not be paid for in RAM or in pickle bytes:

**Graph artifacts** — :func:`save_compiled` writes a compiled graph to a
single file in a versioned, **little-endian** layout: a fixed 88-byte
header (:data:`MAGIC`, version, flags, the CSR dimensions, an optional
graph fingerprint) followed by 8-aligned segments holding the six CSR
arrays, the aligned edge signs, the pickled node list, and — when
flagged — the packed-``uint64`` adjacency matrices of
:mod:`repro.fastpath.packed`. :func:`mmap_compiled` re-attaches the file
as a read-only ``mmap`` and rebuilds a :class:`CompiledGraph` whose
array slots are ``memoryview`` casts straight into the mapping — **zero
pickle bytes and zero array copies**, the same zero-copy contract as
:class:`~repro.fastpath.shared.SharedCompiledGraph`, but durable and
shareable across unrelated processes via the filesystem. Because the
mapping is ``ACCESS_READ``, any attempt to assign through the views
raises — compiled graphs are immutable and the storage tier enforces it.

The segment order and 8-byte alignment deliberately mirror
``shared._layout``: a worker attaching a graph artifact runs the exact
code path a shared-memory worker runs, just against file-backed pages
that the OS shares between every attached process and evicts under
pressure.

**Frame spilling** — :class:`FrameStore` is a disk-backed LIFO of
``(candidates, included)`` search frames and :class:`SpillFrontier` is
the policy object that lets :meth:`FrameSearch.run
<repro.fastpath.search.FrameSearch.run>` keep its DFS stack bounded:
when the in-memory frontier crosses a high-water mark (derived from the
run's memory budget), the bottom-of-stack frames — the largest
unexplored subtrees — are serialised to a temp file and reloaded only
when the stack drains. Spilling changes *where frames wait, never which
frames run*, so cliques and stats stay bit-identical to the unbudgeted
in-memory run (the same argument as the scheduler's offload path).

Every temp artifact (spill files, mmap-transport graph files) carries a
``weakref.finalize`` crash guard mirroring the ``/dev/shm`` leak
guarantees of :mod:`repro.fastpath.shared`: files are removed even when
the owner never reaches its explicit ``close()``, and the guard is
pid-checked so forked children cannot yank a file from under the
still-running parent.
"""

from __future__ import annotations

import io
import mmap
import os
import pickle
import struct
import sys
import tempfile
import weakref
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.exceptions import ParameterError, StorageError
from repro.fastpath.compiled import CompiledGraph

#: First 8 bytes of every graph artifact ("Repro Signed Graph", layout 1).
MAGIC = b"RSGRAPH1"

#: On-disk layout revision; bump when the header or segment order changes.
STORAGE_VERSION = 1

#: Header: magic, version, flags, reserved, n, m_all, m_pos, m_neg,
#: nodes_len, raw fingerprint (32 bytes, zero when unknown). 88 bytes,
#: 8-aligned, explicitly little-endian and padding-free.
_HEADER = struct.Struct("<8sHHIqqqqq32s")
HEADER_BYTES = _HEADER.size

#: Sign classes a packed adjacency matrix may be stored for, in segment
#: order, and their presence bits in the header ``flags`` field.
PACKED_SIGNS = ("all", "positive", "negative")
PACKED_FLAGS = {"all": 1, "positive": 2, "negative": 4}

#: ``packed="auto"`` stores the matrices only below this node count —
#: the O(n^2/8) matrices are meant for reduced search graphs, and above
#: this the CSR alone is the sensible artifact.
PACKED_NODE_LIMIT = 4096

_ALIGN = 8

#: Filename prefixes of the crash-guarded temp artifacts (leak checks in
#: the fault-injection tests grep the tempdir for these).
MMAP_PREFIX = "repro-mmap-"
SPILL_PREFIX = "repro-spill-"


def _aligned(offset: int) -> int:
    """Round *offset* up to the next 8-byte boundary (int64 segments)."""
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _packed_words(n: int) -> int:
    """``ceil(n / 64)`` with a 1 floor — :func:`packed.n_words` sans numpy."""
    return max(1, (n + 63) >> 6)


def _check_byteorder() -> None:
    if sys.byteorder != "little":  # pragma: no cover - no big-endian CI leg
        raise StorageError(
            "graph artifacts are little-endian on disk and attached "
            "zero-copy; this host is big-endian"
        )


class StorageHeader(NamedTuple):
    """Decoded artifact header — the pure value the layout derives from."""

    version: int
    flags: int
    n: int
    m_all: int
    m_pos: int
    m_neg: int
    nodes_len: int
    fingerprint: bytes  # 32 raw bytes, all-zero when unknown

    def packed_signs(self) -> Tuple[str, ...]:
        """The sign classes whose packed matrices the artifact carries."""
        return tuple(s for s in PACKED_SIGNS if self.flags & PACKED_FLAGS[s])


def encode_header(header: StorageHeader) -> bytes:
    """Serialise *header* to the fixed :data:`HEADER_BYTES` prefix."""
    for name, value in zip(("n", "m_all", "m_pos", "m_neg", "nodes_len"),
                           header[2:7]):
        if value < 0:
            raise StorageError(f"negative header field {name}={value}")
    if len(header.fingerprint) != 32:
        raise StorageError(
            f"fingerprint must be 32 raw bytes, got {len(header.fingerprint)}"
        )
    return _HEADER.pack(
        MAGIC,
        header.version,
        header.flags,
        0,
        header.n,
        header.m_all,
        header.m_pos,
        header.m_neg,
        header.nodes_len,
        header.fingerprint,
    )


def decode_header(data: bytes) -> StorageHeader:
    """Parse and validate an artifact prefix (inverse of :func:`encode_header`)."""
    if len(data) < HEADER_BYTES:
        raise StorageError(
            f"truncated artifact: {len(data)} bytes, header needs {HEADER_BYTES}"
        )
    magic, version, flags, _reserved, n, m_all, m_pos, m_neg, nodes_len, fp = (
        _HEADER.unpack(bytes(data[:HEADER_BYTES]))
    )
    if magic != MAGIC:
        raise StorageError(f"not a graph artifact (magic {magic!r})")
    if version != STORAGE_VERSION:
        raise StorageError(
            f"unsupported artifact version {version} (this build reads "
            f"{STORAGE_VERSION})"
        )
    if min(n, m_all, m_pos, m_neg, nodes_len) < 0:
        raise StorageError("corrupt artifact header: negative dimension")
    return StorageHeader(version, flags, n, m_all, m_pos, m_neg, nodes_len, fp)


def data_layout(header: StorageHeader) -> Tuple[Dict[str, Tuple[int, int]], int]:
    """Return ``(segments, total_bytes)`` for an artifact with *header*.

    ``segments`` maps segment name to its absolute ``(offset, length)``;
    every offset is 8-aligned so ``memoryview.cast("q")`` is safe. The
    fixed segments mirror ``shared._layout`` order — xadj/pxadj/nxadj,
    adj/padj/nadj, signs, nodes pickle — followed by one
    ``packed_<sign>`` matrix per flag bit, in :data:`PACKED_SIGNS` order.
    """
    n = header.n
    lengths: List[Tuple[str, int]] = [
        ("xadj", (n + 1) * 8),
        ("pxadj", (n + 1) * 8),
        ("nxadj", (n + 1) * 8),
        ("adj", header.m_all * 8),
        ("padj", header.m_pos * 8),
        ("nadj", header.m_neg * 8),
        ("signs", header.m_all),
        ("nodes", header.nodes_len),
    ]
    row_bytes = _packed_words(n) * 8
    for sign in header.packed_signs():
        lengths.append((f"packed_{sign}", n * row_bytes))
    segments: Dict[str, Tuple[int, int]] = {}
    offset = HEADER_BYTES
    for name, length in lengths:
        offset = _aligned(offset)
        segments[name] = (offset, length)
        offset += length
    return segments, offset


def _resolve_packed_flags(compiled: CompiledGraph, packed) -> int:
    """Map the ``packed=`` knob to header flag bits (numpy-gated)."""
    if packed in (False, "none"):
        return 0
    if packed not in (True, "always", "auto"):
        raise ParameterError(
            f"unknown packed mode {packed!r}; expected 'auto', 'always' or 'none'"
        )
    from repro.fastpath.backend import HAS_NUMPY

    if not HAS_NUMPY:
        # Mirror the backend ladder: a missing optional accelerator
        # degrades silently, it never fails the save.
        return 0
    if packed == "auto" and not (0 < compiled.n <= PACKED_NODE_LIMIT):
        return 0
    return sum(PACKED_FLAGS.values())


def _fingerprint_bytes(fingerprint: Optional[str]) -> bytes:
    if fingerprint is None:
        return b"\x00" * 32
    try:
        raw = bytes.fromhex(fingerprint)
    except ValueError as exc:
        raise StorageError(f"fingerprint must be a hex digest: {exc}") from exc
    if len(raw) != 32:
        raise StorageError(
            f"fingerprint must be a 64-hex-char SHA-256 digest, got {len(raw)} bytes"
        )
    return raw


def save_compiled(
    compiled: CompiledGraph,
    path,
    packed: object = "auto",
    fingerprint: Optional[str] = None,
) -> int:
    """Write *compiled* to *path* as a graph artifact; return its size.

    ``packed`` controls the optional packed-``uint64`` matrices:
    ``"auto"`` (default) stores all three sign classes when numpy is
    importable and ``n <= PACKED_NODE_LIMIT``; ``"always"`` stores them
    regardless of size (still numpy-gated); ``"none"`` stores only the
    CSR. ``fingerprint`` is the graph's SHA-256 hex digest
    (:func:`repro.io.cache.graph_fingerprint`); when given it is stamped
    into the header so :func:`mmap_compiled` can verify identity without
    rehashing the file.

    The write is atomic: a sibling temp file is populated and
    ``os.replace``\\ d over *path*, so a crashed save never leaves a
    half-written artifact behind (the temp file itself is crash-guarded).
    """
    _check_byteorder()
    path = os.fspath(path)
    nodes_blob = pickle.dumps(compiled.nodes, protocol=pickle.HIGHEST_PROTOCOL)
    flags = _resolve_packed_flags(compiled, packed)
    header = StorageHeader(
        STORAGE_VERSION,
        flags,
        compiled.n,
        len(compiled.adj),
        len(compiled.padj),
        len(compiled.nadj),
        len(nodes_blob),
        _fingerprint_bytes(fingerprint),
    )
    segments, total = data_layout(header)
    payloads: Dict[str, object] = {
        "xadj": compiled.xadj,
        "pxadj": compiled.pxadj,
        "nxadj": compiled.nxadj,
        "adj": compiled.adj,
        "padj": compiled.padj,
        "nadj": compiled.nadj,
        "signs": compiled.signs,
        "nodes": nodes_blob,
    }
    for sign in header.packed_signs():
        import numpy as np

        payloads[f"packed_{sign}"] = np.ascontiguousarray(
            compiled.packed(sign)
        ).tobytes()
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=MMAP_PREFIX, dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(encode_header(header))
            for name, (offset, length) in segments.items():
                if not length:
                    continue
                handle.seek(offset)
                payload = payloads[name]
                handle.write(
                    payload if isinstance(payload, bytes) else _as_bytes(payload)
                )
            handle.truncate(total)
        os.replace(tmp_path, path)
    except BaseException:
        _remove_file(tmp_path, os.getpid())
        raise
    return total


def _as_bytes(payload) -> bytes:
    """Raw little-endian bytes of an ``array`` / ``memoryview`` payload."""
    return payload.tobytes() if hasattr(payload, "tobytes") else bytes(payload)


class GraphStore:
    """An open, read-only mapping of one graph artifact.

    Owns the file handle and the ``mmap``; the :class:`CompiledGraph`
    built by :func:`mmap_compiled` keeps a reference in its ``_storage``
    slot, so the mapping lives exactly as long as any view into it. A
    ``weakref.finalize`` closes the mapping at collection; the file on
    disk is never deleted here — artifacts are durable, only the
    mmap-*transport* temp files (owned by ``SharedCompiledGraph``) are.
    """

    __slots__ = ("path", "header", "nbytes", "_file", "_mmap", "_finalizer",
                 "__weakref__")

    def __init__(self, path):
        _check_byteorder()
        self.path = os.fspath(path)
        try:
            self._file = open(self.path, "rb")
            size = os.fstat(self._file.fileno()).st_size
            if size < HEADER_BYTES:
                raise StorageError(
                    f"truncated artifact {self.path!r}: {size} bytes"
                )
            self._mmap = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except OSError as exc:
            raise StorageError(f"cannot map {self.path!r}: {exc}") from exc
        self.header = decode_header(self._mmap[:HEADER_BYTES])
        _segments, total = data_layout(self.header)
        if size < total:
            raise StorageError(
                f"truncated artifact {self.path!r}: {size} bytes, "
                f"layout needs {total}"
            )
        self.nbytes = size
        self._finalizer = weakref.finalize(
            self, _close_store, self._mmap, self._file
        )

    @property
    def buffer(self) -> memoryview:
        """A read-only memoryview over the whole mapping."""
        return memoryview(self._mmap)

    def close(self) -> None:
        """Close the mapping (safe to call twice; views must be gone)."""
        self._finalizer()

    def __repr__(self) -> str:
        return (
            f"GraphStore(path={self.path!r}, n={self.header.n}, "
            f"bytes={self.nbytes})"
        )


def _close_store(mapping: mmap.mmap, handle) -> None:
    """Finalizer: close the mmap and file, tolerating exported views."""
    try:
        mapping.close()
    except (BufferError, ValueError):  # pragma: no cover - views still live
        pass
    try:
        handle.close()
    except Exception:  # pragma: no cover - best-effort crash path
        pass


def mmap_compiled(path, expected_fingerprint: Optional[str] = None) -> CompiledGraph:
    """Re-attach a saved artifact as a zero-copy :class:`CompiledGraph`.

    The six CSR arrays and the sign array become read-only
    ``memoryview`` casts into the file mapping (mutating through them
    raises), and any stored packed matrices are pre-seeded into the
    graph's ``_packed`` cache as read-only ``np.frombuffer`` views —
    nothing is copied but the pickled node list. With
    *expected_fingerprint*, the header's stamped digest must match
    (artifacts saved without one fail the check), so a cache can trust
    the artifact names the graph it thinks it does.
    """
    store = GraphStore(path)
    header = store.header
    if expected_fingerprint is not None:
        expected = _fingerprint_bytes(expected_fingerprint)
        if header.fingerprint != expected:
            store.close()
            raise StorageError(
                f"artifact {store.path!r} fingerprint mismatch: graph changed "
                "or artifact was saved without a fingerprint"
            )
    segments, _total = data_layout(header)
    buf = store.buffer

    def segment(name: str) -> memoryview:
        offset, length = segments[name]
        return buf[offset : offset + length]

    graph = CompiledGraph.__new__(CompiledGraph)
    nodes_offset, nodes_len = segments["nodes"]
    graph.nodes = pickle.loads(bytes(buf[nodes_offset : nodes_offset + nodes_len]))
    graph.n = header.n
    graph.xadj = segment("xadj").cast("q")
    graph.pxadj = segment("pxadj").cast("q")
    graph.nxadj = segment("nxadj").cast("q")
    graph.adj = segment("adj").cast("q")
    graph.padj = segment("padj").cast("q")
    graph.nadj = segment("nadj").cast("q")
    graph.signs = segment("signs").cast("b")
    graph._index = None
    graph._source = None
    graph._masks = {}
    graph._oriented = {}
    graph._repr_rank = None
    graph._packed = {}
    graph._storage = store
    packed_signs = header.packed_signs()
    if packed_signs:
        from repro.fastpath.backend import HAS_NUMPY

        if HAS_NUMPY:
            import numpy as np

            words = _packed_words(header.n)
            for sign in packed_signs:
                offset, length = segments[f"packed_{sign}"]
                graph._packed[sign] = np.frombuffer(
                    buf, dtype=np.uint64, count=length >> 3, offset=offset
                ).reshape(header.n, words)
        # Without numpy the matrices are ignored; no consumer asks for
        # them (the backend resolver never selects a packed tier).
    return graph


def release_views(graph: CompiledGraph) -> None:
    """Release a mapped/shared graph's memoryview exports (idempotent).

    ``mmap.close()`` and ``SharedMemory.close()`` refuse while casts are
    exported, so detach paths drop them first. Plain in-memory graphs
    (``array`` slots) pass through untouched.
    """
    graph._packed.clear()
    for slot in ("xadj", "pxadj", "nxadj", "adj", "padj", "nadj", "signs"):
        view = getattr(graph, slot, None)
        if isinstance(view, memoryview):
            try:
                view.release()
            except (AttributeError, ValueError):  # pragma: no cover - defensive
                pass


# ----------------------------------------------------------------------
# Frame spilling
# ----------------------------------------------------------------------

#: Bottom floor / ceiling for a budget-derived in-memory frontier size.
MIN_HIGH_WATER = 32
MAX_HIGH_WATER = 1 << 20

#: Per-frame RAM estimate: two n-bit masks plus list/tuple overhead.
FRAME_OVERHEAD = 256


def frame_bytes_estimate(n: int) -> int:
    """Rough resident bytes of one pending ``(candidates, included)`` frame."""
    return FRAME_OVERHEAD + (n >> 2)


class FrameStore:
    """A disk-backed LIFO of ``(candidates, included)`` frame batches.

    One crash-guarded temp file holds length-prefixed little-endian
    big-int records; an in-memory index of ``(offset, count, length)``
    batch descriptors makes :meth:`pop_batch` a seek + read + truncate,
    so the file never grows past the spilled frontier's high-water mark.
    """

    __slots__ = ("path", "spilled_frames", "bytes_written", "_file", "_end",
                 "_batches", "_finalizer", "__weakref__")

    def __init__(self, dir: Optional[str] = None):
        fd, self.path = tempfile.mkstemp(prefix=SPILL_PREFIX, suffix=".frames", dir=dir)
        self._file = os.fdopen(fd, "r+b")
        self._end = 0
        self._batches: List[Tuple[int, int, int]] = []
        #: Total frames ever pushed (monotonic; report counter).
        self.spilled_frames = 0
        #: Total bytes ever written (monotonic; report counter).
        self.bytes_written = 0
        self._finalizer = weakref.finalize(
            self, _remove_spill, self._file, self.path, os.getpid()
        )

    @property
    def pending(self) -> int:
        """Frames currently on disk awaiting :meth:`pop_batch`."""
        return sum(count for _offset, count, _length in self._batches)

    def push_batch(self, frames: Iterable[Tuple[int, int]]) -> int:
        """Append one batch of mask pairs; return the frame count."""
        buf = io.BytesIO()
        count = 0
        for candidates, included in frames:
            for value in (candidates, included):
                blob = value.to_bytes(max(1, (value.bit_length() + 7) >> 3), "little")
                buf.write(len(blob).to_bytes(4, "little"))
                buf.write(blob)
            count += 1
        if not count:
            return 0
        payload = buf.getvalue()
        self._file.seek(self._end)
        self._file.write(payload)
        self._batches.append((self._end, count, len(payload)))
        self._end += len(payload)
        self.spilled_frames += count
        self.bytes_written += len(payload)
        return count

    def pop_batch(self) -> List[Tuple[int, int]]:
        """Reload the most recently pushed batch (empty list when drained)."""
        if not self._batches:
            return []
        offset, count, length = self._batches.pop()
        self._file.seek(offset)
        data = self._file.read(length)
        self._file.truncate(offset)
        self._end = offset
        frames: List[Tuple[int, int]] = []
        position = 0
        for _ in range(count):
            values = []
            for _half in range(2):
                blob_len = int.from_bytes(data[position : position + 4], "little")
                position += 4
                values.append(
                    int.from_bytes(data[position : position + blob_len], "little")
                )
                position += blob_len
            frames.append((values[0], values[1]))
        return frames

    def drain(self) -> List[Tuple[int, int]]:
        """Pop every remaining batch (guard-trip accounting path)."""
        frames: List[Tuple[int, int]] = []
        while self._batches:
            frames.extend(self.pop_batch())
        return frames

    def close(self) -> None:
        """Close and delete the spill file (idempotent)."""
        self._finalizer()

    def __repr__(self) -> str:
        return (
            f"FrameStore(path={self.path!r}, pending={self.pending}, "
            f"spilled={self.spilled_frames})"
        )


def _remove_spill(handle, path: str, owner_pid: int) -> None:
    """Crash-path cleanup of a spill file (pid-checked, like shm unlink)."""
    if os.getpid() != owner_pid:
        return
    try:
        handle.close()
    except Exception:  # pragma: no cover - best-effort crash path
        pass
    _remove_file(path, owner_pid)


def _remove_file(path: str, owner_pid: int) -> None:
    """Unlink *path* if it still exists and we are the owning process."""
    if os.getpid() != owner_pid:
        return
    try:
        os.unlink(path)
    except OSError:
        pass


class SpillFrontier:
    """Spill policy bounding a :class:`FrameSearch` DFS stack in RAM.

    ``high_water`` is derived from the run's memory budget (a quarter of
    the budget divided by :func:`frame_bytes_estimate`, clamped to
    [:data:`MIN_HIGH_WATER`, :data:`MAX_HIGH_WATER`]); when the stack
    crosses it — or a guard's soft budget reports the process over while
    the stack holds more than ``keep`` frames — the bottom of the stack
    moves to the :class:`FrameStore`. The spill trigger may depend on
    wall-clock RSS because it only changes *where* frames wait: every
    frame is still expanded exactly once, so results and stats are
    invariant (unlike offload points, which must stay deterministic
    because they feed the retry-credit accounting).
    """

    __slots__ = ("store", "high_water", "keep", "guard")

    def __init__(
        self,
        memory_budget_bytes: int,
        n: int,
        dir: Optional[str] = None,
        guard=None,
        high_water: Optional[int] = None,
    ):
        if high_water is None:
            estimate = frame_bytes_estimate(max(1, n))
            high_water = max(
                MIN_HIGH_WATER,
                min(MAX_HIGH_WATER, memory_budget_bytes // (4 * estimate)),
            )
        self.high_water = high_water
        self.keep = max(1, high_water // 2)
        self.store = FrameStore(dir=dir)
        self.guard = guard

    def should_spill(self, depth: int) -> bool:
        """Whether a *depth*-frame stack should shed its bottom now."""
        if depth > self.high_water:
            return True
        if self.guard is not None and depth > self.keep:
            return self.guard.over_budget()
        return False

    def spill(self, frames: Iterable[Tuple[int, int]]) -> int:
        """Move mask pairs to disk; returns the count."""
        return self.store.push_batch(frames)

    def refill(self) -> List[Tuple[int, int]]:
        """Reload the most recent spilled batch (LIFO, empty when dry)."""
        return self.store.pop_batch()

    @property
    def pending(self) -> int:
        """Frames currently parked on disk."""
        return self.store.pending

    @property
    def spilled_frames(self) -> int:
        """Total frames ever spilled (report counter)."""
        return self.store.spilled_frames

    @property
    def spill_bytes(self) -> int:
        """Total bytes ever spilled (report counter)."""
        return self.store.bytes_written

    def drain(self) -> List[Tuple[int, int]]:
        """Pop everything still on disk (guard-trip accounting)."""
        return self.store.drain()

    def close(self) -> None:
        """Delete the backing spill file (idempotent)."""
        self.store.close()
