"""Compact CSR "fastpath" kernels for the signed clique pipeline.

Every stage of the paper's pipeline — ceil(alpha*k)-core pruning
(Lemma 1), MCNew's ego-triangle peeling (Algorithm 3) and MSCE's
per-subspace ICore calls (Algorithm 4) — is defined over
:class:`~repro.graphs.signed_graph.SignedGraph`'s per-node hashed
adjacency sets. That representation is flexible (nodes are arbitrary
hashables) but pays a hash lookup per adjacency probe, which dominates
the running time of every benchmark exhibit.

This package provides the flat alternative:

* :class:`~repro.fastpath.compiled.CompiledGraph` — a read-only
  compilation of a ``SignedGraph`` into CSR (compressed sparse row)
  integer arrays with separate positive / negative / combined adjacency,
  a stable node<->index mapping, degeneracy-ordered directed edges for
  triangle kernels, and lazily-built per-node adjacency bitmasks;
* :class:`~repro.fastpath.bitset.IntBitset` — a set-of-small-ints over a
  single Python integer, so candidate-set intersection is one C-level
  AND instead of a hashed set intersection;
* :mod:`~repro.fastpath.kernels` — array/bitset ports of the hot
  kernels: bucket-queue core decomposition, ICore with fixed nodes,
  MCNew / MCBasic, orientation-based triangle counting and connected
  components;
* :mod:`~repro.fastpath.search` — the bitset port of MSCE's
  branch-and-bound component search, refactored around explicit
  resumable frames (:class:`~repro.fastpath.search.FrameSearch`) so the
  parallel enumerator can split, budget and offload subtrees;
* :mod:`~repro.fastpath.shared` — one-shot zero-copy shipping of a
  compiled graph to worker processes
  (:class:`~repro.fastpath.shared.SharedCompiledGraph`), over a
  shared-memory block or an mmapped on-disk artifact, selected by
  :func:`~repro.fastpath.shared.resolve_transport`;
* :mod:`~repro.fastpath.storage` — the durable storage tier: a
  versioned little-endian artifact layout written by
  :meth:`CompiledGraph.save <repro.fastpath.compiled.CompiledGraph.save>`
  and re-attached zero-copy by :meth:`CompiledGraph.mmap
  <repro.fastpath.compiled.CompiledGraph.mmap>`, plus the disk-backed
  frame store / spill frontier behind memory-budgeted enumeration;
* :mod:`~repro.fastpath.backend` — the kernel-tier resolver
  (:func:`~repro.fastpath.backend.resolve_backend`): ``python`` is the
  pure-Python oracle, ``vectorized`` the numpy packed-uint64 port
  (:mod:`~repro.fastpath.packed` / :mod:`~repro.fastpath.vectorized`),
  ``native`` the optional numba tier (:mod:`~repro.fastpath.native`)
  that degrades silently when numba is missing. All tiers return
  bit-identical cliques and stats; only the wall clock changes.

Dispatch is transparent: :func:`compile_graph` once, then hand the
compiled graph anywhere a ``SignedGraph`` is accepted —
:class:`~repro.core.bbe.MSCE`, :func:`~repro.core.mcnew.mccore_new`,
:func:`~repro.core.mcbasic.mccore_basic`,
:func:`~repro.algorithms.kcore.core_numbers`, ... Results are
bit-identical to the pure-Python path (the cross-validation suite in
``tests/test_fastpath.py`` enforces this); pass ``compile=False`` to
those entry points to force the pure path for ablations.
"""

from repro.fastpath.backend import (
    BACKENDS,
    available_backends,
    default_backend,
    resolve_backend,
)
from repro.fastpath.bitset import IntBitset, bit_count, iter_bits
from repro.fastpath.compiled import CompiledGraph, as_compiled, compile_graph, source_graph
from repro.fastpath.shared import (
    TRANSPORTS,
    SharedCompiledGraph,
    resolve_transport,
)
from repro.fastpath.storage import (
    FrameStore,
    GraphStore,
    SpillFrontier,
    mmap_compiled,
    save_compiled,
)

__all__ = [
    "CompiledGraph",
    "compile_graph",
    "as_compiled",
    "source_graph",
    "SharedCompiledGraph",
    "TRANSPORTS",
    "resolve_transport",
    "GraphStore",
    "FrameStore",
    "SpillFrontier",
    "save_compiled",
    "mmap_compiled",
    "IntBitset",
    "bit_count",
    "iter_bits",
    "BACKENDS",
    "available_backends",
    "default_backend",
    "resolve_backend",
]
