"""Integer-backed bitsets for candidate sets over compiled node indices.

A candidate set over nodes ``0..n-1`` is a single Python ``int`` whose
bit ``i`` is set iff node ``i`` is a member. All set algebra then runs
through CPython's C big-integer kernels — intersection is one ``&`` over
packed 30-bit digits instead of a hashed probe per element — which is
what makes the fastpath pruning loops cheap.

Two layers are provided:

* module functions (:func:`bit_count`, :func:`iter_bits`,
  :func:`mask_of`) operating on raw ``int`` masks — these are what the
  kernels use on hot paths;
* :class:`IntBitset`, a small mutable set-like wrapper used by the BBE
  search frames where readability matters more than the last few
  nanoseconds.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: bytes.translate table mapping each byte to its popcount, so the 3.9
#: fallback counts bits via two C-level passes (to_bytes + translate).
_POPCOUNT_TABLE = bytes(bin(byte).count("1") for byte in range(256))


def _bit_count_fallback(mask: int) -> int:
    """Chunked popcount for Python < 3.10 (no ``int.bit_count``).

    ``bin(mask).count("1")`` materialises an O(bits) string *and* scans
    it per call — quadratic-ish over a peel that popcounts ever-smaller
    masks of a huge graph. Serialising to bytes and translating each
    byte to its popcount stays in C end to end. Always defined (not just
    on 3.9) so the equality test can pin it against ``int.bit_count``.
    """
    if mask < 0:
        raise ValueError("bit_count is undefined for negative masks")
    if mask == 0:
        return 0
    return sum(
        mask.to_bytes((mask.bit_length() + 7) >> 3, "little").translate(
            _POPCOUNT_TABLE
        )
    )


try:  # int.bit_count is Python >= 3.10; CI also runs 3.9.
    (0).bit_count
except AttributeError:  # pragma: no cover - exercised only on 3.9
    bit_count = _bit_count_fallback
    bit_count.__name__ = "bit_count"

else:

    def bit_count(mask: int) -> int:
        """Return the number of set bits of *mask* (popcount)."""
        return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of *mask*, ascending.

    Uses the lowest-set-bit trick ``mask & -mask`` so the cost per
    element is O(words), independent of the highest bit.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(indices: Iterable[int]) -> int:
    """Return the mask with exactly the bits in *indices* set."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


class IntBitset:
    """A mutable set of small non-negative integers over one ``int``.

    Implements enough of the ``set`` protocol for the BBE search frames:
    membership, iteration (ascending), length, and the binary operators
    ``& | - ^`` against other bitsets or raw masks.

    >>> s = IntBitset([1, 5, 9])
    >>> 5 in s, 4 in s
    (True, False)
    >>> sorted(s & IntBitset([5, 9, 10]))
    [5, 9]
    >>> len(s)
    3
    """

    __slots__ = ("bits",)

    def __init__(self, members: Iterable[int] = (), bits: int = 0):
        self.bits = bits
        for member in members:
            self.bits |= 1 << member

    @classmethod
    def from_mask(cls, mask: int) -> "IntBitset":
        """Wrap a raw integer *mask* without copying."""
        new = cls.__new__(cls)
        new.bits = mask
        return new

    @classmethod
    def full(cls, n: int) -> "IntBitset":
        """Return the set ``{0, ..., n-1}``."""
        return cls.from_mask((1 << n) - 1)

    # -- set protocol --------------------------------------------------
    def __contains__(self, index: int) -> bool:
        return (self.bits >> index) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        return iter_bits(self.bits)

    def __len__(self) -> int:
        return bit_count(self.bits)

    def __bool__(self) -> bool:
        return self.bits != 0

    def add(self, index: int) -> None:
        """Insert *index*."""
        self.bits |= 1 << index

    def discard(self, index: int) -> None:
        """Remove *index* if present."""
        self.bits &= ~(1 << index)

    def copy(self) -> "IntBitset":
        """Return a copy (O(words))."""
        return IntBitset.from_mask(self.bits)

    def isdisjoint(self, other: "IntBitset") -> bool:
        """Return ``True`` when no index is shared."""
        return (self.bits & _mask(other)) == 0

    def issubset(self, other: "IntBitset") -> bool:
        """Return ``True`` when every member is also in *other*."""
        return (self.bits & ~_mask(other)) == 0

    def intersection_count(self, other: "IntBitset") -> int:
        """Return ``len(self & other)`` without materialising the set."""
        return bit_count(self.bits & _mask(other))

    # -- algebra -------------------------------------------------------
    def __and__(self, other) -> "IntBitset":
        return IntBitset.from_mask(self.bits & _mask(other))

    def __or__(self, other) -> "IntBitset":
        return IntBitset.from_mask(self.bits | _mask(other))

    def __sub__(self, other) -> "IntBitset":
        return IntBitset.from_mask(self.bits & ~_mask(other))

    def __xor__(self, other) -> "IntBitset":
        return IntBitset.from_mask(self.bits ^ _mask(other))

    def __eq__(self, other) -> bool:
        if isinstance(other, IntBitset):
            return self.bits == other.bits
        if isinstance(other, int):
            return self.bits == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.bits)

    def __repr__(self) -> str:
        return f"IntBitset({sorted(self)})"


def _mask(value) -> int:
    """Return the raw mask of an :class:`IntBitset` or a raw ``int``."""
    return value.bits if isinstance(value, IntBitset) else value
