"""Bitset port of the generic branch-and-bound component search.

:class:`FrameSearch` mirrors
:meth:`repro.core.bbe.MSCE._search_component` frame for frame: the same
pruning rules in the same order, the same threaded per-frame state, and
byte-identical branch selection (ties broken through the compiled
``repr``-rank permutation, the random strategy drawing from the same
sorted candidate list so the RNG stream matches). The only difference is
the data layout — candidate sets and included sets are integer bitmasks
over compiled node indices, so the model's pruning rules intersect with
one C-level AND per candidate instead of a hashed set intersection.

The *rules* themselves are pluggable: the enumerator's
:class:`~repro.models.base.SignedConstraint` supplies a mask-space
:class:`~repro.models.base.FrameOps` binding (prune bound, early
termination feasibility, include-branch budget update, per-frame state
threading), so the skeleton here is model-neutral — MSCE's (alpha, k)
rules live in :mod:`repro.models.alpha_k`, the balanced-clique rules in
:mod:`repro.models.balanced`, and both inherit the resumable frames,
offload/spill driving loops, and guard handling below unchanged.

The search is *resumable*: a frame ``(candidates, included, degrees)``
is a self-contained subproblem, :meth:`FrameSearch.expand` processes
exactly one frame, and :meth:`FrameSearch.run` drives a DFS over an
explicit list of frames with an optional per-call *budget*. When the
budget is exceeded the deepest unexplored branches — the frames at the
bottom of the DFS stack, which root the largest subtrees — are handed
to an ``offload`` callback instead of being recursed into. This is what
lets the work-stealing scheduler (:mod:`repro.core.scheduler`) re-split
a running task across worker processes: every frame is still processed
exactly once somewhere, so results and aggregated
:class:`~repro.core.bbe.SearchStats` are invariant under any
distribution of frames over workers.

:func:`decompose_root` splits a component's search at the root into
independent frames along the exclude spine: repeatedly process the root
frame, ship the include branch ``(keep, {v_i})`` as a task, and continue
on the exclude branch ``R \\ {v_i}``. With the default greedy selector
(minimum model degree inside ``R``) the branch vertices ``v_1, v_2,
...`` follow a degeneracy-style peel order, so task ``i`` is exactly the
classic degeneracy-ordered root branch: ``v_i`` plus its candidates
among later-ordered vertices, with all earlier branch vertices excluded.
A maximal clique is therefore found in exactly one task — the one rooted
at its earliest branch vertex — and merging needs no cross-task dedup.

Cliques are emitted through the enumerator's own ``_emit`` (after
mapping indices back to nodes), so dedup, auditing, top-r bookkeeping
and result caps behave identically; the cross-validation tests assert
the full result sets match the pure path exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ParameterError
from repro.fastpath.bitset import bit_count, iter_bits
from repro.limits import ResourceGuard

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bbe import MSCE, SearchStats

#: A search frame: (candidates mask, included mask, threaded state map).
Frame = Tuple[int, int, Optional[Dict[int, int]]]

#: How many bottom-of-stack frames one budget overrun may offload.
MAX_OFFLOAD = 16


class FrameSearch:
    """A configured BBE frame processor over one compiled graph.

    Binds the enumerator's knobs (constraint model, selector, maxtest)
    and the run's accumulators (``stats``, ``found``, ``size_heap``)
    once, then processes frames through :meth:`expand` / :meth:`run`.
    All state a frame needs travels *in* the frame, which is what makes
    the search resumable and re-splittable across processes.
    """

    __slots__ = (
        "msce",
        "stats",
        "found",
        "size_heap",
        "top_r",
        "guard",
        "tick",
        "interrupted",
        "incomplete",
        "compiled",
        "min_size",
        "ops",
        "select",
    )

    def __init__(
        self,
        msce: "MSCE",
        stats: "SearchStats",
        found,
        size_heap: List[int],
        top_r: Optional[int],
        guard: Optional[ResourceGuard],
        tick: Optional[Callable[[], None]] = None,
    ):
        if msce.compiled is None:
            raise ParameterError(
                "FrameSearch requires a compiled fastpath graph; "
                "construct the enumerator from a CompiledGraph"
            )
        self.msce = msce
        self.stats = stats
        self.found = found
        self.size_heap = size_heap
        self.top_r = top_r
        #: Cooperative deadline / memory ceiling (``None`` = unlimited).
        self.guard = guard
        #: Per-frame fault-injection hook (``None`` outside tests).
        self.tick = tick
        #: Trip reason once the guard fired mid-run, else ``None``.
        self.interrupted: Optional[str] = None
        #: Unexpanded ``(candidates, included)`` frames dropped on a trip.
        self.incomplete: List[Tuple[int, int]] = []
        self.compiled = msce.compiled
        #: Effective subspace size floor (user min_size folded with the
        #: model's own bound, see SignedConstraint.search_min_size).
        self.min_size = msce._search_min_size
        #: The model's mask-space frame operations.
        self.ops = msce.constraint.bind_masks(self)
        self.select = _make_selector(msce, self.ops)

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    def expand(self, frame: Frame) -> Optional[Tuple[Frame, Frame]]:
        """Process one frame; return its ``(include, exclude)`` children.

        ``None`` means the frame was a leaf — pruned, or terminated
        early with its candidate set emitted as a clique. The frame's
        full accounting (recursion, prune and maxtest counters, clique
        emission) happens here, exactly as in the sequential search, so
        aggregating per-frame work reproduces the sequential
        :class:`~repro.core.bbe.SearchStats` no matter how frames are
        distributed over tasks and processes.
        """
        msce = self.msce
        stats = self.stats
        ops = self.ops
        candidates, included, degrees = frame
        stats.recursions += 1

        flag, candidates, degrees = ops.prune_bound(candidates, included, degrees)
        if not flag:
            stats.core_prunes += 1
            return None

        size = bit_count(candidates)
        if self.min_size is not None and size < self.min_size:
            stats.topr_prunes += 1
            return None
        top_r = self.top_r
        if top_r is not None and len(self.size_heap) >= top_r and size < self.size_heap[0]:
            stats.topr_prunes += 1
            return None

        if ops.feasible(candidates, degrees):
            stats.early_terminations += 1
            stats.maxtests += 1
            members = self.compiled.nodes_from_mask(candidates)
            if msce._maxtest(msce.graph, members, msce.params):
                msce._emit(members, self.found, self.size_heap, top_r, stats)
            return None

        free = candidates & ~included
        if not free:
            # Unreachable while the model's invariants hold (R == I
            # implies the feasibility check fired); defensive for
            # ablation modes.
            return None
        branch = self.select(candidates, included, degrees)
        branch_bit = 1 << branch
        new_included = included | branch_bit

        keep, clique_pruned, negative_pruned = ops.update_budgets(
            candidates, included, new_included, branch
        )
        stats.clique_pruned_candidates += clique_pruned
        stats.negative_pruned_candidates += negative_pruned

        # Exclude branch: candidates lose the branch node.
        exclude_candidates = candidates & ~branch_bit
        exclude_degrees = ops.exclude_degrees(branch, exclude_candidates, degrees)
        include_degrees = ops.include_degrees(candidates, keep, degrees)
        return (
            (keep, new_included, include_degrees),
            (exclude_candidates, included, exclude_degrees),
        )

    # ------------------------------------------------------------------
    # Driving loops
    # ------------------------------------------------------------------
    def run(
        self,
        frames: List[Frame],
        budget: Optional[int] = None,
        offload: Optional[Callable[[Tuple[int, int]], None]] = None,
        max_offload: int = MAX_OFFLOAD,
        frontier=None,
    ) -> Optional[str]:
        """DFS over *frames* (include branch explored first).

        With a *budget*, every ``budget`` processed frames up to
        *max_offload* frames are taken **from the bottom of the stack**
        (the largest unexplored subtrees) and passed to *offload* as
        plain ``(candidates, included)`` pairs — threaded degree state
        is dropped, which changes nothing observable: the receiving
        frame recomputes it, producing identical results and counters.
        The offload points depend only on the processed-frame count,
        never on wall-clock, so the set of frames a task spawns is a
        pure function of the task itself — the foundation of the
        parallel enumerator's determinism guarantee.

        With a *frontier* (a
        :class:`~repro.fastpath.storage.SpillFrontier`), the stack is
        kept bounded in RAM: whenever it crosses the frontier's
        high-water mark the bottom-of-stack frames — the same largest
        unexplored subtrees offload would take — are spilled to its
        disk-backed :class:`~repro.fastpath.storage.FrameStore` (tracked
        degrees dropped, recomputed on reload) and pulled back only when
        the in-memory stack drains. Spill timing may consult wall-clock
        RSS because it only decides *where frames wait*, never which
        frames are expanded: cliques and stats stay bit-identical to an
        unbounded in-memory run. Don't combine *frontier* with
        *offload*: spilling reorders expansion, which would perturb the
        offload spawn sequence that the retry-credit replay depends on
        (the budgeted inline paths never do).

        When the :class:`~repro.limits.ResourceGuard` trips (deadline or
        memory ceiling) the search stops *cooperatively*: the remaining
        stack — including any frames still parked in the *frontier* —
        is recorded in :attr:`incomplete` as plain
        ``(candidates, included)`` pairs, :attr:`interrupted` latches
        the reason, and the reason is returned — work already done
        stays emitted and counted, so callers return a partial result
        instead of discarding completed subtrees. Returns ``None`` when
        the frames ran to exhaustion. Result caps still raise the
        enumerator's internal ``_StopSearch``, exactly like the pure
        search.
        """
        guard = self.guard
        tick = self.tick
        stack = list(frames)
        processed = 0
        while True:
            if not stack and frontier is not None:
                reloaded = frontier.refill()
                if reloaded:
                    stack.extend(
                        (candidates, included, None)
                        for candidates, included in reloaded
                    )
            if not stack:
                break
            if tick is not None:
                tick()
            if guard is not None:
                reason = guard.check()
                if reason is not None:
                    self.interrupted = reason
                    self.incomplete.extend(
                        (candidates, included) for candidates, included, _d in stack
                    )
                    del stack[:]
                    if frontier is not None:
                        self.incomplete.extend(frontier.drain())
                    from repro.obs import runtime as obs

                    obs.journal_event(
                        "frames_abandoned",
                        reason=reason,
                        frames=len(self.incomplete),
                    )
                    return reason
            frame = stack.pop()
            processed += 1
            children = self.expand(frame)
            if children is not None:
                include, exclude = children
                stack.append(exclude)
                stack.append(include)
            if frontier is not None and frontier.should_spill(len(stack)):
                take = len(stack) - frontier.keep
                if take > 0:
                    frontier.spill(
                        (candidates, included)
                        for candidates, included, _degrees in stack[:take]
                    )
                    del stack[:take]
            if (
                budget is not None
                and offload is not None
                and processed >= budget
                and len(stack) > 1
            ):
                take = min(max_offload, len(stack) - 1)
                for candidates, included, _degrees in stack[:take]:
                    offload((candidates, included))
                del stack[:take]
                processed = 0
        return None


def search_component_fast(
    msce: "MSCE",
    component_mask: int,
    stats: "SearchStats",
    found,
    size_heap: List[int],
    top_r: Optional[int],
    guard: Optional[ResourceGuard],
    seed_mask: int = 0,
) -> Optional[Tuple[str, int]]:
    """Run the BBE search over one component given as an index bitmask.

    Thin wrapper over :class:`FrameSearch` kept for the sequential
    entry points in :mod:`repro.core.bbe`. Returns ``None`` on
    exhaustion, or ``(reason, dropped_frames)`` when the *guard*
    tripped and the component's remaining subtrees were abandoned.
    """
    searcher = FrameSearch(msce, stats, found, size_heap, top_r, guard)
    reason = searcher.run([(component_mask, seed_mask, None)])
    if reason is None:
        return None
    return reason, len(searcher.incomplete)


def decompose_root(
    msce: "MSCE",
    component_mask: int,
    stats: "SearchStats",
    found,
    size_heap: List[int],
    max_tasks: int,
    seed_mask: int = 0,
    guard: Optional[ResourceGuard] = None,
    top_r: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Split one component's search into up to *max_tasks* root frames.

    Walks the exclude spine of the component's search tree: each step
    processes the current root frame exactly as :meth:`FrameSearch.expand`
    would (pruning counters, early terminations and any emitted cliques
    land in the caller's *stats*/*found*), appends the include branch
    ``(keep, included | {v_i})`` to the task list, and continues on the
    exclude branch. The spine's branch vertices follow the selector's
    order — a degeneracy-style minimum-degree peel for the default
    greedy strategy — so each task is the root branch of one vertex:
    the vertex itself plus its surviving later-ordered neighbours, with
    every earlier branch vertex excluded. The subtree sets are disjoint
    and their union is exactly the sequential search tree, which makes
    the task results a duplicate-free partition of the component's
    maximal cliques.

    When the cap is reached the unprocessed residual spine frame becomes
    the final task. A tripped *guard* short-circuits the spine walk the
    same way — the residual frame is shipped whole so no subtree is
    lost, and the caller's deadline handling decides whether it still
    runs. Returns ``(candidates, included)`` mask pairs.

    With *top_r*, the spine walk itself prunes against the caller's
    (possibly warm-started) *size_heap*: a spine frame cut by the size
    bound roots only subtrees whose cliques are all smaller than the
    current cutoff, so ending the walk there drops no top-r answer —
    seeded decompositions produce a prefix of the unseeded task list.
    """
    searcher = FrameSearch(msce, stats, found, size_heap, top_r, None)
    tasks: List[Tuple[int, int]] = []
    frame: Frame = (component_mask, seed_mask, None)
    while True:
        if len(tasks) >= max_tasks - 1 or (
            guard is not None and guard.check() is not None
        ):
            tasks.append((frame[0], frame[1]))
            break
        children = searcher.expand(frame)
        if children is None:
            break
        include, exclude = children
        tasks.append((include[0], include[1]))
        frame = exclude
    return tasks


def _make_selector(msce: "MSCE", ops):
    """Index-space ports of the branch-node selectors in bbe.py.

    The greedy score comes from the model's
    :meth:`~repro.models.base.FrameOps.branch_degree` (MSCE: tracked
    positive degree inside ``R``; balanced: sign-blind degree).
    Tie-breaking goes through the compiled ``repr``-rank permutation so
    the chosen node is exactly the one the pure selector would pick.
    With ``frame_rng`` the random strategy hashes the frame's free
    candidates (by node ``repr``, so the draw is independent of the
    compiled index space) instead of consuming a sequential RNG stream;
    see :func:`repro.core.bbe.frame_draw`.
    """
    repr_rank = msce.compiled.repr_rank

    def greedy(candidates: int, included: int, degrees: Optional[Dict[int, int]]) -> int:
        best = -1
        best_key: Optional[Tuple[int, int]] = None
        for i in iter_bits(candidates & ~included):
            key = (ops.branch_degree(i, candidates, degrees), repr_rank[i])
            if best_key is None or key < best_key:
                best_key = key
                best = i
        return best

    def first(candidates: int, included: int, degrees) -> int:
        return min(iter_bits(candidates & ~included), key=repr_rank.__getitem__)

    def randomized(candidates: int, included: int, degrees) -> int:
        free = sorted(iter_bits(candidates & ~included), key=repr_rank.__getitem__)
        if msce.frame_rng:
            from repro.core.bbe import frame_draw

            nodes = msce.compiled.nodes
            return free[frame_draw(msce.seed, [repr(nodes[i]) for i in free])]
        return msce._rng.choice(free)

    selectors = {"greedy": greedy, "random": randomized, "first": first}
    try:
        return selectors[msce.selection]
    except KeyError:
        raise ParameterError(
            f"unknown selection strategy {msce.selection!r}; "
            f"expected one of {sorted(selectors)}"
        ) from None
