"""Bitset port of MSCE's branch-and-bound component search.

:func:`search_component_fast` mirrors
:meth:`repro.core.bbe.MSCE._search_component` frame for frame: the same
pruning rules in the same order, the same tracked-degree threading, and
byte-identical branch selection (ties broken through the compiled
``repr``-rank permutation, the random strategy drawing from the same
sorted candidate list so the RNG stream matches). The only difference is
the data layout — candidate sets and included sets are integer bitmasks
over compiled node indices, so the clique- and negative-constraint
pruning loops intersect with one C-level AND per candidate instead of a
hashed set intersection.

Cliques are emitted through the enumerator's own ``_emit`` (after
mapping indices back to nodes), so dedup, auditing, top-r bookkeeping
and result caps behave identically; the cross-validation tests assert
the full result sets match the pure path exactly.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.exceptions import ParameterError
from repro.fastpath.bitset import bit_count, iter_bits
from repro.fastpath.kernels import icore_tracked_fast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bbe import MSCE, SearchStats


def search_component_fast(
    msce: "MSCE",
    component_mask: int,
    stats: "SearchStats",
    found,
    size_heap: List[int],
    top_r: Optional[int],
    deadline: Optional[float],
    seed_mask: int = 0,
) -> None:
    """Run the BBE search over one component given as an index bitmask.

    Raises the enumerator's internal ``_StopSearch`` on timeout or
    result caps, exactly like the pure search.
    """
    from repro.core.bbe import _StopSearch

    compiled = msce.compiled
    params = msce.params
    threshold = params.positive_threshold
    budget = params.k
    pos_masks = compiled.masks("positive")
    neg_masks = compiled.masks("negative")
    adj_masks = compiled.masks("all")
    select = _make_selector(msce, pos_masks)

    def is_valid_clique(members: int, degrees: Optional[Dict[int, int]]) -> bool:
        # Mirror of the pure inline Definition-1 check (see bbe.py).
        if not members:
            return False
        need = bit_count(members) - 1
        if degrees is not None:
            for i in iter_bits(members):
                positive = degrees[i]
                if positive < threshold:
                    return False
                expected_negative = need - positive
                if expected_negative < 0 or expected_negative > budget:
                    return False
                if bit_count(neg_masks[i] & members) != expected_negative:
                    return False
            return True
        for i in iter_bits(members):
            if bit_count(adj_masks[i] & members) < need:
                return False
            if bit_count(neg_masks[i] & members) > budget:
                return False
            if threshold and bit_count(pos_masks[i] & members) < threshold:
                return False
        return True

    # Frames are (candidates_mask, included_mask, degrees) exactly like
    # the pure search's (candidates, included, degrees); include branch
    # pushed last so it is explored first.
    Frame = Tuple[int, int, Optional[Dict[int, int]]]
    stack: List[Frame] = [(component_mask, seed_mask, None)]

    while stack:
        if deadline is not None and time.perf_counter() > deadline:
            raise _StopSearch("timeout")
        candidates, included, degrees = stack.pop()
        stats.recursions += 1

        if msce.core_pruning:
            flag, candidates, degrees = icore_tracked_fast(
                compiled, included, threshold, candidates, degrees, sign="positive"
            )
            if not flag:
                stats.core_prunes += 1
                continue

        size = bit_count(candidates)
        if msce.min_size is not None and size < msce.min_size:
            stats.topr_prunes += 1
            continue
        if top_r is not None and len(size_heap) >= top_r and size < size_heap[0]:
            stats.topr_prunes += 1
            continue

        if is_valid_clique(candidates, degrees):
            stats.early_terminations += 1
            stats.maxtests += 1
            members = compiled.nodes_from_mask(candidates)
            if msce._maxtest(msce.graph, members, params):
                msce._emit(members, found, size_heap, top_r, stats)
            continue

        free = candidates & ~included
        if not free:
            # Unreachable with core pruning on; defensive for ablations.
            continue
        branch = select(candidates, included, degrees)
        branch_bit = 1 << branch
        new_included = included | branch_bit

        keep = new_included
        adjacency = adj_masks[branch]
        negative_inside = {
            i: bit_count(neg_masks[i] & new_included) for i in iter_bits(new_included)
        }
        for i in iter_bits(candidates & ~new_included):
            if msce.clique_pruning and not (adjacency >> i) & 1:
                stats.clique_pruned_candidates += 1
                continue
            if msce.negative_pruning:
                negatives = neg_masks[i] & new_included
                if bit_count(negatives) > budget or any(
                    negative_inside[member] + 1 > budget for member in iter_bits(negatives)
                ):
                    stats.negative_pruned_candidates += 1
                    continue
            keep |= 1 << i

        # Exclude branch: candidates lose the branch node.
        exclude_candidates = candidates & ~branch_bit
        if degrees is not None:
            exclude_degrees: Optional[Dict[int, int]] = dict(degrees)
            exclude_degrees.pop(branch, None)
            for i in iter_bits(pos_masks[branch] & exclude_candidates):
                exclude_degrees[i] -= 1
        else:
            exclude_degrees = None
        stack.append((exclude_candidates, included, exclude_degrees))

        # Include branch: same decremental-vs-recompute policy as the
        # pure search (recompute when more than a third was pruned).
        include_degrees: Optional[Dict[int, int]] = None
        if degrees is not None:
            removed = candidates & ~keep
            if 3 * bit_count(removed) <= bit_count(keep):
                include_degrees = dict(degrees)
                for i in iter_bits(removed):
                    include_degrees.pop(i, None)
                for i in iter_bits(removed):
                    for j in iter_bits(pos_masks[i] & keep):
                        include_degrees[j] -= 1
        stack.append((keep, new_included, include_degrees))


def _make_selector(msce: "MSCE", pos_masks: List[int]):
    """Index-space ports of the branch-node selectors in bbe.py.

    Tie-breaking goes through the compiled ``repr``-rank permutation so
    the chosen node is exactly the one the pure selector would pick.
    """
    repr_rank = msce.compiled.repr_rank

    def greedy(candidates: int, included: int, degrees: Optional[Dict[int, int]]) -> int:
        best = -1
        best_key: Optional[Tuple[int, int]] = None
        for i in iter_bits(candidates & ~included):
            degree = degrees[i] if degrees is not None else bit_count(pos_masks[i] & candidates)
            key = (degree, repr_rank[i])
            if best_key is None or key < best_key:
                best_key = key
                best = i
        return best

    def first(candidates: int, included: int, degrees) -> int:
        return min(iter_bits(candidates & ~included), key=repr_rank.__getitem__)

    def randomized(candidates: int, included: int, degrees) -> int:
        free = sorted(iter_bits(candidates & ~included), key=repr_rank.__getitem__)
        return msce._rng.choice(free)

    selectors = {"greedy": greedy, "random": randomized, "first": first}
    try:
        return selectors[msce.selection]
    except KeyError:
        raise ParameterError(
            f"unknown selection strategy {msce.selection!r}; "
            f"expected one of {sorted(selectors)}"
        ) from None
