"""Array/bitset ports of the pipeline's hot kernels.

Each kernel here is a semantics-preserving port of a pure-Python
counterpart (named in each docstring); the cross-validation suite in
``tests/test_fastpath.py`` asserts the outputs are identical across the
generator suite. Two data layouts are used:

* **CSR scans** (core decomposition, triangle counting, components):
  flat integer arrays, no per-probe hashing, O(m) extra memory;
* **bitmask peeling** (ICore, MCNew, MCBasic, the BBE helpers): per-node
  adjacency bitmasks from :meth:`CompiledGraph.masks`, so a candidate
  set is one big integer and "degree within the set" is a single
  C-level AND plus popcount.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.exceptions import ParameterError
from repro.fastpath.backend import (
    BACKEND_NATIVE,
    BACKEND_PYTHON,
    BACKEND_VECTORIZED,
    resolve_backend,
)
from repro.fastpath.bitset import bit_count, iter_bits
from repro.fastpath.compiled import CompiledGraph
from repro.graphs.signed_graph import Node

if TYPE_CHECKING:  # imported lazily at runtime to keep repro.core acyclic
    from repro.core.params import AlphaK

# ----------------------------------------------------------------------
# Core decomposition (port of repro.algorithms.kcore.core_numbers)
# ----------------------------------------------------------------------


def core_numbers_csr(n: int, xadj, adj) -> Tuple[List[int], List[int]]:
    """Matula–Beck bucket peeling over a CSR pair.

    Returns ``(core, order)``: the core number of every index plus the
    peel order (a degeneracy order, smallest remaining degree first).
    This is the flat-array port of the dict/set bucket implementation in
    :func:`repro.algorithms.kcore.core_numbers`; the swap-based bucket
    queue does O(1) work per peeled edge with zero hashing.
    """
    if n == 0:
        return [], []
    degree = [xadj[i + 1] - xadj[i] for i in range(n)]
    max_degree = max(degree)
    # bucket_start[d] = first slot of the nodes of current degree d in `vert`.
    bucket_start = [0] * (max_degree + 2)
    for d in degree:
        bucket_start[d + 1] += 1
    for d in range(1, max_degree + 2):
        bucket_start[d] += bucket_start[d - 1]
    vert = [0] * n
    position = [0] * n
    fill = bucket_start[:-1]
    for v in range(n):
        slot = fill[degree[v]]
        vert[slot] = v
        position[v] = slot
        fill[degree[v]] += 1

    core = degree[:]
    for slot in range(n):
        v = vert[slot]
        dv = core[v]
        for t in range(xadj[v], xadj[v + 1]):
            u = adj[t]
            du = core[u]
            if du > dv:
                # Swap u with the first node of its bucket, shrink the
                # bucket from the left, and decrement u's degree.
                pu = position[u]
                pw = bucket_start[du]
                w = vert[pw]
                if u != w:
                    vert[pu] = w
                    position[w] = pu
                    vert[pw] = u
                    position[u] = pw
                bucket_start[du] += 1
                core[u] = du - 1
    return core, vert


def core_numbers_fast(
    compiled: CompiledGraph, sign: str = "all", backend: Optional[str] = None
) -> Dict[Node, int]:
    """Fastpath port of :func:`repro.algorithms.kcore.core_numbers`.

    *backend* selects the kernel tier (see
    :func:`repro.fastpath.backend.resolve_backend`); every tier returns
    the identical core-number dict.
    """
    resolved = resolve_backend(backend)
    if resolved == BACKEND_VECTORIZED:
        from repro.fastpath import vectorized

        return vectorized.core_numbers(compiled, sign)
    xadj, adj = compiled.csr(sign)
    if resolved == BACKEND_NATIVE:
        from repro.fastpath import native

        core, _order = native.core_numbers_csr(compiled.n, xadj, adj)
    else:
        core, _order = core_numbers_csr(compiled.n, xadj, adj)
    nodes = compiled.nodes
    return {nodes[i]: core[i] for i in range(compiled.n)}


# ----------------------------------------------------------------------
# ICore (port of repro.algorithms.kcore.icore / icore_tracked)
# ----------------------------------------------------------------------


def icore_fast(
    compiled: CompiledGraph,
    fixed_mask: int,
    tau: int,
    within_mask: Optional[int] = None,
    sign: str = "all",
    backend: Optional[str] = None,
) -> Tuple[bool, int]:
    """Bitmask port of Algorithm 1 (:func:`repro.algorithms.kcore.icore`).

    *fixed_mask* plays the paper's ``I``: the moment peeling would drop
    a fixed node the call fails with ``(False, 0)``. Returns the maximal
    tau-core of the *sign*-class subgraph induced by *within_mask* (the
    whole graph when ``None``) otherwise. The maximal tau-core is
    unique, so the wave-peeled vectorized/native tiers return the
    identical ``(flag, mask)``.
    """
    resolved = resolve_backend(backend)
    if resolved != BACKEND_PYTHON:
        from repro.fastpath import vectorized

        return vectorized.icore(compiled, fixed_mask, tau, within_mask, sign)
    if tau < 0:
        raise ParameterError(f"tau must be non-negative, got {tau}")
    masks = compiled.masks(sign)
    members = compiled.full_mask if within_mask is None else within_mask
    if fixed_mask & ~members:
        return False, 0

    degrees: Dict[int, int] = {}
    queue: deque = deque()
    queued = 0
    for i in iter_bits(members):
        d = bit_count(masks[i] & members)
        degrees[i] = d
        if d < tau:
            if (fixed_mask >> i) & 1:
                return False, 0
            queue.append(i)
            queued |= 1 << i

    while queue:
        i = queue.popleft()
        members &= ~(1 << i)
        for j in iter_bits(masks[i] & members & ~queued):
            d = degrees[j] - 1
            degrees[j] = d
            if d < tau:
                if (fixed_mask >> j) & 1:
                    return False, 0
                queue.append(j)
                queued |= 1 << j

    if not members:
        return False, 0
    return True, members


def icore_tracked_fast(
    compiled: CompiledGraph,
    fixed_mask: int,
    tau: int,
    members: int,
    degrees: Optional[Dict[int, int]] = None,
    sign: str = "positive",
) -> Tuple[bool, int, Dict[int, int]]:
    """Bitmask port of :func:`repro.algorithms.kcore.icore_tracked`.

    *degrees* maps surviving indices to their within-*members* degree
    for the sign class and is updated decrementally, exactly like the
    pure version, so BBE frames can thread it through children. On
    failure the partially-peeled state is returned for the caller to
    discard.
    """
    masks = compiled.masks(sign)
    if degrees is None:
        degrees = {i: bit_count(masks[i] & members) for i in iter_bits(members)}
    queue: deque = deque()
    queued = 0
    for i, d in degrees.items():
        if d < tau:
            if (fixed_mask >> i) & 1:
                return False, members, degrees
            queue.append(i)
            queued |= 1 << i
    while queue:
        i = queue.popleft()
        members &= ~(1 << i)
        del degrees[i]
        for j in iter_bits(masks[i] & members & ~queued):
            d = degrees[j] - 1
            degrees[j] = d
            if d < tau:
                if (fixed_mask >> j) & 1:
                    return False, members, degrees
                queue.append(j)
                queued |= 1 << j
    if not members:
        return False, members, degrees
    return True, members, degrees


def k_core_fast(
    compiled: CompiledGraph,
    k: int,
    within_mask: Optional[int] = None,
    sign: str = "all",
    backend: Optional[str] = None,
) -> int:
    """Bitmask port of :func:`repro.algorithms.kcore.k_core` (mask result)."""
    _flag, mask = icore_fast(compiled, 0, k, within_mask, sign, backend=backend)
    return mask


def mask_has_core(masks: List[int], member_mask: int, tau: int) -> bool:
    """Does the subgraph induced by *member_mask* contain a tau-core?

    The primitive behind MCBasic's ego-network test, over adjacency
    bitmasks *masks* (combined sign class for ego networks).
    """
    if tau <= 0:
        return member_mask != 0
    members = member_mask
    degrees: Dict[int, int] = {}
    stack: List[int] = []
    for i in iter_bits(members):
        d = bit_count(masks[i] & members)
        degrees[i] = d
        if d < tau:
            stack.append(i)
    while stack:
        i = stack.pop()
        if not (members >> i) & 1:
            continue
        members &= ~(1 << i)
        for j in iter_bits(masks[i] & members):
            d = degrees[j] - 1
            degrees[j] = d
            if d == tau - 1:  # crossed the threshold just now
                stack.append(j)
    return members != 0


# ----------------------------------------------------------------------
# MCCore (ports of repro.core.mcbasic / repro.core.mcnew)
# ----------------------------------------------------------------------


def mccore_basic_fast(compiled: CompiledGraph, params: AlphaK) -> Set[Node]:
    """Bitmask port of Algorithm 2 (:func:`repro.core.mcbasic.mccore_basic`)."""
    return compiled.nodes_from_mask(mccore_basic_mask(compiled, params))


def mccore_basic_mask(
    compiled: CompiledGraph, params: AlphaK, backend: Optional[str] = None
) -> int:
    """Mask-returning core of :func:`mccore_basic_fast`.

    MCBasic is the paper's superseded baseline (kept for ablations), so
    only its initial positive-core peel dispatches on *backend*; the
    per-node ego-core probes always run the tier-0 loop.
    """
    threshold = params.positive_threshold
    if threshold == 0:
        return compiled.full_mask
    core_order = threshold - 1

    flag, alive = icore_fast(compiled, 0, threshold, None, sign="positive", backend=backend)
    if not flag:
        return 0
    pos_masks = compiled.masks("positive")
    adj_masks = compiled.masks("all")

    def ego_has_core(i: int, alive_mask: int) -> bool:
        ego = pos_masks[i] & alive_mask
        if bit_count(ego) <= core_order:
            return False
        return mask_has_core(adj_masks, ego, core_order)

    positive_degree = {i: bit_count(pos_masks[i] & alive) for i in iter_bits(alive)}
    queue: deque = deque()
    dead = 0
    for i in iter_bits(alive):
        if not ego_has_core(i, alive):
            queue.append(i)
            dead |= 1 << i

    alive &= ~dead
    while queue:
        i = queue.popleft()
        for j in iter_bits(pos_masks[i] & alive):
            positive_degree[j] -= 1
            if positive_degree[j] < threshold:
                alive &= ~(1 << j)
                queue.append(j)
            elif not ego_has_core(j, alive):
                alive &= ~(1 << j)
                queue.append(j)
    return alive


def mccore_new_fast(compiled: CompiledGraph, params: AlphaK) -> Set[Node]:
    """Bitmask port of Algorithm 3 (:func:`repro.core.mcnew.mccore_new`).

    The surviving ego of every node is one bitmask, so the Lemma-4
    delta updates ("ego members adjacent to the removed node") are a
    single AND against the combined adjacency mask.
    """
    return compiled.nodes_from_mask(mccore_new_mask(compiled, params))


def mccore_new_mask(
    compiled: CompiledGraph, params: AlphaK, backend: Optional[str] = None
) -> int:
    """Mask-returning core of :func:`mccore_new_fast`.

    The MC-core is the greatest fixpoint of a monotone constraint
    system, so the vectorized wave peel
    (:func:`repro.fastpath.vectorized.mccore_new_mask`) returns the
    identical mask despite removing violators in a different order.
    """
    resolved = resolve_backend(backend)
    if resolved != BACKEND_PYTHON:
        from repro.fastpath import vectorized

        return vectorized.mccore_new_mask(compiled, params)
    threshold = params.positive_threshold
    if threshold == 0:
        return compiled.full_mask
    tau = threshold - 1

    flag, alive = icore_fast(compiled, 0, threshold, None, sign="positive", backend=resolved)
    if not flag:
        return 0
    pos_masks = compiled.masks("positive")
    adj_masks = compiled.masks("all")

    out_pos: Dict[int, int] = {u: pos_masks[u] & alive for u in iter_bits(alive)}
    positive_degree: Dict[int, int] = {u: bit_count(out_pos[u]) for u in out_pos}
    delta: Dict[Tuple[int, int], int] = {}

    edge_queue: deque = deque()
    queued: Set[Tuple[int, int]] = set()

    for u in out_pos:
        ego = out_pos[u]
        for v in iter_bits(ego):
            d = bit_count(ego & adj_masks[v])
            delta[(u, v)] = d
            if d < tau:
                edge_queue.append((u, v))
                queued.add((u, v))

    alive_ref = [alive]  # single-cell box so the helper can update it

    def delete_node(node: int, node_worklist: List[int]) -> None:
        alive_ref[0] &= ~(1 << node)
        for w in iter_bits(out_pos[node]):
            delta.pop((node, w), None)
            queued.discard((node, w))
        out_pos[node] = 0
        for w in iter_bits(pos_masks[node] & alive_ref[0]):
            if not (out_pos[w] >> node) & 1:
                continue
            out_pos[w] &= ~(1 << node)
            delta.pop((w, node), None)
            queued.discard((w, node))
            positive_degree[w] -= 1
            for x in iter_bits(out_pos[w] & adj_masks[node]):
                key = (w, x)
                delta[key] -= 1
                if delta[key] < tau and key not in queued:
                    edge_queue.append(key)
                    queued.add(key)
            if positive_degree[w] <= tau:
                node_worklist.append(w)

    while edge_queue:
        u, v = edge_queue.popleft()
        if (u, v) not in queued:
            continue
        queued.discard((u, v))
        if not (alive_ref[0] >> u) & 1 or not (out_pos.get(u, 0) >> v) & 1:
            continue
        out_pos[u] &= ~(1 << v)
        delta.pop((u, v), None)
        for w in iter_bits(out_pos[u] & adj_masks[v]):
            key = (u, w)
            delta[key] -= 1
            if delta[key] < tau and key not in queued:
                edge_queue.append(key)
                queued.add(key)
        positive_degree[u] -= 1
        if positive_degree[u] <= tau:
            worklist: List[int] = [u]
            while worklist:
                candidate = worklist.pop()
                if (alive_ref[0] >> candidate) & 1:
                    delete_node(candidate, worklist)

    return alive_ref[0]


def reduce_fast(
    compiled: CompiledGraph,
    params: AlphaK,
    method: str = "mcnew",
    backend: Optional[str] = None,
) -> Set[Node]:
    """Fastpath port of :func:`repro.core.reduction.reduce_graph`."""
    return compiled.nodes_from_mask(reduce_mask(compiled, params, method, backend=backend))


def reduce_mask(
    compiled: CompiledGraph,
    params: AlphaK,
    method: str = "mcnew",
    backend: Optional[str] = None,
) -> int:
    """Mask-returning core of :func:`reduce_fast`.

    Resolves *backend* once and threads the concrete tier into every
    sub-kernel, so a reduction never mixes tiers mid-flight; the
    resolved name is recorded on the ``reduce`` trace span.
    """
    from repro.obs import runtime as obs

    resolved = resolve_backend(backend)
    with obs.span("reduce", method=method, backend=resolved):
        if method == "none":
            return compiled.full_mask
        if method == "positive-core":
            if params.positive_threshold == 0:
                return compiled.full_mask
            _flag, mask = icore_fast(
                compiled, 0, params.positive_threshold, None, sign="positive", backend=resolved
            )
            return mask
        if method == "mcbasic":
            with obs.span("mccore", method=method):
                return mccore_basic_mask(compiled, params, backend=resolved)
        if method == "mcnew":
            with obs.span("mccore", method=method):
                return mccore_new_mask(compiled, params, backend=resolved)
        raise ParameterError(
            "unknown reduction method "
            f"{method!r}; expected one of ['mcbasic', 'mcnew', 'none', 'positive-core']"
        )


# ----------------------------------------------------------------------
# Triangles (ports of repro.algorithms.triangles)
# ----------------------------------------------------------------------


def triangle_count_fast(
    compiled: CompiledGraph, sign: str = "all", backend: Optional[str] = None
) -> int:
    """Count triangles via degeneracy orientation (forward algorithm).

    Port of :func:`repro.algorithms.triangles.triangle_count`: every
    edge is directed from earlier to later in a degeneracy order, so
    each triangle is counted exactly once and each out-neighbourhood has
    at most *degeneracy* entries. The inner membership probe is a flat
    bytearray flag, not a hashed set; the vectorized tier replaces the
    wedge scan with batched popcounts over the same orientation.
    """
    if resolve_backend(backend) != BACKEND_PYTHON:
        from repro.fastpath import vectorized

        return vectorized.triangle_count(compiled, sign)
    _order, rows = compiled.oriented(sign)
    mark = bytearray(compiled.n)
    total = 0
    for u in range(compiled.n):
        row = rows[u]
        if len(row) < 2:
            continue
        for v in row:
            mark[v] = 1
        for v in row:
            for w in rows[v]:
                total += mark[w]
        for v in row:
            mark[v] = 0
    return total


def ego_triangle_degrees_fast(
    compiled: CompiledGraph,
    within: Optional[Set[Node]] = None,
    backend: Optional[str] = None,
) -> Dict[Tuple[Node, Node], int]:
    """Bitmask port of :func:`repro.algorithms.triangles.all_ego_triangle_degrees`.

    ``delta(u, v)`` (Definition 5 / Lemma 4) is the degree of ``v``
    inside ``u``'s ego network: one AND + popcount per directed positive
    edge — or one batched popcount over *all* such edges on the
    vectorized tier.
    """
    if resolve_backend(backend) != BACKEND_PYTHON:
        from repro.fastpath import vectorized

        return vectorized.ego_triangle_degrees(compiled, within)
    pos_masks = compiled.masks("positive")
    adj_masks = compiled.masks("all")
    member_mask = (
        compiled.full_mask if within is None else compiled.mask_from_nodes(within)
    )
    nodes = compiled.nodes
    deltas: Dict[Tuple[Node, Node], int] = {}
    for u in iter_bits(member_mask):
        ego = pos_masks[u] & member_mask
        node_u = nodes[u]
        for v in iter_bits(ego):
            deltas[(node_u, nodes[v])] = bit_count(ego & adj_masks[v])
    return deltas


# ----------------------------------------------------------------------
# Connected components over CSR
# ----------------------------------------------------------------------


def component_masks(
    compiled: CompiledGraph, within_mask: Optional[int] = None, sign: str = "all"
) -> List[int]:
    """Return the connected components of the induced subgraph as bitmasks.

    CSR-BFS port of :func:`repro.graphs.components.connected_components`
    restricted to *within_mask* (sign-blind by default, matching the
    reduction pipeline's component semantics).
    """
    xadj, adj = compiled.csr(sign)
    unseen = compiled.full_mask if within_mask is None else within_mask
    components: List[int] = []
    while unseen:
        start = (unseen & -unseen).bit_length() - 1
        component = 1 << start
        unseen &= ~component
        frontier = [start]
        while frontier:
            next_frontier: List[int] = []
            for i in frontier:
                for t in range(xadj[i], xadj[i + 1]):
                    j = adj[t]
                    if (unseen >> j) & 1:
                        unseen &= ~(1 << j)
                        component |= 1 << j
                        next_frontier.append(j)
            frontier = next_frontier
        components.append(component)
    return components
