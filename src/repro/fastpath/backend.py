"""Kernel-tier selection for the fastpath: python / vectorized / native.

The fastpath kernels come in three tiers sharing one contract
(bit-identical results, see ``tests/test_fastpath.py``):

* ``"python"`` — the original pure-Python kernels over CSR lists and
  big-int bitmasks (:mod:`repro.fastpath.kernels`). Always available;
  the oracle the other tiers are validated against.
* ``"vectorized"`` — numpy ports over packed ``uint64`` bitset arrays
  (:mod:`repro.fastpath.vectorized` / :mod:`repro.fastpath.packed`).
  Requires numpy; silently degrades to ``"python"`` without it.
* ``"native"`` — an optional numba backend
  (:mod:`repro.fastpath.native`) for the two loops that resist
  vectorization: the sequential bucket-queue core peel and the BBE
  inner branch step. Everything else runs the vectorized kernels.
  Silently degrades to ``"vectorized"`` when numba is absent or its
  self-check fails.

Selection flows through one resolver, :func:`resolve_backend`:
an explicit ``backend=`` argument (the ``compile=``-style kwarg on
:class:`~repro.core.bbe.MSCE`, :func:`~repro.core.parallel.enumerate_parallel`,
the serving engine, the kernel entry points) wins over the
``REPRO_BACKEND`` environment variable, which wins over the default
(``"vectorized"`` when numpy is importable, ``"python"`` otherwise).
The resolved name is what parent processes ship to workers, so a
parallel run always uses one consistent tier regardless of worker-side
environment.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.exceptions import ParameterError

#: The three tier names, in ascending order of expected speed.
BACKEND_PYTHON = "python"
BACKEND_VECTORIZED = "vectorized"
BACKEND_NATIVE = "native"

BACKENDS: Tuple[str, ...] = (BACKEND_PYTHON, BACKEND_VECTORIZED, BACKEND_NATIVE)

#: Environment variable naming the default backend for the process.
BACKEND_ENV = "REPRO_BACKEND"

try:  # numpy is an optional accelerator, never a hard dependency.
    import numpy as _np  # noqa: F401

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - the CI image ships numpy
    HAS_NUMPY = False


def _probe_numba() -> bool:
    """Import-guard numba; a broken install counts as absent."""
    try:
        import numba  # noqa: F401

        return True
    except Exception:  # pragma: no cover - exercised on the no-numba CI leg
        return False


HAS_NUMBA = _probe_numba()


def default_backend() -> str:
    """The process default: vectorized when numpy is importable."""
    return BACKEND_VECTORIZED if HAS_NUMPY else BACKEND_PYTHON


def available_backends() -> Tuple[str, ...]:
    """The tiers that would actually run (after degradation) here."""
    tiers = [BACKEND_PYTHON]
    if HAS_NUMPY:
        tiers.append(BACKEND_VECTORIZED)
        if HAS_NUMBA:
            tiers.append(BACKEND_NATIVE)
    return tuple(tiers)


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend request to the tier that will actually run.

    Precedence: explicit *backend* argument > ``REPRO_BACKEND`` env >
    :func:`default_backend`. Unknown names raise
    :class:`~repro.exceptions.ParameterError`; a tier whose optional
    dependency is missing degrades silently down the ladder
    (``native`` -> ``vectorized`` -> ``python``), so requesting
    ``"native"`` is always safe.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "").strip() or default_backend()
    if backend not in BACKENDS:
        raise ParameterError(
            f"unknown kernel backend {backend!r}; expected one of {list(BACKENDS)}"
        )
    if backend == BACKEND_NATIVE:
        if not (HAS_NUMPY and HAS_NUMBA):
            backend = BACKEND_VECTORIZED
        else:
            from repro.fastpath import native

            if not native.self_check():  # pragma: no cover - defensive
                backend = BACKEND_VECTORIZED
    if backend == BACKEND_VECTORIZED and not HAS_NUMPY:
        backend = BACKEND_PYTHON
    return backend
