"""Packed-``uint64`` bitset algebra for the vectorized kernel tier.

The pure-Python fastpath stores node sets as Python big-int bitmasks
(bit *i* = node *i*). This module provides the numpy counterpart: a
node set over *n* nodes becomes a ``(n_words,)`` ``uint64`` array with
``n_words = ceil(n / 64)``; bit *j* of the set lives at word ``j >> 6``,
bit ``j & 63``. The layout is **little-endian across words and bytes**,
so ``int.from_bytes(arr.tobytes(), "little")`` is exactly the big-int
mask — conversions between the two worlds are therefore lossless and
cheap, which is what lets the vectorized tier interoperate with the
int-mask search layer while staying bit-identical to it.

An adjacency *matrix* is the row-stacked ``(n, n_words)`` form; rows
are node masks, so set algebra over whole neighbourhoods is plain
elementwise ``&``/``|``/``&~`` and population counts come from
:func:`popcount_rows` (``np.bitwise_count`` on numpy >= 2, an 8-bit
lookup table otherwise — the py3.9 CI leg resolves numpy 1.26).

Everything here is deliberately dependency-light: numpy only, no
compiled extensions. The module is import-guarded by callers through
:mod:`repro.fastpath.backend` — it must only be imported when
``HAS_NUMPY`` is true.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

WORD_BITS = 64
_WORD_BYTES = 8

#: 8-bit population-count lookup table for numpy < 2 (no bitwise_count).
_POPCOUNT_LUT = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def n_words(n: int) -> int:
    """Words needed for an *n*-bit set (at least one, so slices exist)."""
    return max(1, (n + WORD_BITS - 1) >> 6)


# ----------------------------------------------------------------------
# packed <-> int-mask conversion
# ----------------------------------------------------------------------
def pack_mask(mask: int, n: int) -> np.ndarray:
    """Pack a big-int bitmask into a ``(n_words(n),)`` uint64 array."""
    words = n_words(n)
    return np.frombuffer(
        mask.to_bytes(words * _WORD_BYTES, "little"), dtype=np.uint64
    ).copy()


def unpack_mask(words: np.ndarray) -> int:
    """Invert :func:`pack_mask`: packed words back to a big-int mask."""
    return int.from_bytes(np.ascontiguousarray(words).tobytes(), "little")


def pack_masks(masks: Sequence[int], n: int) -> np.ndarray:
    """Pack a sequence of big-int masks into a ``(len, n_words)`` matrix."""
    words = n_words(n)
    out = np.empty((len(masks), words), dtype=np.uint64)
    for row, mask in enumerate(masks):
        out[row] = np.frombuffer(
            mask.to_bytes(words * _WORD_BYTES, "little"), dtype=np.uint64
        )
    return out


def unpack_rows(matrix: np.ndarray) -> List[int]:
    """Each row of a packed matrix as a big-int mask."""
    contiguous = np.ascontiguousarray(matrix)
    return [
        int.from_bytes(contiguous[row].tobytes(), "little")
        for row in range(contiguous.shape[0])
    ]


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def pack_bool(flags: np.ndarray) -> np.ndarray:
    """Pack a boolean vector (index = node) into uint64 words."""
    n = flags.shape[0]
    padded = np.zeros(n_words(n) * WORD_BITS, dtype=np.uint8)
    padded[:n] = flags
    return np.packbits(padded, bitorder="little").view(np.uint64)


def unpack_bool(words: np.ndarray, n: int) -> np.ndarray:
    """Unpack uint64 words to an ``(n,)`` boolean vector."""
    bits = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), bitorder="little"
    )
    return bits[:n].astype(bool)


def pack_edges(n: int, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Build a ``(n, n_words)`` matrix with bit ``cols[i]`` set in row
    ``rows[i]`` for every edge *i*.

    Works byte-wise through ``np.bitwise_or.at`` so the intermediate is
    the final 12.5%-density byte matrix, never an O(n^2) boolean dense
    form (100 MB at n = 10k); duplicate edges are harmless.
    """
    words = n_words(n)
    bytes_matrix = np.zeros((n, words * _WORD_BYTES), dtype=np.uint8)
    if rows.size:
        np.bitwise_or.at(
            bytes_matrix,
            (rows, cols >> 3),
            np.left_shift(np.uint8(1), (cols & 7).astype(np.uint8)),
        )
    return bytes_matrix.view(np.uint64)


def pack_csr(n: int, xadj, adj) -> np.ndarray:
    """Pack a CSR adjacency (row per node) into a ``(n, n_words)`` matrix."""
    xadj_np = as_int64(xadj)
    adj_np = as_int64(adj)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(xadj_np))
    return pack_edges(n, rows, adj_np)


def as_int64(buffer) -> np.ndarray:
    """View a CSR buffer (``array('q')`` or shm memoryview) as int64."""
    if isinstance(buffer, np.ndarray):
        return buffer.astype(np.int64, copy=False)
    if len(buffer) == 0:
        return np.empty(0, dtype=np.int64)
    return np.frombuffer(buffer, dtype=np.int64)


# ----------------------------------------------------------------------
# Algebra
# ----------------------------------------------------------------------
def and_(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise intersection."""
    return np.bitwise_and(a, b)


def or_(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise union."""
    return np.bitwise_or(a, b)


def andnot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise difference ``a & ~b``."""
    return np.bitwise_and(a, np.bitwise_not(b))


def popcount(words: np.ndarray) -> int:
    """Total number of set bits in a packed array (any shape)."""
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum(dtype=np.int64))
    return int(
        _POPCOUNT_LUT[np.ascontiguousarray(words).view(np.uint8)].sum(dtype=np.int64)
    )


def popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row population count of a ``(rows, n_words)`` matrix."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)
    view = np.ascontiguousarray(matrix).view(np.uint8)
    return _POPCOUNT_LUT[view].sum(axis=1, dtype=np.int64)


def indices(words: np.ndarray, n: int) -> np.ndarray:
    """Sorted indices of the set bits, as int64 (vectorized unpack)."""
    bits = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), bitorder="little"
    )
    return np.flatnonzero(bits[:n]).astype(np.int64)


def iter_bits(words: np.ndarray) -> Iterator[int]:
    """Yield set-bit indices in ascending order (matches bitset.iter_bits)."""
    for word_index, word in enumerate(np.ascontiguousarray(words).tolist()):
        base = word_index << 6
        while word:
            low = word & -word
            yield base + low.bit_length() - 1
            word ^= low


def test_bit(matrix: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Boolean vector: is bit ``cols[i]`` set in ``matrix[rows[i]]``?

    Probes single *bytes* of the (contiguous) packed matrix — an 8x
    smaller gather than whole words, which matters at wedge-probe
    volumes (millions of lookups per triangle kernel call).
    """
    view = matrix.view(np.uint8)
    probed = view[rows, cols >> 3]
    shifts = np.bitwise_and(cols, 7).astype(np.uint8)
    return np.bitwise_and(np.right_shift(probed, shifts), np.uint8(1)) != 0


def clear_bits(matrix: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> None:
    """Clear bit ``cols[i]`` in ``matrix[rows[i]]`` in place."""
    if rows.size == 0:
        return
    cols_u = cols.astype(np.uint64)
    keep = np.bitwise_not(
        np.left_shift(np.uint64(1), np.bitwise_and(cols_u, np.uint64(63)))
    )
    np.bitwise_and.at(matrix, (rows, cols >> 6), keep)
