"""Zero-copy shipping of a :class:`CompiledGraph` via shared memory.

The parallel enumerator used to pickle one compiled subgraph per task.
That is wasteful twice over when many tasks search the *same* graph:
the arrays are serialised per task, and every worker re-materialises a
private copy per task. :class:`SharedCompiledGraph` instead packs all
six CSR arrays (combined / positive / negative ``xadj``+``adj``), the
aligned edge signs, and the pickled node list into **one**
``multiprocessing.shared_memory`` block. Tasks then ship only two
integers (candidate and included bitmasks) plus the block's name; each
worker attaches once and reconstructs a read-only
:class:`CompiledGraph` whose array slots are ``memoryview`` casts
straight into the shared block — no copies of the CSR data are made on
either side of the process boundary.

Lifecycle (see also ``docs/ALGORITHMS.md``):

* **create** — the parent calls :meth:`SharedCompiledGraph.create`,
  which sizes the block, copies the arrays in, and returns a handle
  owning the segment;
* **attach** — workers call :meth:`SharedCompiledGraph.attach` with the
  handle's :attr:`meta` tuple (picklable, a few dozen bytes) and cache
  the resulting view for the life of the process;
* **unlink** — only the creating parent calls :meth:`unlink` (in a
  ``finally``), after the workers have drained; workers merely drop
  their views and :meth:`close`. POSIX keeps the segment alive until
  the last mapping is gone, so a parent unlink never yanks pages from
  a still-attached worker.

Node labels are arbitrary hashables, so the node list itself crosses
the boundary as one pickle inside the block — the only per-worker copy,
made once per process, not per task.
"""

from __future__ import annotations

import os
import pickle
import weakref
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

from repro.exceptions import SharedMemoryError
from repro.fastpath.compiled import CompiledGraph
from repro.testing import faults

#: Picklable description of a shared block: (segment name, node count,
#: combined/positive/negative adjacency lengths, node-pickle length).
SharedGraphMeta = Tuple[str, int, int, int, int, int]

_ALIGN = 8


def _aligned(offset: int) -> int:
    """Round *offset* up to the next 8-byte boundary (int64 segments)."""
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _layout(n: int, m_all: int, m_pos: int, m_neg: int, nodes_len: int) -> Tuple[List[Tuple[int, int]], int]:
    """Return ``(segments, total)``: byte (offset, length) per segment.

    Segment order: xadj, pxadj, nxadj (each ``n + 1`` int64), adj, padj,
    nadj (int64), signs (int8, aligned with adj), nodes pickle. Every
    segment starts 8-aligned so ``memoryview.cast("q")`` is safe.
    """
    lengths = [
        (n + 1) * 8,  # xadj
        (n + 1) * 8,  # pxadj
        (n + 1) * 8,  # nxadj
        m_all * 8,  # adj
        m_pos * 8,  # padj
        m_neg * 8,  # nadj
        m_all,  # signs
        nodes_len,  # pickled node list
    ]
    segments: List[Tuple[int, int]] = []
    offset = 0
    for length in lengths:
        offset = _aligned(offset)
        segments.append((offset, length))
        offset += length
    return segments, offset


class SharedCompiledGraph:
    """A :class:`CompiledGraph` backed by one shared-memory block.

    Build with :meth:`create` (parent, owns the segment) or
    :meth:`attach` (worker, borrows it). :attr:`graph` returns the
    reconstructed zero-copy view; :attr:`nbytes` is the block size —
    what the benchmark reports as the once-per-run payload that
    replaces per-task subgraph pickles.
    """

    def __init__(self, shm: shared_memory.SharedMemory, meta: SharedGraphMeta, owner: bool):
        self._shm = shm
        self.meta = meta
        self._owner = owner
        self._graph: Optional[CompiledGraph] = None
        #: Crash guard (owner only): unlink the segment at garbage
        #: collection or interpreter exit if the owner never reached its
        #: explicit ``unlink()`` — e.g. an unhandled exception between
        #: ``create()`` and the ``finally`` in ``enumerate_parallel``.
        self._finalizer: Optional[weakref.finalize] = None
        if owner:
            self._finalizer = weakref.finalize(
                self, _emergency_unlink, shm, os.getpid()
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, compiled: CompiledGraph) -> "SharedCompiledGraph":
        """Copy *compiled*'s arrays into a fresh shared-memory block."""
        nodes_blob = pickle.dumps(compiled.nodes, protocol=pickle.HIGHEST_PROTOCOL)
        n = compiled.n
        m_all = len(compiled.adj)
        m_pos = len(compiled.padj)
        m_neg = len(compiled.nadj)
        segments, total = _layout(n, m_all, m_pos, m_neg, len(nodes_blob))
        try:
            faults.check_shm_create()
            shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        except (OSError, faults.InjectedFault) as exc:
            raise SharedMemoryError(
                f"could not allocate a {total}-byte shared-memory segment: {exc}"
            ) from exc
        payloads = (
            compiled.xadj,
            compiled.pxadj,
            compiled.nxadj,
            compiled.adj,
            compiled.padj,
            compiled.nadj,
            compiled.signs,
            nodes_blob,
        )
        buf = shm.buf
        for (offset, length), payload in zip(segments, payloads):
            if length:
                buf[offset : offset + length] = (
                    payload if isinstance(payload, bytes) else payload.tobytes()
                )
        meta: SharedGraphMeta = (shm.name, n, m_all, m_pos, m_neg, len(nodes_blob))
        return cls(shm, meta, owner=True)

    @classmethod
    def attach(cls, meta: SharedGraphMeta) -> "SharedCompiledGraph":
        """Open an existing block by its :attr:`meta` (worker side)."""
        shm = shared_memory.SharedMemory(name=meta[0])
        return cls(shm, meta, owner=False)

    # ------------------------------------------------------------------
    # The zero-copy view
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CompiledGraph:
        """The :class:`CompiledGraph` view into the block (built once).

        The six CSR arrays and the sign array are ``memoryview`` casts
        into the shared pages — indexing them reads shared memory
        directly. Only the node list (a pickle of arbitrary objects)
        and the lazily-built masks / orders live in process-local
        memory.
        """
        if self._graph is None:
            _name, n, m_all, m_pos, m_neg, nodes_len = self.meta
            segments, _total = _layout(n, m_all, m_pos, m_neg, nodes_len)
            buf = self._shm.buf

            def int64(index: int):
                offset, length = segments[index]
                return buf[offset : offset + length].cast("q")

            graph = CompiledGraph.__new__(CompiledGraph)
            graph.nodes = pickle.loads(
                bytes(buf[segments[7][0] : segments[7][0] + nodes_len])
            )
            graph.n = n
            graph.xadj = int64(0)
            graph.pxadj = int64(1)
            graph.nxadj = int64(2)
            graph.adj = int64(3)
            graph.padj = int64(4)
            graph.nadj = int64(5)
            signs_offset, signs_len = segments[6]
            graph.signs = buf[signs_offset : signs_offset + signs_len].cast("b")
            graph._index = None
            graph._source = None
            graph._masks = {}
            graph._oriented = {}
            graph._repr_rank = None
            graph._packed = {}
            self._graph = graph
        return self._graph

    @property
    def name(self) -> str:
        """The shared-memory segment name."""
        return self.meta[0]

    @property
    def nbytes(self) -> int:
        """Size of the shared block in bytes."""
        return self._shm.size

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's view and mapping (safe to call twice).

        The exported ``memoryview`` casts must be released before the
        mapping can go away, so the graph view is discarded first.
        """
        if self._graph is not None:
            graph = self._graph
            self._graph = None
            # Release the memoryview exports so mmap.close() succeeds.
            for slot in ("xadj", "pxadj", "nxadj", "adj", "padj", "nadj", "signs"):
                try:
                    getattr(graph, slot).release()
                except (AttributeError, ValueError):  # pragma: no cover - defensive
                    pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exports still alive elsewhere
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after workers drained)."""
        if not self._owner:
            return
        if self._finalizer is not None:
            # Explicit unlink supersedes the crash guard.
            self._finalizer.detach()
            self._finalizer = None
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:
        return (
            f"SharedCompiledGraph(name={self.name!r}, n={self.meta[1]}, "
            f"bytes={self.nbytes}, owner={self._owner})"
        )


def _emergency_unlink(shm: shared_memory.SharedMemory, owner_pid: int) -> None:
    """Crash-path cleanup: unlink a segment its owner never released.

    Runs via ``weakref.finalize`` when the owning handle is collected or
    the interpreter exits. The pid check keeps forked worker processes
    (which inherit the parent's finalizer registry) from yanking the
    segment out from under the still-running parent.
    """
    if os.getpid() != owner_pid:
        return
    try:
        shm.close()
    except Exception:  # pragma: no cover - best-effort crash path
        pass
    try:
        shm.unlink()
    except Exception:  # pragma: no cover - best-effort crash path
        pass
