"""Zero-copy shipping of a :class:`CompiledGraph` to worker processes.

The parallel enumerator used to pickle one compiled subgraph per task.
That is wasteful twice over when many tasks search the *same* graph:
the arrays are serialised per task, and every worker re-materialises a
private copy per task. :class:`SharedCompiledGraph` instead publishes
the graph **once** and ships only two integers (candidate and included
bitmasks) per task, via one of two transports selected by
:func:`resolve_transport` (mirroring the kernel-tier resolver in
:mod:`repro.fastpath.backend`):

* ``"shm"`` (default) — all six CSR arrays (combined / positive /
  negative ``xadj``+``adj``), the aligned edge signs, and the pickled
  node list packed into one ``multiprocessing.shared_memory`` block;
  each worker attaches and reconstructs a read-only
  :class:`CompiledGraph` whose array slots are ``memoryview`` casts
  straight into the shared pages.
* ``"mmap"`` — the same arrays written once to a crash-guarded temp
  file in the versioned artifact layout of
  :mod:`repro.fastpath.storage`; workers ``mmap`` the file read-only
  and get the identical zero-copy view through file-backed pages the
  OS shares between all attachers and can evict under memory pressure.
  This is the transport for graphs that should not occupy ``/dev/shm``
  (which is RAM) — the substrate of the out-of-core execution plan.

Lifecycle (see also ``docs/ALGORITHMS.md``), identical across
transports:

* **create** — the parent calls :meth:`SharedCompiledGraph.create`,
  which publishes the payload and returns a handle owning the segment
  or file;
* **attach** — workers call :meth:`SharedCompiledGraph.attach` with the
  handle's :attr:`meta` tuple (picklable, a few dozen bytes) and cache
  the resulting view for the life of the process;
* **unlink** — only the creating parent calls :meth:`unlink` (in a
  ``finally``), after the workers have drained; workers merely drop
  their views and :meth:`close`. POSIX keeps shm segments and mapped
  files alive until the last mapping is gone, so a parent unlink never
  yanks pages from a still-attached worker.

Node labels are arbitrary hashables, so the node list itself crosses
the boundary as one pickle inside the payload — the only per-worker
copy, made once per process, not per task.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import weakref
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

from repro.exceptions import ParameterError, SharedMemoryError, StorageError
from repro.fastpath.compiled import CompiledGraph
from repro.fastpath import storage as storage_mod
from repro.testing import faults

#: Picklable description of a published graph: (transport, segment name
#: or artifact path, node count, combined/positive/negative adjacency
#: lengths, node-pickle length). Pre-transport 6-tuples (no leading
#: transport field) are still accepted by :meth:`SharedCompiledGraph.attach`.
SharedGraphMeta = Tuple[str, str, int, int, int, int, int]

#: The two graph transports, in the order of the degradation ladder.
TRANSPORT_SHM = "shm"
TRANSPORT_MMAP = "mmap"
TRANSPORTS: Tuple[str, ...] = (TRANSPORT_SHM, TRANSPORT_MMAP)

#: Environment variable naming the default transport for the process.
TRANSPORT_ENV = "REPRO_TRANSPORT"

_ALIGN = 8


def resolve_transport(transport: Optional[str] = None) -> str:
    """Resolve a transport request (explicit > ``REPRO_TRANSPORT`` > shm).

    Mirrors :func:`repro.fastpath.backend.resolve_backend`: unknown
    names raise :class:`~repro.exceptions.ParameterError`; both
    transports are always available (mmap needs only a writable temp
    directory), so there is no degradation ladder here — allocation
    failures surface as :class:`~repro.exceptions.SharedMemoryError`
    at :meth:`SharedCompiledGraph.create` time for either transport.
    """
    if transport is None:
        transport = os.environ.get(TRANSPORT_ENV, "").strip() or TRANSPORT_SHM
    if transport not in TRANSPORTS:
        raise ParameterError(
            f"unknown graph transport {transport!r}; expected one of {list(TRANSPORTS)}"
        )
    return transport


def _aligned(offset: int) -> int:
    """Round *offset* up to the next 8-byte boundary (int64 segments)."""
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _layout(n: int, m_all: int, m_pos: int, m_neg: int, nodes_len: int) -> Tuple[List[Tuple[int, int]], int]:
    """Return ``(segments, total)``: byte (offset, length) per segment.

    Segment order: xadj, pxadj, nxadj (each ``n + 1`` int64), adj, padj,
    nadj (int64), signs (int8, aligned with adj), nodes pickle. Every
    segment starts 8-aligned so ``memoryview.cast("q")`` is safe. The
    mmap transport uses the same order (behind a fixed header) via
    :func:`repro.fastpath.storage.data_layout`.
    """
    lengths = [
        (n + 1) * 8,  # xadj
        (n + 1) * 8,  # pxadj
        (n + 1) * 8,  # nxadj
        m_all * 8,  # adj
        m_pos * 8,  # padj
        m_neg * 8,  # nadj
        m_all,  # signs
        nodes_len,  # pickled node list
    ]
    segments: List[Tuple[int, int]] = []
    offset = 0
    for length in lengths:
        offset = _aligned(offset)
        segments.append((offset, length))
        offset += length
    return segments, offset


def _normalize_meta(meta) -> SharedGraphMeta:
    """Accept both meta generations: prepend ``"shm"`` to old 6-tuples."""
    meta = tuple(meta)
    if len(meta) == 6:
        return (TRANSPORT_SHM,) + meta  # pre-transport layout
    if len(meta) != 7 or meta[0] not in TRANSPORTS:
        raise SharedMemoryError(f"malformed shared-graph meta {meta!r}")
    return meta


class SharedCompiledGraph:
    """A :class:`CompiledGraph` published once for many processes.

    Build with :meth:`create` (parent, owns the segment or artifact
    file) or :meth:`attach` (worker, borrows it). :attr:`graph` returns
    the reconstructed zero-copy view; :attr:`nbytes` is the payload size
    — what the benchmark reports as the once-per-run payload that
    replaces per-task subgraph pickles.
    """

    def __init__(
        self,
        meta: SharedGraphMeta,
        owner: bool,
        shm: Optional[shared_memory.SharedMemory] = None,
    ):
        self.meta = meta
        self.transport = meta[0]
        self._shm = shm
        self._owner = owner
        self._graph: Optional[CompiledGraph] = None
        self._nbytes: Optional[int] = shm.size if shm is not None else None
        #: Crash guard (owner only): release the segment / artifact file
        #: at garbage collection or interpreter exit if the owner never
        #: reached its explicit ``unlink()`` — e.g. an unhandled
        #: exception between ``create()`` and the ``finally`` in
        #: ``enumerate_parallel``. Pid-checked, so forked workers that
        #: inherit the finalizer registry never fire it.
        self._finalizer: Optional[weakref.finalize] = None
        if owner:
            if shm is not None:
                self._finalizer = weakref.finalize(
                    self, _emergency_unlink, shm, os.getpid()
                )
            else:
                self._finalizer = weakref.finalize(
                    self, storage_mod._remove_file, meta[1], os.getpid()
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        compiled: CompiledGraph,
        transport: Optional[str] = None,
        dir: Optional[str] = None,
    ) -> "SharedCompiledGraph":
        """Publish *compiled* once via the resolved *transport*.

        ``"shm"`` copies the arrays into a fresh shared-memory block;
        ``"mmap"`` writes a graph artifact to a crash-guarded temp file
        (under *dir*, default system tempdir). Either failure mode —
        tiny ``/dev/shm``, unwritable tempdir — raises
        :class:`~repro.exceptions.SharedMemoryError`, which the parallel
        enumerator's degradation ladder turns into an inline run.
        """
        transport = resolve_transport(transport)
        nodes_blob = pickle.dumps(compiled.nodes, protocol=pickle.HIGHEST_PROTOCOL)
        n = compiled.n
        m_all = len(compiled.adj)
        m_pos = len(compiled.padj)
        m_neg = len(compiled.nadj)
        if transport == TRANSPORT_MMAP:
            try:
                faults.check_shm_create()
                fd, path = tempfile.mkstemp(
                    prefix=storage_mod.MMAP_PREFIX, suffix=".graph", dir=dir
                )
                os.close(fd)
            except (OSError, faults.InjectedFault) as exc:
                raise SharedMemoryError(
                    f"could not allocate an mmap graph artifact: {exc}"
                ) from exc
            try:
                # No packed matrices in the transport artifact: workers
                # rebuild them lazily, exactly as they do under shm.
                storage_mod.save_compiled(compiled, path, packed="none")
            except (OSError, StorageError) as exc:
                storage_mod._remove_file(path, os.getpid())
                raise SharedMemoryError(
                    f"could not write the mmap graph artifact: {exc}"
                ) from exc
            meta: SharedGraphMeta = (
                TRANSPORT_MMAP, path, n, m_all, m_pos, m_neg, len(nodes_blob),
            )
            handle = cls(meta, owner=True)
            handle._nbytes = os.path.getsize(path)
            return handle
        segments, total = _layout(n, m_all, m_pos, m_neg, len(nodes_blob))
        try:
            faults.check_shm_create()
            shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        except (OSError, faults.InjectedFault) as exc:
            raise SharedMemoryError(
                f"could not allocate a {total}-byte shared-memory segment: {exc}"
            ) from exc
        payloads = (
            compiled.xadj,
            compiled.pxadj,
            compiled.nxadj,
            compiled.adj,
            compiled.padj,
            compiled.nadj,
            compiled.signs,
            nodes_blob,
        )
        buf = shm.buf
        for (offset, length), payload in zip(segments, payloads):
            if length:
                buf[offset : offset + length] = (
                    payload if isinstance(payload, bytes) else payload.tobytes()
                )
        meta = (TRANSPORT_SHM, shm.name, n, m_all, m_pos, m_neg, len(nodes_blob))
        return cls(meta, owner=True, shm=shm)

    @classmethod
    def attach(cls, meta) -> "SharedCompiledGraph":
        """Open an existing segment / artifact by its :attr:`meta` (worker side)."""
        meta = _normalize_meta(meta)
        if meta[0] == TRANSPORT_MMAP:
            return cls(meta, owner=False)
        shm = shared_memory.SharedMemory(name=meta[1])
        return cls(meta, owner=False, shm=shm)

    # ------------------------------------------------------------------
    # The zero-copy view
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CompiledGraph:
        """The :class:`CompiledGraph` view into the payload (built once).

        The six CSR arrays and the sign array are ``memoryview`` casts
        into the shared pages (shm block or file mapping) — indexing
        them reads shared memory directly. Only the node list (a pickle
        of arbitrary objects) and the lazily-built masks / orders live
        in process-local memory.
        """
        if self._graph is None:
            if self.transport == TRANSPORT_MMAP:
                self._graph = storage_mod.mmap_compiled(self.meta[1])
                return self._graph
            _transport, _name, n, m_all, m_pos, m_neg, nodes_len = self.meta
            segments, _total = _layout(n, m_all, m_pos, m_neg, nodes_len)
            buf = self._shm.buf

            def int64(index: int):
                offset, length = segments[index]
                return buf[offset : offset + length].cast("q")

            graph = CompiledGraph.__new__(CompiledGraph)
            graph.nodes = pickle.loads(
                bytes(buf[segments[7][0] : segments[7][0] + nodes_len])
            )
            graph.n = n
            graph.xadj = int64(0)
            graph.pxadj = int64(1)
            graph.nxadj = int64(2)
            graph.adj = int64(3)
            graph.padj = int64(4)
            graph.nadj = int64(5)
            signs_offset, signs_len = segments[6]
            graph.signs = buf[signs_offset : signs_offset + signs_len].cast("b")
            graph._index = None
            graph._source = None
            graph._masks = {}
            graph._oriented = {}
            graph._repr_rank = None
            graph._packed = {}
            graph._storage = None
            self._graph = graph
        return self._graph

    @property
    def name(self) -> str:
        """The shared-memory segment name or artifact file path."""
        return self.meta[1]

    @property
    def nbytes(self) -> int:
        """Size of the published payload in bytes."""
        if self._nbytes is None:
            self._nbytes = (
                self._shm.size
                if self._shm is not None
                else os.path.getsize(self.meta[1])
            )
        return self._nbytes

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's view and mapping (safe to call twice).

        The exported ``memoryview`` casts must be released before the
        mapping can go away, so the graph view is discarded first.
        """
        if self._graph is not None:
            graph = self._graph
            self._graph = None
            storage_mod.release_views(graph)
            store = graph._storage
            if store is not None:
                graph._storage = None
                store.close()
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - exports still alive elsewhere
                pass

    def unlink(self) -> None:
        """Destroy the segment / artifact (owner only; after workers drained)."""
        if not self._owner:
            return
        if self._finalizer is not None:
            # Explicit unlink supersedes the crash guard.
            self._finalizer.detach()
            self._finalizer = None
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        else:
            try:
                os.unlink(self.meta[1])
            except OSError:  # pragma: no cover - already gone
                pass

    def __repr__(self) -> str:
        return (
            f"SharedCompiledGraph(transport={self.transport!r}, "
            f"name={self.name!r}, n={self.meta[2]}, "
            f"bytes={self.nbytes}, owner={self._owner})"
        )


def _emergency_unlink(shm: shared_memory.SharedMemory, owner_pid: int) -> None:
    """Crash-path cleanup: unlink a segment its owner never released.

    Runs via ``weakref.finalize`` when the owning handle is collected or
    the interpreter exits. The pid check keeps forked worker processes
    (which inherit the parent's finalizer registry) from yanking the
    segment out from under the still-running parent.
    """
    if os.getpid() != owner_pid:
        return
    try:
        shm.close()
    except Exception:  # pragma: no cover - best-effort crash path
        pass
    try:
        shm.unlink()
    except Exception:  # pragma: no cover - best-effort crash path
        pass
