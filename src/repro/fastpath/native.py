"""Optional numba tier for the two loops that resist vectorization.

The vectorized tier (:mod:`repro.fastpath.vectorized`) covers every
kernel whose peel can be expressed as waves of numpy ops. Two hot loops
cannot: the **bucket-queue core peel** (its output *order* is part of
the contract — `CompiledGraph.oriented` depends on the exact
smallest-remaining-degree tie-breaking) and the **BBE inner branch
step** (one frame at a time, data-dependent, called millions of times).
This module jit-compiles exactly those two, as straight ports of the
tier-0 loops over flat int64 / packed uint64 arrays.

numba is strictly optional: nothing here is imported unless
:func:`~repro.fastpath.backend.resolve_backend` is asked for
``"native"``, and even then the resolver downgrades silently to
``"vectorized"`` when numba is missing **or** :func:`self_check` fails.
The self-check runs the jitted kernels against pure-Python references
on randomized inputs once per process — a defensive gate so a broken
numba install (or an ABI mismatch) can never produce wrong cliques; it
either works bit-identically or it is not used.

The jitted functions deliberately stick to loop-and-index code with
explicit ``np.uint64`` casts; the pure-Python references use Python
big-ints, so the comparison crosses two independent implementations.
"""

from __future__ import annotations

from typing import List, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - native requires the vectorized tier
    np = None

try:
    from numba import njit

    HAS_NUMBA = True
except Exception:  # pragma: no cover - exercised on the no-numba CI leg
    HAS_NUMBA = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Identity decorator so the module still imports without numba."""
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


_SELF_CHECK: int = -1  # -1 unknown, 0 failed, 1 passed


# ----------------------------------------------------------------------
# Jitted kernels
# ----------------------------------------------------------------------
@njit(cache=True)
def _core_peel(n, xadj, adj, degree, bucket_start, vert, position, core):  # pragma: no cover - jit
    """Matula–Beck bucket peel; exact port of ``core_numbers_csr``."""
    max_degree = 0
    for v in range(n):
        degree[v] = xadj[v + 1] - xadj[v]
        if degree[v] > max_degree:
            max_degree = degree[v]
    for d in range(max_degree + 2):
        bucket_start[d] = 0
    for v in range(n):
        bucket_start[degree[v] + 1] += 1
    for d in range(1, max_degree + 2):
        bucket_start[d] += bucket_start[d - 1]
    for v in range(n):
        slot = bucket_start[degree[v]]
        vert[slot] = v
        position[v] = slot
        bucket_start[degree[v]] += 1
    for d in range(max_degree + 1, 0, -1):
        bucket_start[d] = bucket_start[d - 1]
    bucket_start[0] = 0
    for v in range(n):
        core[v] = degree[v]
    for slot in range(n):
        v = vert[slot]
        dv = core[v]
        for t in range(xadj[v], xadj[v + 1]):
            u = adj[t]
            du = core[u]
            if du > dv:
                pu = position[u]
                pw = bucket_start[du]
                w = vert[pw]
                if u != w:
                    vert[pu] = w
                    position[w] = pu
                    vert[pw] = u
                    position[u] = pw
                bucket_start[du] += 1
                core[u] = du - 1


@njit(cache=True)
def _branch_keep(neg_rows, adj_row, cand, inc, budget, clique_pruning, negative_pruning, neg_inside, keep):  # pragma: no cover - jit
    """The BBE include-branch candidate filter over packed uint64 words.

    Writes the surviving candidates into *keep* (preset to the include
    set) and returns ``(clique_pruned, negative_pruned)`` — the same two
    counter deltas the tier-0 loop accumulates, candidate for candidate.
    """
    words = cand.shape[0]
    one = np.uint64(1)
    zero = np.uint64(0)
    # neg_inside[m] = |neg(m) & included| for the included members.
    for wi in range(words):
        word = inc[wi]
        base = wi << 6
        for bit in range(64):
            if word == zero:
                break
            if word & one:
                m = base + bit
                total = 0
                for wj in range(words):
                    total += _popcount64(neg_rows[m, wj] & inc[wj])
                neg_inside[m] = total
            word >>= one
    clique_pruned = 0
    negative_pruned = 0
    for wi in range(words):
        word = cand[wi] & ~inc[wi]
        base = wi << 6
        for bit in range(64):
            if word == zero:
                break
            if word & one:
                i = base + bit
                if clique_pruning and (adj_row[i >> 6] >> np.uint64(i & 63)) & one == zero:
                    clique_pruned += 1
                    word >>= one
                    continue
                if negative_pruning:
                    total = 0
                    for wj in range(words):
                        total += _popcount64(neg_rows[i, wj] & inc[wj])
                    bad = total > budget
                    if not bad:
                        for wj in range(words):
                            nword = neg_rows[i, wj] & inc[wj]
                            nbase = wj << 6
                            for nbit in range(64):
                                if nword == zero:
                                    break
                                if nword & one:
                                    if neg_inside[nbase + nbit] + 1 > budget:
                                        bad = True
                                        break
                                nword >>= one
                            if bad:
                                break
                    if bad:
                        negative_pruned += 1
                        word >>= one
                        continue
                keep[wi] |= one << np.uint64(bit)
            word >>= one
    return clique_pruned, negative_pruned


@njit(cache=True)
def _popcount64(x):  # pragma: no cover - jit
    count = 0
    while x != np.uint64(0):
        x &= x - np.uint64(1)
        count += 1
    return count


# ----------------------------------------------------------------------
# Wrappers (the API the dispatch layer uses)
# ----------------------------------------------------------------------
def core_numbers_csr(n: int, xadj, adj) -> Tuple[List[int], List[int]]:
    """Jitted drop-in for :func:`repro.fastpath.kernels.core_numbers_csr`.

    Same ``(core, order)`` — including the peel order, which downstream
    orientation depends on — just compiled.
    """
    if n == 0:
        return [], []
    from repro.fastpath import packed

    xadj_np = packed.as_int64(xadj)
    adj_np = packed.as_int64(adj)
    degree = np.empty(n, dtype=np.int64)
    max_degree = int(np.diff(xadj_np).max())
    bucket_start = np.empty(max_degree + 2, dtype=np.int64)
    vert = np.empty(n, dtype=np.int64)
    position = np.empty(n, dtype=np.int64)
    core = np.empty(n, dtype=np.int64)
    _core_peel(n, xadj_np, adj_np, degree, bucket_start, vert, position, core)
    return core.tolist(), vert.tolist()


def branch_keep(
    neg_rows,
    adj_row,
    cand_words,
    inc_words,
    budget: int,
    clique_pruning: bool,
    negative_pruning: bool,
    scratch,
) -> Tuple[int, int, int]:
    """Run the jitted branch filter; returns ``(keep_mask, clique_pruned,
    negative_pruned)`` with *keep_mask* as a big-int (include bits set)."""
    from repro.fastpath import packed

    keep = inc_words.copy()
    clique_pruned, negative_pruned = _branch_keep(
        neg_rows,
        adj_row,
        cand_words,
        inc_words,
        budget,
        clique_pruning,
        negative_pruning,
        scratch,
        keep,
    )
    return packed.unpack_mask(keep), int(clique_pruned), int(negative_pruned)


# ----------------------------------------------------------------------
# Self-check: jitted kernels vs pure-Python references
# ----------------------------------------------------------------------
def _reference_branch_keep(neg_masks, adj_mask, cand, inc, budget, clique_pruning, negative_pruning):
    """Big-int reference of the tier-0 keep loop (bbe/search semantics)."""
    from repro.fastpath.bitset import bit_count, iter_bits

    neg_inside = {m: bit_count(neg_masks[m] & inc) for m in iter_bits(inc)}
    keep = inc
    clique_pruned = negative_pruned = 0
    for i in iter_bits(cand & ~inc):
        if clique_pruning and not (adj_mask >> i) & 1:
            clique_pruned += 1
            continue
        if negative_pruning:
            negatives = neg_masks[i] & inc
            if bit_count(negatives) > budget or any(
                neg_inside[m] + 1 > budget for m in iter_bits(negatives)
            ):
                negative_pruned += 1
                continue
        keep |= 1 << i
    return keep, clique_pruned, negative_pruned


def self_check() -> bool:
    """Prove the jitted kernels bit-identical on randomized inputs (once).

    Compares ``core_numbers_csr`` and ``branch_keep`` against their
    pure-Python references on a deterministic batch of random graphs.
    Any discrepancy — or any numba compilation error — marks the native
    tier unusable for this process and the resolver falls back to
    ``"vectorized"``.
    """
    global _SELF_CHECK
    if _SELF_CHECK >= 0:
        return bool(_SELF_CHECK)
    if not HAS_NUMBA or np is None:
        _SELF_CHECK = 0
        return False
    try:
        from repro.fastpath import packed
        from repro.fastpath.kernels import core_numbers_csr as reference_core

        rng = np.random.default_rng(20180414)
        full = lambda bits: int.from_bytes(rng.bytes((bits + 7) // 8), "little") & (
            (1 << bits) - 1
        )
        for n in (1, 7, 40, 130):
            # Random symmetric graph as CSR (np.nonzero is row-major, so
            # rows come out ascending — a valid CSR ordering).
            dense = rng.random((n, n)) < 0.2
            dense |= dense.T
            np.fill_diagonal(dense, False)
            xadj = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(dense.sum(axis=1), out=xadj[1:])
            adj = np.nonzero(dense)[1].astype(np.int64)
            if core_numbers_csr(n, xadj, adj) != reference_core(n, list(xadj), list(adj)):
                _SELF_CHECK = 0
                return False
            # Branch filter on random masks over the same n.
            neg_dense = dense & (rng.random((n, n)) < 0.5)
            neg_dense |= neg_dense.T
            neg_masks = [
                int.from_bytes(np.packbits(neg_dense[i], bitorder="little").tobytes(), "little")
                for i in range(n)
            ]
            adj_masks = [
                int.from_bytes(np.packbits(dense[i], bitorder="little").tobytes(), "little")
                for i in range(n)
            ]
            neg_rows = packed.pack_masks(neg_masks, n)
            for _trial in range(4):
                cand = full(n)
                inc = cand & full(n)
                branch = int(rng.integers(0, n))
                budget = int(rng.integers(0, 3))
                scratch = np.zeros(n, dtype=np.int64)
                got = branch_keep(
                    neg_rows,
                    packed.pack_mask(adj_masks[branch], n),
                    packed.pack_mask(cand, n),
                    packed.pack_mask(inc, n),
                    budget,
                    True,
                    True,
                    scratch,
                )
                want = _reference_branch_keep(
                    neg_masks, adj_masks[branch], cand, inc, budget, True, True
                )
                if got != want:
                    _SELF_CHECK = 0
                    return False
        _SELF_CHECK = 1
        return True
    except Exception:  # pragma: no cover - defensive: broken numba install
        _SELF_CHECK = 0
        return False
