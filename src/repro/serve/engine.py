"""The long-lived signed-clique serving engine.

:class:`SignedCliqueEngine` is the process-resident query layer the
ROADMAP's serving story needs: load a :class:`~repro.graphs.SignedGraph`
once, then answer enumeration / top-r / community-search / MCCore
requests against shared state instead of re-compiling, re-hashing and
re-coring per call. Three mechanisms amortise work across requests:

* **one compilation** — the graph is compiled to the CSR fastpath
  (:func:`repro.fastpath.compiled.compile_graph`) lazily and reused by
  every request until a mutation invalidates it;
* **a ceiling-keyed reduction memo** — the MCCore depends only on the
  positive threshold ``ceil(alpha * k)`` (Definition 3 constrains ego
  networks by a ``(ceil(alpha*k) - 1)``-core; ``k`` never enters), so
  all (alpha, k) settings sharing a ceiling share one coring pass. The
  memo is injected into MSCE / the query planner via their ``reducer``
  hooks, so the search itself is bit-identical to one-shot calls;
* **a two-tier result cache** — a thread-safe in-memory LRU
  (:class:`~repro.serve.lru.MemoryLRU`, bounded by entries and
  approximate bytes) layered over the disk tier
  (:class:`~repro.io.cache.ResultCache`), both keyed by the same
  :func:`~repro.io.cache.entry_key` strings (graph fingerprint +
  ``CACHE_SCHEMA_VERSION`` + package version + params + kind). Entries
  carry the producing run's :class:`~repro.core.bbe.SearchStats`, so a
  hit in either tier replays cliques *and* stats bit-identically to a
  recompute — the differential contract ``tests/test_serve.py`` pins.

Mutations (:meth:`add_edge` / :meth:`remove_edge` / :meth:`flip_sign` /
...) route through :mod:`repro.core.dynamic`'s locality rule: only the
cached cliques inside the affected region ``{u, v} ∪ N(u) ∪ N(v)`` are
invalidated and recomputed via a seeded search; every other cached
clique is carried to the new graph fingerprint as a cliques-only entry.
Stats-bearing requests recompute after a mutation (the fingerprint
changed, so their entries miss), keeping the differential contract
intact, while cliques-only requests keep their warm cache.

Batched grids go through :meth:`run_grid`, which partitions the whole
(alpha, k) grid over the :class:`~repro.core.scheduler.WorkStealingScheduler`
(see :func:`repro.core.parallel.enumerate_grid`) instead of looping one
query at a time.

Instrumentation rides the ambient observer (:mod:`repro.obs`): each
request opens a ``serve_request`` span, and every cache/grid event
increments a ``serve_*`` counter — visible in the Prometheus export
when observing is enabled — mirrored by the plain :attr:`counters`
dict for uninstrumented callers.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.core.api import enumerate_with_stats as _api_enumerate_with_stats
from repro.core.bbe import MSCE, EnumerationResult, SearchStats
from repro.core.cliques import SignedClique, sort_cliques
from repro.core.dynamic import closed_neighborhood, refresh_region
from repro.core.params import AlphaK
from repro.core.parallel import enumerate_grid
from repro.core.query import query_search
from repro.exceptions import GraphError, ParameterError, StorageError
from repro.fastpath.backend import resolve_backend
from repro.fastpath.compiled import CompiledGraph, compile_graph
from repro.fastpath.kernels import reduce_mask
from repro.graphs.signed_graph import Node, SignedGraph
from repro.io.cache import (
    ResultCache,
    entry_key,
    graph_fingerprint,
    storage_artifact_path,
)
from repro.models import get_model, resolve_model
from repro.obs import runtime as obs
from repro.serve.lru import MemoryLRU, approximate_size

#: Default entry bound of the in-memory tier.
DEFAULT_CACHE_MEM_ENTRIES = 256

#: Default approximate-bytes bound of the in-memory tier (64 MiB).
DEFAULT_CACHE_MEM_BYTES = 64 * 1024 * 1024

#: Engine counter names, mirrored as ``serve_<name>`` observer counters.
COUNTER_NAMES = (
    "requests",
    "memory_hits",
    "disk_hits",
    "derived_hits",
    "computes",
    "evictions",
    "reduce_computed",
    "reduce_shared",
    "updates",
    "cliques_invalidated",
    "entries_invalidated",
    "grid_points",
    "grid_cache_hits",
    "grid_computed",
    "storage_saves",
    "storage_attaches",
)

GridKey = Union[AlphaK, Tuple[float, int]]


def _stats_from_dict(values: Dict[str, int]) -> SearchStats:
    """Rebuild a :class:`SearchStats` from its :meth:`as_dict` form."""
    stats = SearchStats()
    for name in SearchStats.FIELDS:
        setattr(stats, name, int(values.get(name, 0)))
    return stats


def _query_kind(query_set: Set[Node]) -> str:
    """A stable cache-kind string for a community-search query set."""
    payload = "\x1f".join(sorted(repr(node) for node in query_set))
    return "q" + hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class GridResult:
    """Outcome of :meth:`SignedCliqueEngine.run_grid`.

    ``results`` maps each distinct requested setting, in grid order, to
    the :class:`~repro.core.bbe.EnumerationResult` it would get from a
    one-shot enumeration; ``report`` summarises how the batch was
    served (cache hits vs computed points, worker counts, reduction
    sharing).
    """

    results: "OrderedDict[AlphaK, EnumerationResult]"
    report: Dict[str, object] = field(default_factory=dict)

    def _key(self, key: GridKey) -> AlphaK:
        if isinstance(key, AlphaK):
            return key
        return AlphaK(key[0], key[1])

    def __getitem__(self, key: GridKey) -> EnumerationResult:
        return self.results[self._key(key)]

    def __contains__(self, key: GridKey) -> bool:
        return self._key(key) in self.results

    def __iter__(self) -> Iterator[AlphaK]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def items(self):
        return self.results.items()


class SignedCliqueEngine:
    """Serve signed-clique queries against one long-lived graph.

    Parameters
    ----------
    graph:
        The signed graph to serve (copied; mutate it only through the
        engine's update methods).
    cache_dir:
        Optional directory for the persistent disk tier. Without it the
        engine still runs the memory tier; with it, results survive
        process restarts and LRU evictions fall back to disk.
    cache_mem_entries / cache_mem_bytes:
        Bounds of the in-memory tier (entries / approximate bytes);
        ``cache_mem_bytes=None`` disables the byte bound.
    workers:
        Default worker-process count for :meth:`run_grid` (``1`` runs
        grids inline, still sharing compilation and coring).
    selection / reduction / maxtest / seed:
        Enumerator configuration, as in :class:`~repro.core.bbe.MSCE`;
        the defaults match :mod:`repro.core.api`, which is what the
        differential harness compares against.
    backend:
        Kernel tier for every search the engine runs
        (:data:`repro.fastpath.backend.BACKENDS`); resolved once at
        construction, so cache keys and results are identical across
        tiers — only the wall clock changes.
    model:
        Default signed-cohesion model (:data:`repro.models.MODELS`);
        resolved once at construction. Enumeration requests may
        override it per call with ``model=``; the model name is part of
        every cache key, so constraints never share entries.
    record_requests:
        When ``True``, the engine appends every served request and
        update to :attr:`request_log` in serialisation order (the order
        the internal lock admitted them) — the concurrency hammer test
        replays this log sequentially to pin linearisability.

    Thread safety: every public method serialises on one reentrant
    lock. Requests are therefore linearisable; the two-tier cache can
    never serve a torn entry.
    """

    def __init__(
        self,
        graph: SignedGraph,
        cache_dir: Optional[object] = None,
        cache_mem_entries: int = DEFAULT_CACHE_MEM_ENTRIES,
        cache_mem_bytes: Optional[int] = DEFAULT_CACHE_MEM_BYTES,
        workers: int = 1,
        selection: str = "greedy",
        reduction: str = "mcnew",
        maxtest: str = "exact",
        seed: int = 0,
        record_requests: bool = False,
        backend: Optional[str] = None,
        model: Optional[str] = None,
        tenant: Optional[str] = None,
    ):
        self._lock = threading.RLock()
        self._graph = graph.copy()
        #: Lock-free fingerprint mirror: written under the lock at
        #: construction and at the end of every mutation, read without
        #: it (see :attr:`fingerprint`) so the network layer's event
        #: loop never blocks behind a search that holds the lock.
        self._fingerprint = graph_fingerprint(self._graph)
        #: Optional tenant name (multi-graph serving); labels the memory
        #: tier's per-tenant observer counters.
        self.tenant = tenant
        self._compiled_graph: Optional[CompiledGraph] = None
        self._selection = selection
        self._reduction = reduction
        self._maxtest = maxtest
        self._seed = seed
        self._backend = resolve_backend(backend)
        self._model = resolve_model(model)
        self._workers = max(1, workers)
        #: (method, positive_threshold) -> survivor bitmask of the
        #: current compiled graph. Cleared on every mutation.
        self._reduction_masks: Dict[Tuple[str, int], int] = {}
        self.memory = MemoryLRU(
            max_entries=cache_mem_entries, max_bytes=cache_mem_bytes, tenant=tenant
        )
        self.disk: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache_dir is not None else None
        )
        #: Whether the current compiled graph was mmap-attached from the
        #: persisted storage artifact (vs compiled in-process).
        self._storage_attached = False
        #: The live locality index: for every (alpha, k) whose full
        #: answer set is known for the *current* graph, the maximal
        #: cliques by node set. This is what mutations repair in place
        #: (see :func:`repro.core.dynamic.refresh_region`); bounded to
        #: ``cache_mem_entries`` settings, least-recently-served out.
        self._live: "OrderedDict[AlphaK, Dict[FrozenSet[Node], SignedClique]]" = (
            OrderedDict()
        )
        self._live_limit = max(1, cache_mem_entries)
        #: Plain counter mirror of the ``serve_*`` observer counters.
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self._seen_evictions = 0
        self.record_requests = record_requests
        #: Serialisation-order log of ``(op, args)`` tuples (only when
        #: ``record_requests`` is set).
        self.request_log: List[Tuple[str, tuple]] = []

    # ------------------------------------------------------------------
    # Shared state
    # ------------------------------------------------------------------
    @property
    def graph(self) -> SignedGraph:
        """The engine's current graph (treat as read-only)."""
        return self._graph

    def snapshot(self) -> SignedGraph:
        """An independent copy of the current graph."""
        with self._lock:
            return self._graph.copy()

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the current graph.

        A lock-free read of a mirror maintained under the engine lock
        (updated as the last step of every mutation), so callers on the
        serving event loop can read it while a long search holds the
        lock. To pin the fingerprint to a computation, read it inside
        :meth:`pinned` instead.
        """
        return self._fingerprint

    @contextmanager
    def pinned(self):
        """Hold the engine lock across several calls as one critical section.

        No mutation can interleave inside the block, so the
        :attr:`fingerprint` observed first is exactly the graph version
        every call in the block computes against. The lock is
        reentrant: the engine's public methods compose freely inside.
        """
        with self._lock:
            yield self

    def _compiled(self) -> CompiledGraph:
        if self._compiled_graph is None:
            self._compiled_graph = self._compile_or_attach()
        return self._compiled_graph

    def _storage_path(self):
        """Artifact path of the current graph, or ``None`` without a disk tier."""
        if self.disk is None:
            return None
        return storage_artifact_path(self.disk._dir, graph_fingerprint(self._graph))

    def _compile_or_attach(self) -> CompiledGraph:
        """Compile the current graph, or re-attach its persisted artifact.

        With a disk tier configured, the compiled CSR form is itself
        persisted under ``<cache_dir>/graphs/`` in the storage layout of
        :mod:`repro.fastpath.storage`, keyed by graph fingerprint and
        layout revision. A restarted engine then mmaps the artifact
        back zero-copy instead of re-hashing and re-compiling the whole
        graph — the serve layer's cold-start cost drops to one header
        read. Stale or corrupt artifacts (fingerprint mismatch,
        truncation) are deleted and recompiled; artifact I/O failures
        degrade to plain compilation.
        """
        path = self._storage_path()
        if path is None:
            return compile_graph(self._graph)
        fingerprint = graph_fingerprint(self._graph)
        if path.exists():
            try:
                compiled = CompiledGraph.mmap(path, expected_fingerprint=fingerprint)
            except (StorageError, OSError):
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                compiled._source = self._graph
                self._storage_attached = True
                self._bump("storage_attaches")
                return compiled
        compiled = compile_graph(self._graph)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            compiled.save(path, fingerprint=fingerprint)
        except (StorageError, OSError):
            pass  # artifact persistence is best-effort; serving continues
        else:
            self._bump("storage_saves")
        self._storage_attached = False
        return compiled

    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        obs.counter("serve_" + name).inc(amount)

    def _note_evictions(self) -> None:
        delta = self.memory.evictions - self._seen_evictions
        if delta > 0:
            self._seen_evictions = self.memory.evictions
            self._bump("evictions", delta)

    def _reducer(self, compiled, params: AlphaK, method: str) -> int:
        """Ceiling-keyed memoising replacement for ``reduce_mask``.

        Sound because every reduction method dispatched here (mcnew,
        mcbasic, positive-core) constrains by ``params.positive_threshold``
        only — two settings with equal ``ceil(alpha * k)`` have the same
        MCCore, which is what the grid-sharing counters measure.
        """
        key = (method, params.positive_threshold)
        mask = self._reduction_masks.get(key)
        if mask is None:
            mask = reduce_mask(compiled, params, method=method, backend=self._backend)
            self._reduction_masks[key] = mask
            self._bump("reduce_computed")
        else:
            self._bump("reduce_shared")
        return mask

    def _node_reducer(self, graph, params: AlphaK, method: str) -> Set[Node]:
        """The memo as a node set, for the query planner's contract."""
        compiled = self._compiled()
        return set(compiled.nodes_from_mask(self._reducer(compiled, params, method)))

    @property
    def sharing_ratio(self) -> float:
        """Fraction of reduction requests served from the ceiling memo."""
        total = self.counters["reduce_computed"] + self.counters["reduce_shared"]
        return self.counters["reduce_shared"] / total if total else 0.0

    def _record(self, op: str, *args) -> None:
        if self.record_requests:
            self.request_log.append((op, args))

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _resolve_model(self, model: Optional[str]) -> str:
        """Per-request model override; the engine default when absent."""
        return self._model if model is None else resolve_model(model)

    def _key(self, params: AlphaK, kind: str, model: Optional[str] = None) -> str:
        return entry_key(
            graph_fingerprint(self._graph),
            params,
            kind,
            model=model or self._model,
        )

    def _store(
        self,
        params: AlphaK,
        kind: str,
        cliques: List[SignedClique],
        stats: Optional[SearchStats],
        model: Optional[str] = None,
    ) -> None:
        """Write-through store into both tiers (stats may be absent)."""
        model = model or self._model
        stats_dict = stats.as_dict() if stats is not None else None
        value = {"cliques": list(cliques), "stats": stats_dict}
        self.memory.put(self._key(params, kind, model=model), value)
        self._note_evictions()
        if self.disk is not None:
            try:
                self.disk.put(
                    self._graph, params, cliques, kind=kind, stats=stats_dict, model=model
                )
            except TypeError:
                pass  # non-JSON-serialisable labels: memory tier only

    def _lookup(
        self,
        params: AlphaK,
        kind: str,
        need_stats: bool,
        model: Optional[str] = None,
    ) -> Optional[Tuple[List[SignedClique], Optional[Dict[str, int]], str]]:
        """Probe memory then disk; promote disk hits into memory.

        Returns ``(cliques, stats-dict-or-None, tier)`` or ``None``.
        ``need_stats`` skips cliques-only entries (the repaired ones a
        stats-bearing request must not serve).
        """
        model = model or self._model
        key = self._key(params, kind, model=model)
        value = self.memory.get(key)
        if value is not None and (value["stats"] is not None or not need_stats):
            self._bump("memory_hits")
            return value["cliques"], value["stats"], "memory"
        if self.disk is not None:
            entry = self.disk.get_entry(self._graph, params, kind=kind, model=model)
            if entry is not None and (entry[1] is not None or not need_stats):
                cliques, stats_dict = entry
                self.memory.put(key, {"cliques": cliques, "stats": stats_dict})
                self._note_evictions()
                self._bump("disk_hits")
                return cliques, stats_dict, "disk"
        return None

    def _result_from_entry(
        self, cliques: List[SignedClique], stats_dict: Dict[str, int], elapsed: float
    ) -> EnumerationResult:
        return EnumerationResult(
            cliques=list(cliques),
            stats=_stats_from_dict(stats_dict),
            elapsed_seconds=elapsed,
        )

    def _seed_live(self, params: AlphaK, cliques: Iterable[SignedClique]) -> None:
        self._live[params] = {clique.nodes: clique for clique in cliques}
        self._live.move_to_end(params)
        while len(self._live) > self._live_limit:
            self._live.popitem(last=False)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _full_result(
        self,
        params: AlphaK,
        started: float,
        time_limit: Optional[float] = None,
        model: Optional[str] = None,
    ) -> EnumerationResult:
        """Stats-tier lookup-or-compute for one full enumeration."""
        model = model or self._model
        live = model == "msce"  # locality repair understands MSCE only
        hit = self._lookup(params, "all", need_stats=True, model=model)
        if hit is not None:
            cliques, stats_dict, _ = hit
            if live:
                self._seed_live(params, cliques)
            return self._result_from_entry(
                cliques, stats_dict, time.perf_counter() - started
            )
        result = _api_enumerate_with_stats(
            self._compiled(),
            params.alpha,
            params.k,
            selection=self._selection,
            reduction=self._reduction,
            maxtest=self._maxtest,
            seed=self._seed,
            time_limit=time_limit,
            # The ceiling memo reduces by the (alpha, k) positive
            # threshold — only sound for the MSCE constraint.
            reducer=self._reducer if live else None,
            backend=self._backend,
            model=model,
        )
        self._bump("computes")
        if not (result.timed_out or result.truncated or result.interrupted):
            self._store(params, "all", result.cliques, result.stats, model=model)
            if live:
                self._seed_live(params, result.cliques)
        return result

    def enumerate_with_stats(
        self,
        alpha: float,
        k: int,
        time_limit: Optional[float] = None,
        model: Optional[str] = None,
    ) -> EnumerationResult:
        """Full enumeration with bit-identical cliques *and* stats.

        Served from the stats-bearing tiers only: a hit replays the
        producing run's counters; a miss computes (sharing compilation
        and coring) and write-throughs both tiers. Equivalent to
        :func:`repro.core.api.enumerate_with_stats` on a fresh copy of
        the current graph, always.

        ``time_limit`` caps the compute of a cache miss (hits are
        unaffected); a timed-out partial result is returned flagged and
        never cached — this is how the network layer propagates a
        request deadline (:meth:`repro.limits.ResourceGuard.remaining_time`)
        into the search without poisoning the tiers.

        ``model`` overrides the engine's default constraint for this
        request (resolved through :func:`repro.models.resolve_model`).
        """
        params = AlphaK(alpha, k)
        model = self._resolve_model(model)
        with self._lock:
            self._record("enumerate_with_stats", alpha, k, model)
            started = time.perf_counter()
            with obs.span(
                "serve_request", kind="all", alpha=params.alpha, k=params.k, model=model
            ):
                self._bump("requests")
                return self._full_result(
                    params, started, time_limit=time_limit, model=model
                )

    def enumerate(
        self, alpha: float, k: int, model: Optional[str] = None
    ) -> List[SignedClique]:
        """All maximal (alpha, k)-cliques, largest first (cliques tier).

        Unlike :meth:`enumerate_with_stats` this may serve entries that
        were *repaired* across mutations (carried to the new fingerprint
        by the locality rule) — exact clique sets without replayable
        stats.
        """
        params = AlphaK(alpha, k)
        model = self._resolve_model(model)
        with self._lock:
            self._record("enumerate", alpha, k, model)
            started = time.perf_counter()
            with obs.span(
                "serve_request", kind="all", alpha=params.alpha, k=params.k, model=model
            ):
                self._bump("requests")
                hit = self._lookup(params, "all", need_stats=False, model=model)
                if hit is not None:
                    if model == "msce":
                        self._seed_live(params, hit[0])
                    return list(hit[0])
                return list(self._full_result(params, started, model=model).cliques)

    def _topr_result(
        self,
        params: AlphaK,
        r: int,
        started: float,
        time_limit: Optional[float] = None,
        model: Optional[str] = None,
        warm_start=None,
    ) -> EnumerationResult:
        """Stats-tier lookup-or-compute for one top-r cutoff search.

        ``warm_start`` only shapes how a cache miss is computed — the
        answer (and therefore the cache entry) is identical with or
        without it, so it is deliberately NOT part of the entry key:
        a seeded request may be served by an unseeded entry and vice
        versa.
        """
        model = model or self._model
        kind = f"top{r}"
        hit = self._lookup(params, kind, need_stats=True, model=model)
        if hit is not None:
            cliques, stats_dict, _ = hit
            return self._result_from_entry(
                cliques, stats_dict, time.perf_counter() - started
            )
        result = MSCE(
            self._compiled(),
            params,
            selection=self._selection,
            reduction=self._reduction,
            maxtest=self._maxtest,
            seed=self._seed,
            time_limit=time_limit,
            reducer=self._reducer if model == "msce" else None,
            backend=self._backend,
            model=model,
        ).top_r(r, warm_start=warm_start)
        self._bump("computes")
        if not (result.timed_out or result.truncated or result.interrupted):
            self._store(params, kind, result.cliques, result.stats, model=model)
        return result

    def top_r(
        self,
        alpha: float,
        k: int,
        r: int,
        model: Optional[str] = None,
        warm_start=None,
    ) -> List[SignedClique]:
        """The ``r`` largest maximal (alpha, k)-cliques.

        Derives from a cached full enumeration when one is present (the
        top-r cutoff never changes which cliques sort first — both
        paths order with :func:`~repro.core.cliques.sort_cliques`);
        otherwise serves the dedicated ``top<r>`` entry or runs the
        paper's cutoff search. ``warm_start`` (see
        :meth:`repro.core.bbe.MSCE.top_r`) affects only how a cache
        miss is computed, never which entry serves the request.
        """
        params = AlphaK(alpha, k)
        model = self._resolve_model(model)
        with self._lock:
            self._record("top_r", alpha, k, r, model)
            started = time.perf_counter()
            with obs.span(
                "serve_request",
                kind=f"top{r}",
                alpha=params.alpha,
                k=params.k,
                model=model,
            ):
                self._bump("requests")
                full = self._lookup(params, "all", need_stats=False, model=model)
                if full is not None:
                    self._bump("derived_hits")
                    return list(full[0][: max(r, 0)])
                return list(
                    self._topr_result(
                        params, r, started, model=model, warm_start=warm_start
                    ).cliques
                )

    def top_r_with_stats(
        self,
        alpha: float,
        k: int,
        r: int,
        time_limit: Optional[float] = None,
        model: Optional[str] = None,
        warm_start=None,
    ) -> EnumerationResult:
        """Top-r with the cutoff search's own bit-identical stats.

        ``time_limit`` caps a cache miss's compute, as in
        :meth:`enumerate_with_stats`; ``model`` overrides the engine's
        default constraint for this request. ``warm_start`` seeds a
        cache miss's cutoff search (the stored entry is identical
        either way, so the cache key ignores it).
        """
        params = AlphaK(alpha, k)
        model = self._resolve_model(model)
        with self._lock:
            self._record("top_r_with_stats", alpha, k, r, model)
            started = time.perf_counter()
            with obs.span(
                "serve_request",
                kind=f"top{r}",
                alpha=params.alpha,
                k=params.k,
                model=model,
            ):
                self._bump("requests")
                return self._topr_result(
                    params,
                    r,
                    started,
                    time_limit=time_limit,
                    model=model,
                    warm_start=warm_start,
                )

    def query_with_stats(
        self,
        query: Iterable[Node],
        alpha: float,
        k: int,
        time_limit: Optional[float] = None,
    ) -> EnumerationResult:
        """Community search: maximal cliques containing every query node.

        Mirrors :func:`repro.core.query.query_search` bit-for-bit; the
        engine contributes its compiled graph and reduction memo, and
        caches per query set (a stable digest of the node reprs keys
        the entry).
        """
        params = AlphaK(alpha, k)
        if not get_model(self._model).supports_queries:
            raise ParameterError(
                f"community search is not supported by the {self._model!r} model"
            )
        query_set = set(query)
        kind = _query_kind(query_set)
        with self._lock:
            self._record("query_with_stats", tuple(sorted(map(repr, query_set))), alpha, k)
            started = time.perf_counter()
            with obs.span("serve_request", kind="query", alpha=params.alpha, k=params.k):
                self._bump("requests")
                hit = self._lookup(params, kind, need_stats=True)
                if hit is not None:
                    cliques, stats_dict, _ = hit
                    return self._result_from_entry(
                        cliques, stats_dict, time.perf_counter() - started
                    )
                result = query_search(
                    self._graph,
                    query_set,
                    alpha,
                    k,
                    reduction=self._reduction,
                    maxtest=self._maxtest,
                    time_limit=time_limit,
                    reducer=self._node_reducer,
                    search_graph=self._compiled(),
                    backend=self._backend,
                )
                self._bump("computes")
                if not (result.timed_out or result.truncated or result.interrupted):
                    self._store(params, kind, result.cliques, result.stats)
                return result

    def cliques_containing(
        self, query: Iterable[Node], alpha: float, k: int
    ) -> List[SignedClique]:
        """The community-search answer set, largest first."""
        return list(self.query_with_stats(query, alpha, k).cliques)

    def best_clique_for(
        self, query: Iterable[Node], alpha: float, k: int
    ) -> Optional[SignedClique]:
        """The largest maximal clique containing *query*, or ``None``."""
        cliques = self.cliques_containing(query, alpha, k)
        return cliques[0] if cliques else None

    def mccore(self, alpha: float, k: int, method: Optional[str] = None) -> Set[Node]:
        """The MCCore node set (Definition 3), via the ceiling memo."""
        params = AlphaK(alpha, k)
        with self._lock:
            self._record("mccore", alpha, k, method)
            with obs.span("serve_request", kind="mccore", alpha=params.alpha, k=params.k):
                self._bump("requests")
                return self._node_reducer(
                    self._graph, params, method or self._reduction
                )

    # ------------------------------------------------------------------
    # Batch grid
    # ------------------------------------------------------------------
    def run_grid(
        self,
        alphas: Iterable[float],
        ks: Iterable[int],
        workers: Optional[int] = None,
        time_limit: Optional[float] = None,
        model: Optional[str] = None,
    ) -> GridResult:
        """Enumerate the whole ``alphas × ks`` grid in one batch.

        Cached settings (stats-bearing, current fingerprint) are served
        straight from the tiers; the rest are computed together by
        :func:`repro.core.parallel.enumerate_grid` — one compilation,
        memoised coring per distinct ceiling, and all missing settings'
        frames interleaved through one work-stealing pool. Complete
        results are write-through cached, so re-running a grid after a
        partial overlap only computes the new settings.

        Each returned result is bit-identical (cliques and stats) to a
        one-shot enumeration of that setting; settings interrupted by
        *time_limit* are returned partial and not cached.
        """
        grid = [AlphaK(alpha, k) for alpha in alphas for k in ks]
        points = list(dict.fromkeys(grid))
        model = self._resolve_model(model)
        live = model == "msce"
        with self._lock:
            self._record(
                "run_grid",
                tuple((p.alpha, p.k) for p in points),
                workers,
                time_limit,
                model,
            )
            started = time.perf_counter()
            with obs.span(
                "serve_grid",
                points=len(points),
                workers=workers or self._workers,
                model=model,
            ):
                self._bump("requests")
                self._bump("grid_points", len(points))
                results: "OrderedDict[AlphaK, EnumerationResult]" = OrderedDict()
                missing: List[AlphaK] = []
                for params in points:
                    hit = self._lookup(params, "all", need_stats=True, model=model)
                    if hit is not None:
                        cliques, stats_dict, _ = hit
                        if live:
                            self._seed_live(params, cliques)
                        results[params] = self._result_from_entry(
                            cliques, stats_dict, 0.0
                        )
                        self._bump("grid_cache_hits")
                    else:
                        results[params] = None  # placeholder, filled below
                        missing.append(params)
                if missing:
                    computed = enumerate_grid(
                        self._compiled(),
                        missing,
                        workers=workers or self._workers,
                        selection=self._selection,
                        reduction=self._reduction,
                        maxtest=self._maxtest,
                        seed=self._seed,
                        time_limit=time_limit,
                        reducer=self._reducer if live else None,
                        backend=self._backend,
                        model=model,
                    )
                    self._bump("grid_computed", len(missing))
                    self._bump("computes", len(missing))
                    for params, result in computed.items():
                        results[params] = result
                        if not (
                            result.timed_out or result.truncated or result.interrupted
                        ):
                            self._store(
                                params, "all", result.cliques, result.stats, model=model
                            )
                            if live:
                                self._seed_live(params, result.cliques)
                report = {
                    "points": len(points),
                    "served_from_cache": len(points) - len(missing),
                    "computed": len(missing),
                    "workers": workers or self._workers,
                    "backend": self._backend,
                    "model": model,
                    "sharing_ratio": self.sharing_ratio,
                    "elapsed_seconds": time.perf_counter() - started,
                }
                return GridResult(results=results, report=report)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_edge(self, u: Node, v: Node, sign: object) -> None:
        """Add edge ``(u, v)``; raises if present with a different sign."""
        with self._lock:
            self._record("add_edge", u, v, sign)
            region = closed_neighborhood(self._graph, u) | closed_neighborhood(
                self._graph, v
            )
            self._graph.add_edge(u, v, sign)
            self._after_update(region | {u, v})

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``(u, v)``; raises :class:`GraphError` if absent."""
        with self._lock:
            self._record("remove_edge", u, v)
            region = closed_neighborhood(self._graph, u) | closed_neighborhood(
                self._graph, v
            )
            self._graph.remove_edge(u, v)
            self._after_update(region)

    def flip_sign(self, u: Node, v: Node, sign: object) -> None:
        """Add edge ``(u, v)`` or overwrite its sign (last write wins)."""
        with self._lock:
            self._record("flip_sign", u, v, sign)
            region = closed_neighborhood(self._graph, u) | closed_neighborhood(
                self._graph, v
            )
            self._graph.set_sign(u, v, sign)
            self._after_update(region | {u, v})

    def add_node(self, node: Node) -> None:
        """Add an isolated node (itself a clique under degenerate params)."""
        with self._lock:
            self._record("add_node", node)
            known = self._graph.has_node(node)
            self._graph.add_node(node)
            if not known:
                self._after_update({node})

    def remove_node(self, node: Node) -> None:
        """Remove *node* and every incident edge."""
        with self._lock:
            self._record("remove_node", node)
            if not self._graph.has_node(node):
                raise GraphError(f"node {node!r} not in graph")
            region = closed_neighborhood(self._graph, node)
            self._graph.remove_node(node)
            region.discard(node)
            dropped = 0
            for cliques in self._live.values():
                stale = [key for key in cliques if node in key]
                for key in stale:
                    del cliques[key]
                dropped += len(stale)
            self.counters["cliques_invalidated"] += dropped
            self._after_update(region, extra_invalidated=dropped)

    def apply_edits(self, edits: Iterable) -> None:
        """Apply ``("add"/"remove"/"flip", u, v[, sign])`` edit tuples."""
        for edit in edits:
            operation = edit[0]
            if operation == "add":
                self.add_edge(edit[1], edit[2], edit[3])
            elif operation == "remove":
                self.remove_edge(edit[1], edit[2])
            elif operation == "flip":
                self.flip_sign(edit[1], edit[2], edit[3])
            else:
                raise GraphError(f"unknown edit operation {operation!r}")

    def _after_update(self, region: Set[Node], extra_invalidated: int = 0) -> None:
        """Post-mutation bookkeeping: invalidate narrowly, repair live sets.

        The compiled graph and reduction memo are graph-global and must
        rebuild; cache entries of the old fingerprint can never hit
        again (the key changed), so they are dropped from the memory
        tier. The live (alpha, k) answer sets survive: only their
        cliques inside the affected *region* are recomputed
        (:func:`repro.core.dynamic.refresh_region`), then each repaired
        set is re-published under the new fingerprint as a cliques-only
        entry — so cliques-tier requests stay warm across updates.
        """
        with obs.span("serve_update", region=len(region)):
            self._bump("updates")
            self._compiled_graph = None
            self._storage_attached = False
            self._reduction_masks.clear()
            self._fingerprint = graph_fingerprint(self._graph)
            fingerprint_prefix = self._fingerprint[:32]
            stale_keys = [
                key for key in self.memory.keys() if not key.startswith(fingerprint_prefix)
            ]
            for key in stale_keys:
                self.memory.remove(key)
            self._bump("entries_invalidated", len(stale_keys))
            invalidated = extra_invalidated
            if self._live:
                compiled = self._compiled()
                for params, cliques in self._live.items():
                    invalidated += refresh_region(
                        self._graph,
                        params,
                        cliques,
                        set(region),
                        maxtest=self._maxtest,
                        search_graph=compiled,
                    )
                    # Live sets are only ever seeded by MSCE requests
                    # (the locality rule is (alpha, k)-specific), so the
                    # repaired entries republish under that model.
                    self._store(
                        params, "all", sort_cliques(cliques.values()), None, model="msce"
                    )
            self.counters["cliques_invalidated"] += invalidated - extra_invalidated
            obs.counter("serve_cliques_invalidated").inc(invalidated)
            obs.journal_event(
                "serve_update",
                region=len(region),
                entries_invalidated=len(stale_keys),
                cliques_invalidated=invalidated,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, object]:
        """Snapshot of both tiers, the storage tier and the engine counters.

        Deliberately taken *without* the engine lock: introspection
        (the network layer's ``/stats`` endpoint runs this on its event
        loop) must never block behind a search that holds the lock for
        its whole compute. Each constituent read is individually
        consistent (the memory tier snapshots under its own lock, dict
        sizes and counter reads are atomic), but counters mid-request
        may be one step apart — best effort, by design.
        """
        storage_dir = (
            self.disk._dir / "graphs" if self.disk is not None else None
        )
        artifacts = (
            sorted(p.name for p in storage_dir.glob("graph-*.graph"))
            if storage_dir is not None and storage_dir.is_dir()
            else []
        )
        return {
            "memory": self.memory.stats(),
            "disk": str(self.disk._dir) if self.disk is not None else None,
            "backend": self._backend,
            "model": self._model,
            "counters": dict(self.counters),
            "sharing_ratio": self.sharing_ratio,
            "live_settings": len(self._live),
            "reduction_memo": len(self._reduction_masks),
            "storage": {
                "dir": str(storage_dir) if storage_dir is not None else None,
                "artifacts": artifacts,
                "attached": self._storage_attached,
            },
        }

    def __repr__(self) -> str:
        return (
            f"SignedCliqueEngine(n={self._graph.number_of_nodes()}, "
            f"m={self._graph.number_of_edges()}, "
            f"memory_entries={len(self.memory)}, "
            f"requests={self.counters['requests']})"
        )
