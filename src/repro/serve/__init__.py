"""repro.serve — the compile-once batch query engine.

:class:`SignedCliqueEngine` keeps one signed graph resident and serves
enumeration, top-r, community-search and MCCore requests against shared
compiled state, a ceiling-keyed reduction memo, and a two-tier result
cache (:class:`MemoryLRU` over :class:`repro.io.cache.ResultCache`).
Batched (alpha, k) grids go through :meth:`SignedCliqueEngine.run_grid`.
See ``docs/ALGORITHMS.md`` ("Serving layer") and ``tests/test_serve.py``
for the differential contract the engine maintains.
"""

from repro.serve.engine import (
    COUNTER_NAMES,
    DEFAULT_CACHE_MEM_BYTES,
    DEFAULT_CACHE_MEM_ENTRIES,
    GridResult,
    SignedCliqueEngine,
)
from repro.serve.lru import MemoryLRU, approximate_size

__all__ = [
    "SignedCliqueEngine",
    "GridResult",
    "MemoryLRU",
    "approximate_size",
    "COUNTER_NAMES",
    "DEFAULT_CACHE_MEM_ENTRIES",
    "DEFAULT_CACHE_MEM_BYTES",
]
