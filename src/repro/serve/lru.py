"""Thread-safe in-memory LRU for the serving engine's hot tier.

Entries are keyed by the exact same strings :func:`repro.io.cache.entry_key`
produces for the disk tier — graph fingerprint, schema revision, package
version, (alpha, k), request kind — so a result moves between the two
tiers without re-keying, and a hit in either tier denotes the identical
computation (the differential harness in ``tests/test_serve.py`` pins
memory-hit ≡ disk-hit ≡ recompute bit-for-bit).

The cache is bounded twice: by entry count and by *approximate* payload
bytes (see :func:`approximate_size` — a recursive ``sys.getsizeof`` walk,
deliberately cheap rather than exact). Eviction is LRU on reads and
writes; evicted entries fall back to the disk tier, which the engine
writes through on every store.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import runtime as obs


def approximate_size(value: Any) -> int:
    """Approximate deep size of *value* in bytes.

    Walks containers (dict/list/tuple/set/frozenset) recursively and
    sums ``sys.getsizeof``; shared references are counted once per
    appearance, which overestimates — the safe direction for a memory
    bound. Unknown object types contribute their shallow size plus
    their ``__dict__``/slot values when present.
    """
    seen_total = 0
    stack = [value]
    while stack:
        item = stack.pop()
        try:
            seen_total += sys.getsizeof(item)
        except TypeError:  # pragma: no cover - exotic objects
            seen_total += 64
        if isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)
        elif hasattr(item, "__dict__"):
            stack.append(vars(item))
        elif hasattr(item, "__slots__"):
            stack.extend(
                getattr(item, name)
                for name in item.__slots__
                if hasattr(item, name)
            )
    return seen_total


class MemoryLRU:
    """A bounded, thread-safe, byte-aware LRU mapping of cache entries.

    Parameters
    ----------
    max_entries:
        Entry-count bound (at least 1).
    max_bytes:
        Approximate total payload bound in bytes, or ``None`` for
        unbounded. An entry whose lone size exceeds the bound is
        admitted and then immediately evicted (counted in
        :attr:`evictions`) — it simply never sticks.
    tenant:
        Optional tenant name. When set, every hit / miss / eviction is
        mirrored to the ambient observer as a
        ``serve_lru_<event>|tenant=<name>`` counter
        (:func:`repro.obs.export.split_inline_labels`), so the
        Prometheus export carries one ``serve_lru_hits`` (etc.) family
        labelled per tenant — the multi-graph server relies on this to
        tell which tenant's budget is thrashing.

    All operations take one internal lock, so readers never observe a
    torn entry; values are treated as immutable by convention (the
    engine stores fresh containers and never mutates a stored value in
    place).
    """

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: Optional[int] = None,
        tenant: Optional[str] = None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 or None, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.tenant = tenant
        self._label = f"|tenant={tenant}" if tenant is not None else None
        self._lock = threading.Lock()
        self._data: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        #: Monotone operation counters (read under the lock via stats()).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0

    def _observe(self, event: str, amount: int = 1) -> None:
        """Mirror *event* to the ambient per-tenant counter (if named).

        Called outside :attr:`_lock` on purpose (the observer is not
        part of the cache's critical section); concurrent mirrors from
        executor threads are safe because
        :meth:`repro.obs.metrics.Counter.inc` is atomic.
        """
        if self._label is not None and amount:
            obs.counter("serve_lru_" + event + self._label).inc(amount)

    def get(self, key: str) -> Optional[Any]:
        """Return the cached value (marking it most-recent), or ``None``."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                missed = True
            else:
                self._data.move_to_end(key)
                self.hits += 1
                missed = False
        self._observe("misses" if missed else "hits")
        return None if missed else entry[0]

    def put(self, key: str, value: Any, size: Optional[int] = None) -> None:
        """Store *value* under *key*, evicting LRU entries past the bounds."""
        if size is None:
            size = approximate_size(value)
        evicted = 0
        with self._lock:
            old = self._data.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._data[key] = (value, size)
            self._bytes += size
            self.puts += 1
            while len(self._data) > self.max_entries or (
                self.max_bytes is not None and self._bytes > self.max_bytes
            ):
                _, (_, evicted_size) = self._data.popitem(last=False)
                self._bytes -= evicted_size
                self.evictions += 1
                evicted += 1
        self._observe("puts")
        self._observe("evictions", evicted)

    def remove(self, key: str) -> bool:
        """Drop *key* if present; returns whether it was."""
        with self._lock:
            entry = self._data.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            return True

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:
            removed = len(self._data)
            self._data.clear()
            self._bytes = 0
            return removed

    def keys(self) -> List[str]:
        """Current keys, least- to most-recently used (a snapshot)."""
        with self._lock:
            return list(self._data)

    def items(self) -> List[Tuple[str, Any]]:
        """Snapshot of ``(key, value)`` pairs, LRU to MRU order."""
        with self._lock:
            return [(key, value) for key, (value, _) in self._data.items()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    @property
    def approximate_bytes(self) -> int:
        """Approximate bytes currently held."""
        with self._lock:
            return self._bytes

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: hits/misses/evictions/puts/entries/bytes."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "puts": self.puts,
                "entries": len(self._data),
                "approximate_bytes": self._bytes,
            }
