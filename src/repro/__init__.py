"""repro — reproduction of *Efficient Signed Clique Search in Signed Networks*.

(R.-H. Li et al., ICDE 2018.) The library implements the maximal
(alpha, k)-clique model for signed networks, the MCCore signed-graph
reduction (MCBasic / MCNew), the MSCE branch-and-bound enumerator with
greedy/random branching and top-r search, the baseline community models
of the paper's evaluation (Core, SignedCore, TClique), the signed
conductance quality metric, synthetic dataset generators standing in for
the paper's five real-world datasets, and a full experiment harness
regenerating every table and figure.

Quickstart
----------
>>> from repro import SignedGraph, enumerate_signed_cliques
>>> g = SignedGraph([
...     (1, 2, "+"), (1, 3, "+"), (1, 4, "+"),
...     (2, 3, "+"), (2, 4, "+"), (3, 4, "-"),
... ])
>>> [sorted(c.nodes) for c in enumerate_signed_cliques(g, alpha=2, k=1)]
[[1, 2, 3, 4]]
"""

from repro.core import (
    MSCE,
    AlphaK,
    DynamicSignedCliqueIndex,
    best_signed_clique_for,
    signed_cliques_containing,
    EnumerationResult,
    SearchStats,
    SignedClique,
    brute_force_maximal,
    enumerate_signed_cliques,
    enumerate_with_stats,
    find_mccore,
    is_alpha_k_clique,
    is_maximal,
    mccore_basic,
    mccore_new,
    reference_enumerate,
    top_r_signed_cliques,
)
from repro.fastpath import CompiledGraph, compile_graph
from repro.graphs import (
    NEGATIVE,
    POSITIVE,
    SignedGraph,
    SignedGraphBuilder,
    WeightedGraphBuilder,
    graph_stats,
)
from repro.io import read_signed_edgelist, write_signed_edgelist

__version__ = "1.0.0"

# The serving layer imports repro.io (which reads __version__ for cache
# keys), so it loads last.
from repro.serve import GridResult, SignedCliqueEngine  # noqa: E402

__all__ = [
    "__version__",
    "SignedGraph",
    "SignedGraphBuilder",
    "WeightedGraphBuilder",
    "POSITIVE",
    "NEGATIVE",
    "graph_stats",
    "AlphaK",
    "SignedClique",
    "MSCE",
    "EnumerationResult",
    "SearchStats",
    "is_alpha_k_clique",
    "is_maximal",
    "mccore_basic",
    "mccore_new",
    "find_mccore",
    "enumerate_signed_cliques",
    "enumerate_with_stats",
    "top_r_signed_cliques",
    "brute_force_maximal",
    "reference_enumerate",
    "signed_cliques_containing",
    "best_signed_clique_for",
    "DynamicSignedCliqueIndex",
    "SignedCliqueEngine",
    "GridResult",
    "CompiledGraph",
    "compile_graph",
    "read_signed_edgelist",
    "write_signed_edgelist",
]
