"""Pluggable signed-constraint models for the BBE search skeleton.

Importing this package registers the built-in models:

* ``"msce"`` — the paper's maximal (alpha, k)-cliques
  (:class:`~repro.models.alpha_k.AlphaKConstraint`, the default);
* ``"balanced"`` — maximal balanced cliques per Chen et al.
  (:class:`~repro.models.balanced.BalancedConstraint`).

See :mod:`repro.models.base` for the :class:`SignedConstraint`
interface and how to add a model.
"""

from repro.models.alpha_k import AlphaKConstraint
from repro.models.balanced import BalancedConstraint, balanced_sides, is_balanced_clique
from repro.models.base import (
    DEFAULT_MODEL,
    MODEL_ENV,
    MODELS,
    FrameOps,
    SignedConstraint,
    available_models,
    get_model,
    make_constraint,
    register_model,
    resolve_model,
)

__all__ = [
    "AlphaKConstraint",
    "BalancedConstraint",
    "DEFAULT_MODEL",
    "FrameOps",
    "MODEL_ENV",
    "MODELS",
    "SignedConstraint",
    "available_models",
    "balanced_sides",
    "get_model",
    "is_balanced_clique",
    "make_constraint",
    "register_model",
    "resolve_model",
]
