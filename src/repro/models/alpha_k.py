"""The paper's (alpha, k)-clique model as a :class:`SignedConstraint`.

This module is the MSCE logic that used to be hard-wired into
:class:`repro.fastpath.search.FrameSearch` and
:meth:`repro.core.bbe.MSCE._search_component`, extracted verbatim: the
same pruning rules in the same order with the same arithmetic, so the
refactor is bit-identical — cliques *and* :class:`~repro.core.bbe.SearchStats`
match the pre-framework enumerator across every backend and worker
count (the differential suites enforce this).

The three pruning rules (paper Section IV) map onto the framework as:

* ``prune_bound`` — ceil(alpha*k)-core pruning via the tracked ICore
  (:func:`repro.fastpath.kernels.icore_tracked_fast` on the compiled
  path, :func:`repro.algorithms.kcore.icore_tracked` on the pure path);
* ``update_budgets`` — clique-constraint and negative-edge-constraint
  pruning of the include branch (the native kernel tier's
  ``branch_keep`` on the compiled path when the backend is native);
* ``feasible`` — the inline Definition-1 check driving early
  termination, using the tracked positive-degree shortcut when the
  degree map is threaded.

Parameters: ``alpha`` and ``k`` exactly as in the paper —
``positive_threshold = ceil(alpha * k)`` positive neighbours required
per member, at most ``k`` negative neighbours tolerated per member.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.algorithms.kcore import icore_tracked
from repro.core.cliques import is_alpha_k_clique
from repro.core.maxtest import make_maxtest as _make_alpha_k_maxtest
from repro.fastpath.bitset import bit_count, iter_bits
from repro.fastpath.kernels import icore_tracked_fast
from repro.graphs.signed_graph import Node, SignedGraph
from repro.models.base import FrameOps, SignedConstraint, register_model


@register_model
class AlphaKConstraint(SignedConstraint):
    """Maximal (alpha, k)-cliques (Definition 1/2): the MSCE model."""

    name = "msce"
    tracks_degrees = True
    supports_queries = True

    def feasible(self, graph: SignedGraph, members: Iterable[Node]) -> bool:
        return is_alpha_k_clique(graph, set(members), self.params)

    def make_maxtest(self, kind: str):
        return _make_alpha_k_maxtest(kind)

    def audit_check(self, graph: SignedGraph, clique) -> None:
        # Keep the historical audit: the structured verify raises a
        # GraphError naming the violated constraint and witness node.
        clique.verify(graph)

    def bind_masks(self, search) -> "AlphaKMaskOps":
        return AlphaKMaskOps(search)

    def bind_graph(self, msce) -> "AlphaKGraphOps":
        return AlphaKGraphOps(msce)


class AlphaKMaskOps(FrameOps):
    """MSCE frame operations over compiled-index bitmasks."""

    __slots__ = (
        "msce",
        "compiled",
        "threshold",
        "neg_budget",
        "pos_masks",
        "neg_masks",
        "adj_masks",
        "native",
        "packed_neg",
        "packed_adj",
        "scratch",
    )

    def __init__(self, search):
        msce = search.msce
        compiled = search.compiled
        self.msce = msce
        self.compiled = compiled
        self.threshold = msce.params.positive_threshold
        self.neg_budget = msce.params.k
        self.pos_masks = compiled.masks("positive")
        self.neg_masks = compiled.masks("negative")
        self.adj_masks = compiled.masks("all")
        #: Native tier: run the include-branch candidate filter through
        #: the jitted kernel (bit-identical keep set and counter deltas;
        #: see :mod:`repro.fastpath.native`). The enumerator's resolved
        #: backend is already downgraded when numba is unusable.
        self.native = getattr(msce, "backend", None) == "native"
        if self.native:
            import numpy as _np

            self.packed_neg = compiled.packed("negative")
            self.packed_adj = compiled.packed("all")
            self.scratch = _np.zeros(self.packed_adj.shape[1] << 6, dtype=_np.int64)
        else:
            self.packed_neg = None
            self.packed_adj = None
            self.scratch = None

    def prune_bound(
        self, candidates: int, included: int, degrees: Optional[Dict[int, int]]
    ) -> Tuple[bool, int, Optional[Dict[int, int]]]:
        if not self.msce.core_pruning:
            return True, candidates, degrees
        return icore_tracked_fast(
            self.compiled, included, self.threshold, candidates, degrees, sign="positive"
        )

    def feasible(self, members: int, degrees: Optional[Dict[int, int]]) -> bool:
        # Mirror of the pure inline Definition-1 check (see AlphaKGraphOps).
        if not members:
            return False
        neg_masks = self.neg_masks
        need = bit_count(members) - 1
        budget = self.neg_budget
        threshold = self.threshold
        if degrees is not None:
            for i in iter_bits(members):
                positive = degrees[i]
                if positive < threshold:
                    return False
                expected_negative = need - positive
                if expected_negative < 0 or expected_negative > budget:
                    return False
                if bit_count(neg_masks[i] & members) != expected_negative:
                    return False
            return True
        pos_masks = self.pos_masks
        adj_masks = self.adj_masks
        for i in iter_bits(members):
            if bit_count(adj_masks[i] & members) < need:
                return False
            if bit_count(neg_masks[i] & members) > budget:
                return False
            if threshold and bit_count(pos_masks[i] & members) < threshold:
                return False
        return True

    def update_budgets(
        self, candidates: int, included: int, new_included: int, branch: int
    ) -> Tuple[int, int, int]:
        msce = self.msce
        budget = self.neg_budget
        neg_masks = self.neg_masks
        if self.native:
            from repro.fastpath import native, packed as packed_mod

            n = self.compiled.n
            keep, clique_pruned, negative_pruned = native.branch_keep(
                self.packed_neg,
                self.packed_adj[branch],
                packed_mod.pack_mask(candidates, n),
                packed_mod.pack_mask(new_included, n),
                budget,
                msce.clique_pruning,
                msce.negative_pruning,
                self.scratch,
            )
            return keep, clique_pruned, negative_pruned
        keep = new_included
        clique_pruned = 0
        negative_pruned = 0
        adjacency = self.adj_masks[branch]
        negative_inside = {
            i: bit_count(neg_masks[i] & new_included) for i in iter_bits(new_included)
        }
        for i in iter_bits(candidates & ~new_included):
            if msce.clique_pruning and not (adjacency >> i) & 1:
                clique_pruned += 1
                continue
            if msce.negative_pruning:
                negatives = neg_masks[i] & new_included
                if bit_count(negatives) > budget or any(
                    negative_inside[member] + 1 > budget for member in iter_bits(negatives)
                ):
                    negative_pruned += 1
                    continue
            keep |= 1 << i
        return keep, clique_pruned, negative_pruned

    def exclude_degrees(
        self, branch: int, exclude_candidates: int, degrees: Optional[Dict[int, int]]
    ) -> Optional[Dict[int, int]]:
        if degrees is None:
            return None
        exclude_degrees: Dict[int, int] = dict(degrees)
        exclude_degrees.pop(branch, None)
        for i in iter_bits(self.pos_masks[branch] & exclude_candidates):
            exclude_degrees[i] -= 1
        return exclude_degrees

    def include_degrees(
        self, candidates: int, keep: int, degrees: Optional[Dict[int, int]]
    ) -> Optional[Dict[int, int]]:
        # Same decremental-vs-recompute policy as the pure search
        # (recompute when more than a third was pruned).
        if degrees is None:
            return None
        pos_masks = self.pos_masks
        removed = candidates & ~keep
        if 3 * bit_count(removed) > bit_count(keep):
            return None
        include_degrees: Dict[int, int] = dict(degrees)
        for i in iter_bits(removed):
            include_degrees.pop(i, None)
        for i in iter_bits(removed):
            for j in iter_bits(pos_masks[i] & keep):
                include_degrees[j] -= 1
        return include_degrees

    def branch_degree(
        self, node: int, candidates: int, degrees: Optional[Dict[int, int]]
    ) -> int:
        # MSCE-G: minimum positive degree within the candidate set. The
        # degree map is the one maintained by the tracked core pruning,
        # so no degrees are recomputed here; it is only absent in
        # ablation modes.
        if degrees is not None:
            return degrees[node]
        return bit_count(self.pos_masks[node] & candidates)


class AlphaKGraphOps(FrameOps):
    """MSCE frame operations over node sets (the pure-Python path)."""

    __slots__ = ("msce", "graph", "threshold", "neg_budget")

    def __init__(self, msce):
        self.msce = msce
        self.graph = msce.graph
        self.threshold = msce.params.positive_threshold
        self.neg_budget = msce.params.k

    def prune_bound(
        self,
        candidates: Set[Node],
        included,
        degrees: Optional[Dict[Node, int]],
    ) -> Tuple[bool, Set[Node], Optional[Dict[Node, int]]]:
        if not self.msce.core_pruning:
            return True, candidates, degrees
        return icore_tracked(
            self.graph, included, self.threshold, candidates, degrees, sign="positive"
        )

    def feasible(
        self, members: Set[Node], degrees: Optional[Dict[Node, int]]
    ) -> bool:
        # Inline Definition-1 check, run once per recursion. With the
        # tracked positive-degree map (exact within-`members` counts
        # maintained by the core pruning), node validity reduces to
        # integer tests plus ONE negative intersection: a member is
        # adjacent to all others iff its positive degree p and its
        # internal negative count n satisfy p + n == |members| - 1,
        # and the constraints demand p >= threshold, n <= k.
        graph = self.graph
        threshold = self.threshold
        budget = self.neg_budget
        if not members:
            return False
        need = len(members) - 1
        if degrees is not None:
            for node in members:
                positive = degrees[node]
                if positive < threshold:
                    return False
                expected_negative = need - positive
                if expected_negative < 0 or expected_negative > budget:
                    return False
                if len(graph.negative_neighbors(node) & members) != expected_negative:
                    return False
            return True
        for node in members:
            if len(graph.neighbor_keys(node) & members) < need:
                return False
            if len(graph.negative_neighbors(node) & members) > budget:
                return False
            if threshold and len(graph.positive_neighbors(node) & members) < threshold:
                return False
        return True

    def update_budgets(
        self, candidates: Set[Node], included, new_included, branch: Node
    ) -> Tuple[Set[Node], int, int]:
        msce = self.msce
        graph = self.graph
        budget = self.neg_budget
        keep: Set[Node] = set(new_included)
        clique_pruned = 0
        negative_pruned = 0
        adjacency = graph.neighbor_keys(branch)
        negative_inside = {
            node: len(graph.negative_neighbors(node) & new_included)
            for node in new_included
        }
        for node in candidates:
            if node in new_included:
                continue
            if msce.clique_pruning and node not in adjacency:
                clique_pruned += 1
                continue
            if msce.negative_pruning:
                negatives = graph.negative_neighbors(node) & new_included
                if len(negatives) > budget or any(
                    negative_inside[member] + 1 > budget for member in negatives
                ):
                    negative_pruned += 1
                    continue
            keep.add(node)
        return keep, clique_pruned, negative_pruned

    def exclude_degrees(
        self,
        branch: Node,
        exclude_candidates: Set[Node],
        degrees: Optional[Dict[Node, int]],
    ) -> Optional[Dict[Node, int]]:
        if degrees is None:
            return None
        exclude_degrees: Dict[Node, int] = dict(degrees)
        exclude_degrees.pop(branch, None)
        for neighbor in self.graph.positive_neighbors(branch) & exclude_candidates:
            exclude_degrees[neighbor] -= 1
        return exclude_degrees

    def include_degrees(
        self,
        candidates: Set[Node],
        keep: Set[Node],
        degrees: Optional[Dict[Node, int]],
    ) -> Optional[Dict[Node, int]]:
        # Update the degree map decrementally when few nodes were
        # pruned; otherwise let the child recompute from scratch.
        if degrees is None:
            return None
        graph = self.graph
        removed = candidates - keep
        if 3 * len(removed) > len(keep):
            return None
        include_degrees: Dict[Node, int] = dict(degrees)
        for node in removed:
            include_degrees.pop(node, None)
        for node in removed:
            for neighbor in graph.positive_neighbors(node) & keep:
                include_degrees[neighbor] -= 1
        return include_degrees

    def branch_degree(
        self, node: Node, candidates: Set[Node], degrees: Optional[Dict[Node, int]]
    ) -> int:
        if degrees is not None:
            return degrees[node]
        return len(self.graph.positive_neighbors(node) & candidates)
