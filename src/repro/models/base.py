"""The signed-constraint framework: pluggable cohesion models for BBE.

The branch-and-bound skeleton this repo builds for MSCE — degeneracy
ordered root branching over reduced components, resumable two-integer
frames, work stealing, fault tolerance, observability, serving caches —
is shared by a family of signed-cohesion models (ROADMAP item 2).
What actually differs between models is a small set of rules:

* **feasibility** — is a member set a valid clique under the model?
* **budget updates** — after including a branch node, which candidates
  survive into the child frame (the model's pruning rules)?
* **prune bound** — can a whole subspace be discarded up front?
* **reduction rule** — which pre-search graph reduction is sound?
* **maximality test** — is a found clique maximal in the whole graph?

:class:`SignedConstraint` packages those rules. The generic searches
(:class:`repro.fastpath.search.FrameSearch` on the compiled bitset path,
:meth:`repro.core.bbe.MSCE._search_component` on the pure path) call
through it, so one new module — a :class:`SignedConstraint` subclass
registered with :func:`register_model` — inherits the CompiledGraph CSR,
the work-stealing scheduler, fault tolerance, ``repro.obs``, the serve
cache and the HTTP layer for free.

Because the search runs in two data layouts, a constraint binds its
rules twice: :meth:`SignedConstraint.bind_masks` returns the frame
operations over integer bitmasks (compiled node indices) and
:meth:`SignedConstraint.bind_graph` the same operations over node sets.
Both bindings must implement the :class:`FrameOps` contract and must
agree exactly — the cross-space differential tests enforce it.

Model selection flows through one resolver, :func:`resolve_model`,
mirroring :func:`repro.fastpath.backend.resolve_backend`: an explicit
``model=`` argument wins over the ``REPRO_MODEL`` environment variable,
which wins over the default (``"msce"``). The resolved name is part of
the serve-cache entry key and is shipped to scheduler workers, so a
parallel run always applies one consistent model.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Optional, Type

from repro.core.params import AlphaK
from repro.exceptions import ParameterError
from repro.graphs.signed_graph import Node, SignedGraph

#: Environment variable naming the default model for the process.
MODEL_ENV = "REPRO_MODEL"

#: The default model: the paper's maximal (alpha, k)-clique enumeration.
DEFAULT_MODEL = "msce"

#: Registry of model name -> constraint class (see :func:`register_model`).
MODELS: Dict[str, Type["SignedConstraint"]] = {}


class FrameOps:
    """Per-run frame operations of one constraint in one data layout.

    A binding holds everything the hot loop needs (masks, budgets,
    flags) resolved once, then processes frames through these methods.
    ``candidates`` / ``included`` / ``members`` are bitmasks over
    compiled node indices in the mask-space binding and node sets in
    the graph-space binding; ``degrees`` is the model's per-frame
    threaded state (``None`` when the model threads nothing).

    The contract every binding must honour:

    ``prune_bound(candidates, included, degrees)``
        Returns ``(flag, candidates, degrees)``. ``flag=False`` prunes
        the whole subspace (counted as a core prune); otherwise the
        possibly-shrunk candidates/degrees replace the frame's.
    ``feasible(members, degrees)``
        ``True`` iff *members* is a valid clique of the model —
        the early-termination check, run once per frame on the full
        candidate set. Excludes reporting thresholds that supersets
        inherit (see :meth:`SignedConstraint.reportable`).
    ``update_budgets(candidates, included, new_included, branch)``
        The include-branch candidate filter. Returns
        ``(keep, clique_pruned, negative_pruned)``: the surviving
        candidate set (a superset of ``new_included``) plus the two
        pruning-counter deltas.
    ``exclude_degrees(branch, exclude_candidates, degrees)``
        Threaded state for the exclude child ``(candidates - branch)``.
    ``include_degrees(candidates, keep, degrees)``
        Threaded state for the include child, or ``None`` to make the
        child recompute from scratch.
    ``branch_degree(node, candidates, degrees)``
        The greedy selector's score for *node* (minimum wins; ties are
        broken by node ``repr`` rank in the generic selectors).
    """

    __slots__ = ()


class SignedConstraint:
    """One signed-cohesion model: the rules the generic BBE search calls.

    Subclasses set :attr:`name`, implement the graph-level predicates
    (:meth:`feasible`, :meth:`make_maxtest`) and return their
    :class:`FrameOps` bindings from :meth:`bind_masks` /
    :meth:`bind_graph`. Everything else has model-neutral defaults.

    Parameters are the repo-wide :class:`~repro.core.params.AlphaK`
    pair; each model documents its own interpretation (MSCE reads both,
    the balanced model reads ``k`` as the minimum side size).
    """

    #: Registry name; also the cache-key segment and the span attribute.
    name: str = ""

    #: Whether frames thread a tracked-degree map (MSCE's positive
    #: degrees). Models that thread nothing skip the bookkeeping.
    tracks_degrees: bool = True

    #: Whether the query-driven community search (:mod:`repro.core.query`)
    #: understands this model's seeded subspaces.
    supports_queries: bool = False

    def __init__(self, params: AlphaK):
        self.params = params

    # ------------------------------------------------------------------
    # Graph-level predicates (oracle, audit, maximality)
    # ------------------------------------------------------------------
    def feasible(self, graph: SignedGraph, members: Iterable[Node]) -> bool:
        """``True`` iff *members* is a valid, reportable clique of the model.

        This is the differential-testing predicate: the brute-force
        oracle (:func:`repro.core.naive.brute_force_constraint`) sweeps
        it over every subset, so it must include *all* of the model's
        requirements — including reporting thresholds the in-search
        :meth:`FrameOps.feasible` omits.
        """
        raise NotImplementedError

    def reportable(self, graph: SignedGraph, members: Iterable[Node]) -> bool:
        """Emission gate: thresholds every superset inherits.

        The search may discover maximal cliques that fail a reporting
        threshold (the balanced model's minimum side size); they are
        still search leaves but are not emitted. Sound exactly when the
        threshold is superset-monotone, so maximality is unaffected.
        """
        return True

    def make_maxtest(self, kind: str) -> Callable:
        """Return the maximality predicate ``f(graph, members, params)``.

        *kind* is the enumerator's ``maxtest`` knob (``"exact"`` /
        ``"paper"``); models without a heuristic variant may map both
        kinds to the exact test.
        """
        raise NotImplementedError

    def audit_check(self, graph: SignedGraph, clique) -> None:
        """Raise unless *clique* satisfies the model (``audit=True`` hook)."""
        if not self.feasible(graph, clique.nodes):
            raise AssertionError(
                f"{self.name} audit: emitted clique violates the model: "
                f"{sorted(map(repr, clique.nodes))}"
            )

    # ------------------------------------------------------------------
    # Search configuration
    # ------------------------------------------------------------------
    def reduction_rule(self, method: str) -> str:
        """Map the user's reduction *method* to one sound for this model.

        MSCE accepts the paper's ladder unchanged; models whose cliques
        are not (alpha, k)-cliques must degrade to ``"none"`` (the
        survivor set would otherwise drop valid members).
        """
        return method

    def search_min_size(self, min_size: Optional[int]) -> Optional[int]:
        """The effective subspace size floor (``None`` = no floor).

        Combines the user's ``min_size`` with any model-implied bound
        (a reportable balanced clique has at least ``2 * tau`` members).
        Used for subspace pruning only; emission gating stays with the
        user's ``min_size`` and :meth:`reportable`.
        """
        return min_size

    # ------------------------------------------------------------------
    # Frame-operation bindings
    # ------------------------------------------------------------------
    def bind_masks(self, search) -> FrameOps:
        """Bind the mask-space (compiled bitset) frame operations.

        *search* is the :class:`repro.fastpath.search.FrameSearch`
        driving the run; the binding may read its compiled graph and
        the enumerator's knobs.
        """
        raise NotImplementedError

    def bind_graph(self, msce) -> FrameOps:
        """Bind the graph-space (pure Python set) frame operations."""
        raise NotImplementedError


def register_model(cls: Type[SignedConstraint]) -> Type[SignedConstraint]:
    """Class decorator: add *cls* to the :data:`MODELS` registry."""
    if not cls.name:
        raise ParameterError(f"model class {cls.__name__} must set a name")
    MODELS[cls.name] = cls
    return cls


def available_models() -> tuple:
    """The registered model names, sorted."""
    return tuple(sorted(MODELS))


def resolve_model(model: Optional[str] = None) -> str:
    """Resolve a model request to the registered name that will run.

    Precedence: explicit *model* argument > ``REPRO_MODEL`` env >
    :data:`DEFAULT_MODEL`. Unknown names raise
    :class:`~repro.exceptions.ParameterError`.
    """
    if model is None:
        model = os.environ.get(MODEL_ENV, "").strip() or DEFAULT_MODEL
    if model not in MODELS:
        raise ParameterError(
            f"unknown model {model!r}; expected one of {list(available_models())}"
        )
    return model


def get_model(name: str) -> Type[SignedConstraint]:
    """Return the constraint class registered under *name*."""
    return MODELS[resolve_model(name)]


def make_constraint(model: Optional[str], params: AlphaK) -> SignedConstraint:
    """Instantiate the resolved constraint for *params*."""
    return MODELS[resolve_model(model)](params)
