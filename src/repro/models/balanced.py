"""Maximal balanced clique enumeration (Chen et al., arXiv:2204.00515).

A **balanced clique** is a clique of the sign-blind graph whose members
split into two sides ``(L, R)`` with every intra-side edge positive and
every cross-side edge negative — the clique analogue of structural
balance. The model here enumerates the *maximal* balanced cliques whose
smaller side has at least ``tau`` members.

Parameter mapping: the repo-wide :class:`~repro.core.params.AlphaK`
pair is reused with ``k`` read as ``tau`` (the minimum side size);
``alpha`` is ignored. ``tau = 0`` reports every maximal balanced clique
(one-sided all-positive cliques included).

Why the MSCE skeleton fits without new frame state:

* Inside a clique the two-sided partition is determined by edge signs
  to any fixed member (the *anchor*) — positive edge means same side,
  negative means other side — and is unique up to swapping ``L`` and
  ``R``. All tests below are swap-invariant, so the anchor choice is
  unobservable and a frame needs nothing beyond the usual
  ``(candidates, included)`` pair.
* The search invariant matches MSCE's: ``included`` is always a
  balanced clique and every candidate is individually compatible with
  it, so ``candidates == included`` implies the early-termination check
  fires — the generic skeleton's leaf handling carries over.
* Maximality: any balanced superset of a balanced clique ``C`` induces
  ``C``'s own partition on ``C``, so each side can only grow. Hence a
  tau-satisfying clique is maximal among tau-satisfying cliques iff it
  is maximal among *all* balanced cliques — the search enumerates
  maximal balanced cliques and applies the tau gate only at emission
  (:meth:`BalancedConstraint.reportable`), and the 2*tau size floor
  (:meth:`BalancedConstraint.search_min_size`) prunes subspaces without
  affecting the reported set.

The include-branch filter keeps a candidate ``c`` when it is adjacent
to the branch node ``v`` and the triangle ``(anchor, c, v)`` is
balanced (an even number of negative edges), which is exactly
"``sign(c, v)`` matches their relative sides". Dropped candidates are
counted as ``clique_pruned_candidates`` (non-adjacent) and
``negative_pruned_candidates`` (sign-inconsistent), reusing the MSCE
counter schema so stats plumbing, cache payloads and the bit-identity
contract across backends and worker counts are unchanged. No reduction
is sound for this model (MSCE's cores assume the (alpha, k)
constraints), so :meth:`BalancedConstraint.reduction_rule` degrades
every method to ``"none"``; component decomposition still applies
because a balanced clique is connected.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.params import AlphaK
from repro.fastpath.bitset import bit_count, iter_bits
from repro.graphs.signed_graph import Node, SignedGraph
from repro.models.base import FrameOps, SignedConstraint, register_model


def balanced_sides(
    graph: SignedGraph, members: Iterable[Node]
) -> Optional[Tuple[Set[Node], Set[Node]]]:
    """Return the two sides of *members*, or ``None`` if not balanced.

    The partition is anchored at the ``repr``-smallest member (which
    lands in the first side); it is unique up to swapping sides.
    """
    member_set = set(members)
    if not member_set:
        return None
    anchor = min(member_set, key=repr)
    side_a = (graph.positive_neighbors(anchor) & member_set) | {anchor}
    side_b = graph.negative_neighbors(anchor) & member_set
    if side_a | side_b != member_set:
        return None
    for node in member_set:
        same = side_a if node in side_a else side_b
        if graph.positive_neighbors(node) & member_set != same - {node}:
            return None
        if graph.negative_neighbors(node) & member_set != member_set - same:
            return None
    return side_a, side_b


def is_balanced_clique(
    graph: SignedGraph, members: Iterable[Node], tau: int = 0
) -> bool:
    """``True`` iff *members* is a balanced clique with both sides >= *tau*."""
    sides = balanced_sides(graph, members)
    if sides is None:
        return False
    side_a, side_b = sides
    return min(len(side_a), len(side_b)) >= tau


def _balanced_is_maximal(graph: SignedGraph, members, params: AlphaK) -> bool:
    """Exact maximality: no outside node joins either side of *members*.

    A node ``u`` extends the clique iff it is adjacent to every member
    and its positive neighbours inside the clique are exactly one side
    (it then joins that side, its negatives covering the other).
    Assumes *members* is a balanced clique, as the enumerator
    guarantees. The tau threshold plays no role here — supersets
    inherit it — so this predicate serves both maxtest kinds.
    """
    member_set = set(members)
    anchor = min(member_set, key=repr)
    side_a = (graph.positive_neighbors(anchor) & member_set) | {anchor}
    side_b = member_set - side_a
    for u in graph.neighbor_keys(anchor) - member_set:
        pos_u = graph.positive_neighbors(u) & member_set
        neg_u = graph.negative_neighbors(u) & member_set
        if pos_u | neg_u != member_set:
            continue
        if pos_u == side_a or pos_u == side_b:
            return False
    return True


@register_model
class BalancedConstraint(SignedConstraint):
    """Maximal balanced cliques with minimum side size ``tau = params.k``."""

    name = "balanced"
    tracks_degrees = False
    supports_queries = False

    @property
    def tau(self) -> int:
        return self.params.k

    def feasible(self, graph: SignedGraph, members: Iterable[Node]) -> bool:
        return is_balanced_clique(graph, members, self.tau)

    def reportable(self, graph: SignedGraph, members: Iterable[Node]) -> bool:
        sides = balanced_sides(graph, members)
        if sides is None:  # pragma: no cover - the search only emits balanced sets
            return False
        return min(len(sides[0]), len(sides[1])) >= self.tau

    def make_maxtest(self, kind: str):
        # No heuristic variant: "paper" (MSCE's single-extension test)
        # has no analogue here, so both kinds run the exact test.
        return _balanced_is_maximal

    def reduction_rule(self, method: str) -> str:
        return "none"

    def search_min_size(self, min_size: Optional[int]) -> Optional[int]:
        floor = 2 * self.tau
        if floor <= 1:
            return min_size
        return floor if min_size is None else max(min_size, floor)

    def bind_masks(self, search) -> "BalancedMaskOps":
        return BalancedMaskOps(search)

    def bind_graph(self, msce) -> "BalancedGraphOps":
        return BalancedGraphOps(msce)


class BalancedMaskOps(FrameOps):
    """Balanced-clique frame operations over compiled-index bitmasks."""

    __slots__ = ("pos_masks", "neg_masks", "adj_masks")

    def __init__(self, search):
        compiled = search.compiled
        self.pos_masks = compiled.masks("positive")
        self.neg_masks = compiled.masks("negative")
        self.adj_masks = compiled.masks("all")

    def prune_bound(
        self, candidates: int, included: int, degrees
    ) -> Tuple[bool, int, None]:
        # No core analogue is sound; the generic size floor
        # (search_min_size) is the model's only subspace bound.
        return True, candidates, None

    def feasible(self, members: int, degrees) -> bool:
        if not members:
            return False
        pos_masks = self.pos_masks
        neg_masks = self.neg_masks
        anchor = (members & -members).bit_length() - 1
        side_a = (members & pos_masks[anchor]) | (1 << anchor)
        side_b = members & neg_masks[anchor]
        if side_a | side_b != members:
            return False
        for i in iter_bits(members):
            bit = 1 << i
            same = side_a if side_a & bit else side_b
            if pos_masks[i] & members != same & ~bit:
                return False
            if neg_masks[i] & members != members ^ same:
                return False
        return True

    def update_budgets(
        self, candidates: int, included: int, new_included: int, branch: int
    ) -> Tuple[int, int, int]:
        free = candidates & ~new_included
        adjacent = free & self.adj_masks[branch]
        clique_pruned = bit_count(free) - bit_count(adjacent)
        if included:
            anchor = (included & -included).bit_length() - 1
            pos_a = self.pos_masks[anchor]
            neg_a = self.neg_masks[anchor]
            pos_v = self.pos_masks[branch]
            neg_v = self.neg_masks[branch]
            if (pos_a >> branch) & 1:  # branch on the anchor's side
                consistent = (pos_a & pos_v) | (neg_a & neg_v)
            else:
                consistent = (pos_a & neg_v) | (neg_a & pos_v)
            keep_free = free & consistent
        else:
            keep_free = adjacent
        negative_pruned = bit_count(adjacent) - bit_count(keep_free)
        return new_included | keep_free, clique_pruned, negative_pruned

    def exclude_degrees(self, branch: int, exclude_candidates: int, degrees) -> None:
        return None

    def include_degrees(self, candidates: int, keep: int, degrees) -> None:
        return None

    def branch_degree(self, node: int, candidates: int, degrees) -> int:
        # Greedy peels the candidate of minimum sign-blind degree
        # inside R — a degeneracy-style order on the underlying clique.
        return bit_count(self.adj_masks[node] & candidates)


class BalancedGraphOps(FrameOps):
    """Balanced-clique frame operations over node sets (pure path)."""

    __slots__ = ("graph",)

    def __init__(self, msce):
        self.graph = msce.graph

    def prune_bound(self, candidates, included, degrees):
        return True, candidates, None

    def feasible(self, members: Set[Node], degrees) -> bool:
        return balanced_sides(self.graph, members) is not None

    def update_budgets(
        self, candidates: Set[Node], included, new_included, branch: Node
    ) -> Tuple[Set[Node], int, int]:
        graph = self.graph
        keep: Set[Node] = set(new_included)
        clique_pruned = 0
        negative_pruned = 0
        pos_v = graph.positive_neighbors(branch)
        neg_v = graph.negative_neighbors(branch)
        if included:
            anchor = min(included, key=repr)
            pos_a = graph.positive_neighbors(anchor)
            branch_same = branch in pos_a
        else:
            pos_a = None
            branch_same = True
        for node in candidates:
            if node in new_included:
                continue
            positive = node in pos_v
            if not positive and node not in neg_v:
                clique_pruned += 1
                continue
            if pos_a is not None and positive != ((node in pos_a) == branch_same):
                negative_pruned += 1
                continue
            keep.add(node)
        return keep, clique_pruned, negative_pruned

    def exclude_degrees(self, branch, exclude_candidates, degrees) -> None:
        return None

    def include_degrees(self, candidates, keep, degrees) -> None:
        return None

    def branch_degree(self, node: Node, candidates: Set[Node], degrees) -> int:
        return len(self.graph.neighbor_keys(node) & candidates)
