"""Partition- and cover-comparison metrics: NMI and the omega index.

Used to score community detection against ground truth (e.g. the
LFR-style benchmark of :mod:`repro.generators.lfr_like`):

* :func:`nmi` — normalized mutual information between two *partitions*
  (disjoint covers), the standard community-detection score;
* :func:`omega_index` — the chance-corrected pair-agreement measure for
  *overlapping* covers (Collins & Dent), appropriate for clique results
  where nodes belong to several communities;
* :func:`coverage` — fraction of nodes assigned by a cover.

Both scores are 1.0 for identical inputs; NMI is 0 for independent
partitions, omega is 0 at chance-level agreement (it can be negative).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Set

from repro.exceptions import ParameterError
from repro.graphs.signed_graph import Node


def _as_partition(cover: Sequence[Iterable[Node]]) -> List[Set[Node]]:
    sets = [set(block) for block in cover if block]
    seen: Set[Node] = set()
    for block in sets:
        overlap = seen & block
        if overlap:
            raise ParameterError(
                f"nmi requires disjoint blocks; nodes in several: {sorted(map(repr, overlap))[:5]}"
            )
        seen |= block
    return sets


def nmi(cover_a: Sequence[Iterable[Node]], cover_b: Sequence[Iterable[Node]]) -> float:
    """Normalized mutual information between two partitions.

    Normalisation: arithmetic mean of the two entropies (the common
    convention). Partitions must cover the same node set; single-block
    against single-block degenerates to 1.0 when identical, and 0.0
    entropy cases are handled explicitly.
    """
    blocks_a = _as_partition(cover_a)
    blocks_b = _as_partition(cover_b)
    universe_a = set().union(*blocks_a) if blocks_a else set()
    universe_b = set().union(*blocks_b) if blocks_b else set()
    if universe_a != universe_b:
        raise ParameterError("partitions must cover the same node set")
    total = len(universe_a)
    if total == 0:
        return 1.0

    def entropy(blocks: List[Set[Node]]) -> float:
        value = 0.0
        for block in blocks:
            p = len(block) / total
            value -= p * math.log(p)
        return value

    h_a = entropy(blocks_a)
    h_b = entropy(blocks_b)
    mutual = 0.0
    for block_a in blocks_a:
        for block_b in blocks_b:
            joint = len(block_a & block_b)
            if joint == 0:
                continue
            p_joint = joint / total
            mutual += p_joint * math.log(
                p_joint / ((len(block_a) / total) * (len(block_b) / total))
            )
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    denominator = (h_a + h_b) / 2
    if denominator == 0.0:
        return 0.0
    return max(0.0, min(1.0, mutual / denominator))


def _pair_cooccurrence(cover: Sequence[Iterable[Node]]) -> Counter:
    """Count, per unordered node pair, how many blocks contain both."""
    counts: Counter = Counter()
    for block in cover:
        members = sorted(set(block), key=repr)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                counts[(members[i], members[j])] += 1
    return counts


def omega_index(
    cover_a: Sequence[Iterable[Node]],
    cover_b: Sequence[Iterable[Node]],
    universe: Iterable[Node],
) -> float:
    """Omega index between two (possibly overlapping) covers.

    Agreement = pairs sharing the same co-membership *count* in both
    covers, corrected for chance. 1.0 for identical covers; ~0 for
    independent ones. *universe* fixes the node population (pairs in no
    block count as co-membership 0).
    """
    nodes = sorted(set(universe), key=repr)
    total_pairs = len(nodes) * (len(nodes) - 1) // 2
    if total_pairs == 0:
        return 1.0
    counts_a = _pair_cooccurrence(cover_a)
    counts_b = _pair_cooccurrence(cover_b)

    # Distribution of co-membership levels per cover.
    level_counts_a: Counter = Counter(counts_a.values())
    level_counts_b: Counter = Counter(counts_b.values())
    level_counts_a[0] = total_pairs - sum(level_counts_a.values())
    level_counts_b[0] = total_pairs - sum(level_counts_b.values())

    # Observed agreement: pairs with identical level in both covers.
    agree = 0
    touched = set(counts_a) | set(counts_b)
    for pair in touched:
        if counts_a.get(pair, 0) == counts_b.get(pair, 0):
            agree += 1
    agree += total_pairs - len(touched)  # untouched pairs agree at level 0
    observed = agree / total_pairs

    expected = sum(
        (level_counts_a.get(level, 0) / total_pairs)
        * (level_counts_b.get(level, 0) / total_pairs)
        for level in set(level_counts_a) | set(level_counts_b)
    )
    if expected >= 1.0:
        return 1.0 if observed >= 1.0 else 0.0
    return (observed - expected) / (1.0 - expected)


def coverage(cover: Sequence[Iterable[Node]], universe: Iterable[Node]) -> float:
    """Fraction of *universe* assigned to at least one block."""
    nodes = set(universe)
    if not nodes:
        return 1.0
    covered = set()
    for block in cover:
        covered |= set(block)
    return len(covered & nodes) / len(nodes)
