"""Complex-discovery precision (Exp-10, Fig. 11).

The paper scores each discovered community against ground-truth protein
complexes: ``precision = TP / (TP + FP)`` where TP counts members of the
best-matching true complex and FP the remaining members. The figure
reports the average precision of the top-30 communities per model.

:func:`average_precision` reproduces that protocol; recall and F1 are
provided as extensions (the paper reports precision only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set

from repro.graphs.signed_graph import Node


@dataclass(frozen=True)
class MatchScore:
    """Best-match scores of one predicted community."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def best_match(
    predicted: Iterable[Node], complexes: Sequence[Set[Node]]
) -> MatchScore:
    """Score *predicted* against its best-overlapping ground-truth complex.

    The best match maximises true positives (|overlap|); ties resolve to
    the higher precision. An empty prediction or empty ground truth
    scores zero.
    """
    members = set(predicted)
    if not members or not complexes:
        return MatchScore(precision=0.0, recall=0.0)
    best = MatchScore(precision=0.0, recall=0.0)
    best_tp = -1
    for truth in complexes:
        tp = len(members & truth)
        score = MatchScore(
            precision=tp / len(members),
            recall=tp / len(truth) if truth else 0.0,
        )
        if tp > best_tp or (tp == best_tp and score.precision > best.precision):
            best = score
            best_tp = tp
    return best


def average_precision(
    communities: Sequence[Iterable[Node]], complexes: Sequence[Set[Node]]
) -> float:
    """Mean best-match precision over *communities* (the Fig-11 metric).

    Returns 0.0 for an empty community list — the paper itself notes
    SignedCore returns nothing for large ``k`` and plots its precision
    as 0.
    """
    if not communities:
        return 0.0
    scores: List[float] = [
        best_match(community, complexes).precision for community in communities
    ]
    return sum(scores) / len(scores)


def average_f1(
    communities: Sequence[Iterable[Node]], complexes: Sequence[Set[Node]]
) -> float:
    """Mean best-match F1 over *communities* (extension beyond the paper)."""
    if not communities:
        return 0.0
    scores = [best_match(community, complexes).f1 for community in communities]
    return sum(scores) / len(scores)
