"""Descriptive statistics of a community inside a signed graph.

Used by the case-study experiment (Fig. 10) and the examples to report
what a discovered community looks like: size, internal density, sign
balance inside, and the sign profile of its boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

from repro.graphs.signed_graph import Node, SignedGraph


@dataclass(frozen=True)
class CommunityStats:
    """Structural profile of one community.

    Attributes
    ----------
    size:
        Number of member nodes (members absent from the graph are
        ignored).
    internal_positive, internal_negative:
        Internal edge counts by sign.
    boundary_positive, boundary_negative:
        Edges with exactly one endpoint inside.
    density:
        Internal edges over ``size * (size - 1) / 2`` (1.0 for a clique;
        0 for size < 2).
    """

    size: int
    internal_positive: int
    internal_negative: int
    boundary_positive: int
    boundary_negative: int

    @property
    def internal_edges(self) -> int:
        """Total internal edges."""
        return self.internal_positive + self.internal_negative

    @property
    def density(self) -> float:
        """Internal edge density (1.0 means the community is a clique)."""
        possible = self.size * (self.size - 1) // 2
        return self.internal_edges / possible if possible else 0.0

    @property
    def internal_negative_fraction(self) -> float:
        """Share of internal edges that are negative."""
        total = self.internal_edges
        return self.internal_negative / total if total else 0.0

    @property
    def boundary_negative_fraction(self) -> float:
        """Share of boundary edges that are negative (high = antagonism points outward)."""
        total = self.boundary_positive + self.boundary_negative
        return self.boundary_negative / total if total else 0.0


def community_stats(graph: SignedGraph, members: Iterable[Node]) -> CommunityStats:
    """Compute :class:`CommunityStats` for *members* within *graph*."""
    member_set: Set[Node] = {node for node in members if graph.has_node(node)}
    internal_pos = internal_neg = boundary_pos = boundary_neg = 0
    for node in member_set:
        positives = graph.positive_neighbors(node)
        negatives = graph.negative_neighbors(node)
        internal_pos += len(positives & member_set)
        internal_neg += len(negatives & member_set)
        boundary_pos += len(positives - member_set)
        boundary_neg += len(negatives - member_set)
    return CommunityStats(
        size=len(member_set),
        internal_positive=internal_pos // 2,
        internal_negative=internal_neg // 2,
        boundary_positive=boundary_pos,
        boundary_negative=boundary_neg,
    )


def describe_community(graph: SignedGraph, members: Iterable[Node], name: str = "community") -> str:
    """Render a one-paragraph human-readable community description."""
    stats = community_stats(graph, members)
    return (
        f"{name}: {stats.size} nodes, {stats.internal_edges} internal edges "
        f"({stats.internal_positive} positive / {stats.internal_negative} negative, "
        f"density {stats.density:.2f}), boundary "
        f"{stats.boundary_positive} positive / {stats.boundary_negative} negative"
    )
