"""Quality metrics: signed conductance (Eq. 1), precision, community stats."""

from repro.metrics.balance import (
    TriangleCensus,
    balanced_partition,
    frustration_count,
    is_balanced,
    local_search_frustration,
    triangle_sign_census,
)
from repro.metrics.community import CommunityStats, community_stats, describe_community
from repro.metrics.conductance import (
    ConductanceBreakdown,
    average_signed_conductance,
    conductance_breakdown,
    signed_conductance,
)
from repro.metrics.nmi import coverage, nmi, omega_index
from repro.metrics.precision import (
    MatchScore,
    average_f1,
    average_precision,
    best_match,
)

__all__ = [
    "signed_conductance",
    "conductance_breakdown",
    "average_signed_conductance",
    "ConductanceBreakdown",
    "best_match",
    "average_precision",
    "average_f1",
    "MatchScore",
    "community_stats",
    "describe_community",
    "CommunityStats",
    "is_balanced",
    "balanced_partition",
    "frustration_count",
    "local_search_frustration",
    "triangle_sign_census",
    "TriangleCensus",
    "nmi",
    "omega_index",
    "coverage",
]
