"""Signed conductance (Eq. 1 of the paper) and its two halves.

For a node set ``S`` in signed graph ``G``::

    phi(S) =  cut+(S) / min(vol+(S), vol+(V\\S))
            - cut-(S) / min(vol-(S), vol-(V\\S))

where ``cut±`` counts crossing edges of that sign and ``vol±`` sums the
sign-restricted degrees. The first term is the classic conductance of
the positive-edge graph (low is good: few positive ties leak out), the
second of the negative-edge graph (high is good: conflict points
outward). ``phi`` therefore lies in [-1, 1] and *smaller is better* for
a trust-community-like subgraph.

Degenerate denominators: the paper leaves ``min(vol, vol) = 0``
undefined; we define the affected term as 0 (no edges of that sign means
that sign contributes no evidence either way) and document the choice in
EXPERIMENTS.md. This only matters on toy graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set

from repro.graphs.signed_graph import Node, SignedGraph


@dataclass(frozen=True)
class ConductanceBreakdown:
    """Signed conductance with its positive/negative components.

    ``signed = positive_term - negative_term`` (Eq. 1).
    """

    positive_term: float
    negative_term: float

    @property
    def signed(self) -> float:
        """The signed conductance ``phi(S)``."""
        return self.positive_term - self.negative_term


def _one_sided(
    graph: SignedGraph, members: Set[Node], sign: str
) -> float:
    """Classic conductance of *members* on one edge-sign class."""
    if sign == "positive":
        neighbors_of = graph.positive_neighbors
        total_volume = 2 * graph.number_of_positive_edges()
    else:
        neighbors_of = graph.negative_neighbors
        total_volume = 2 * graph.number_of_negative_edges()
    cut = 0
    volume_inside = 0
    for node in members:
        if not graph.has_node(node):
            continue
        neighbors = neighbors_of(node)
        volume_inside += len(neighbors)
        cut += len(neighbors - members)
    volume_outside = total_volume - volume_inside
    denominator = min(volume_inside, volume_outside)
    if denominator <= 0:
        return 0.0
    return cut / denominator


def conductance_breakdown(graph: SignedGraph, members: Iterable[Node]) -> ConductanceBreakdown:
    """Return both terms of Eq. 1 for the node set *members*."""
    member_set = set(members)
    return ConductanceBreakdown(
        positive_term=_one_sided(graph, member_set, "positive"),
        negative_term=_one_sided(graph, member_set, "negative"),
    )


def signed_conductance(graph: SignedGraph, members: Iterable[Node]) -> float:
    """Return ``phi(S)`` (Eq. 1). Smaller is better."""
    return conductance_breakdown(graph, members).signed


def average_signed_conductance(
    graph: SignedGraph, communities: Sequence[Iterable[Node]]
) -> float:
    """Mean signed conductance over *communities* (Exp-8's summary number).

    Returns 0.0 for an empty community list so model comparisons can
    treat "found nothing" as neutral rather than crashing; the
    experiment drivers also report the count so empty results remain
    visible.
    """
    scores: List[float] = [signed_conductance(graph, community) for community in communities]
    if not scores:
        return 0.0
    return sum(scores) / len(scores)
