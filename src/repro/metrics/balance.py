"""Structural balance analytics for signed networks.

Classic signed-network theory (Harary) underpinning the paper's domain:
a signed graph is *balanced* iff its nodes split into two camps with
positive edges inside camps and negative edges across — equivalently,
iff no cycle carries an odd number of negative edges. These utilities
support the examples and dataset analyses:

* :func:`is_balanced` / :func:`balanced_partition` — exact test via
  parity-BFS, returning the two camps when balanced;
* :func:`frustration_count` — the number of edges violating a given
  2-partition, and :func:`local_search_frustration` — a greedy upper
  bound on the frustration index (minimum violations over all
  partitions; exact computation is NP-hard);
* :func:`triangle_sign_census` — counts of the four signed triangle
  types (the +++/+--/++-/--- census used in balance studies).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.algorithms.triangles import iter_triangles
from repro.graphs.signed_graph import Node, SignedGraph


def balanced_partition(graph: SignedGraph) -> Optional[Tuple[Set[Node], Set[Node]]]:
    """Return the two camps of a balanced graph, or ``None`` if unbalanced.

    Parity BFS: walking a positive edge keeps the camp, a negative edge
    flips it; a contradiction proves an odd-negative cycle. Isolated
    nodes land in the first camp. The split is per-component canonical
    (each component's BFS root goes to camp one).
    """
    camp: Dict[Node, int] = {}
    for start in graph.nodes():
        if start in camp:
            continue
        camp[start] = 0
        frontier = [start]
        while frontier:
            node = frontier.pop()
            node_camp = camp[node]
            for neighbor in graph.neighbor_keys(node):
                expected = node_camp if graph.sign(node, neighbor) > 0 else 1 - node_camp
                seen = camp.get(neighbor)
                if seen is None:
                    camp[neighbor] = expected
                    frontier.append(neighbor)
                elif seen != expected:
                    return None
    first = {node for node, side in camp.items() if side == 0}
    second = {node for node, side in camp.items() if side == 1}
    return first, second


def is_balanced(graph: SignedGraph) -> bool:
    """Return ``True`` iff *graph* is structurally balanced."""
    return balanced_partition(graph) is not None


def frustration_count(graph: SignedGraph, camp_one: Iterable[Node]) -> int:
    """Edges violating the 2-partition (camp_one vs the rest).

    A positive edge across camps or a negative edge within a camp counts
    as one violation. The frustration index is the minimum of this over
    all partitions (0 iff balanced).
    """
    inside = set(camp_one)
    violations = 0
    for u, v, sign in graph.edges():
        same_side = (u in inside) == (v in inside)
        if (sign > 0) != same_side:
            violations += 1
    return violations


def local_search_frustration(
    graph: SignedGraph, restarts: int = 3, seed: Optional[int] = 0
) -> Tuple[int, Set[Node]]:
    """Greedy upper bound on the frustration index.

    Repeated single-node moves from random starting partitions until no
    move reduces violations; returns the best ``(violations, camp_one)``
    found. Exact frustration is NP-hard; for balanced graphs the local
    search provably reaches 0 from the balanced partition restart.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    if not nodes:
        return 0, set()

    best_score: Optional[int] = None
    best_partition: Set[Node] = set()
    starts = [set()]  # all-in-one-camp start
    exact = balanced_partition(graph)
    if exact is not None:
        starts.append(set(exact[0]))
    for _ in range(restarts):
        starts.append({node for node in nodes if rng.random() < 0.5})

    for start in starts:
        inside = set(start)
        # Gain of moving `node` = (violations removed) - (added); move
        # while any strictly-improving move exists.
        improved = True
        while improved:
            improved = False
            for node in nodes:
                gain = 0
                node_inside = node in inside
                for neighbor in graph.neighbor_keys(node):
                    same = node_inside == (neighbor in inside)
                    violated = (graph.sign(node, neighbor) > 0) != same
                    gain += 1 if violated else -1
                if gain > 0:
                    if node_inside:
                        inside.discard(node)
                    else:
                        inside.add(node)
                    improved = True
        score = frustration_count(graph, inside)
        if best_score is None or score < best_score:
            best_score = score
            best_partition = set(inside)
    return best_score or 0, best_partition


@dataclass(frozen=True)
class TriangleCensus:
    """Counts of the four signed triangle types.

    ``ppp``/``pmm`` are balanced (even number of negatives),
    ``ppm``/``mmm`` unbalanced.
    """

    ppp: int
    ppm: int
    pmm: int
    mmm: int

    @property
    def total(self) -> int:
        """All triangles."""
        return self.ppp + self.ppm + self.pmm + self.mmm

    @property
    def balanced(self) -> int:
        """Balanced triangles (+++ and +--)."""
        return self.ppp + self.pmm

    @property
    def balance_ratio(self) -> float:
        """Fraction of balanced triangles (1.0 for triangle-free graphs)."""
        return self.balanced / self.total if self.total else 1.0


def triangle_sign_census(graph: SignedGraph) -> TriangleCensus:
    """Count triangles by sign pattern (the classic balance census)."""
    counts = [0, 0, 0, 0]  # indexed by number of negative edges
    for u, v, w in iter_triangles(graph):
        negatives = (
            (graph.sign(u, v) < 0) + (graph.sign(v, w) < 0) + (graph.sign(u, w) < 0)
        )
        counts[negatives] += 1
    return TriangleCensus(ppp=counts[0], ppm=counts[1], pmm=counts[2], mmm=counts[3])
