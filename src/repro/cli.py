"""Command-line interface: ``signed-clique`` / ``python -m repro``.

Subcommands
-----------
stats
    Print Table-I style statistics of a signed edge-list file.
compile
    Compile a graph into a mmap-able storage artifact
    (:mod:`repro.fastpath.storage`); other subcommands accept the
    artifact anywhere a graph path is expected and re-attach it
    zero-copy instead of re-reading and re-compiling the edge list.
mccore
    Print the maximal constrained ceil(alpha*k)-core of a graph.
enumerate
    Enumerate all maximal (alpha, k)-cliques of a graph.
top
    Find the top-r largest maximal (alpha, k)-cliques.
conductance
    Score the top-r signed cliques with signed conductance.
generate
    Write one of the named synthetic dataset stand-ins to a file.
query
    Community search: maximal (alpha, k)-cliques containing query nodes.
balance
    Structural-balance report (camps / frustration / triangle census).
percolate
    Community detection via signed clique percolation (optionally DOT).
sweep
    Profile the (alpha, k) landscape of a graph.
serve-grid
    Batch-enumerate an (alpha, k) grid through the serving engine
    (one compilation, shared coring, two-tier cache, optional workers).
serve
    Host one or more graphs over HTTP (:mod:`repro.net`): request
    coalescing, admission control with load shedding, per-request
    deadlines, per-tenant caches, and a Prometheus ``/metrics`` page.
report
    Regenerate the full evaluation report as markdown.

Graphs are read with :func:`repro.io.read_signed_edgelist` (``src dst
sign`` lines, ``#``/``%`` comments), or — when the file starts with the
storage magic — mmapped back as a
:class:`~repro.fastpath.compiled.CompiledGraph` artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core import MSCE, AlphaK, find_mccore, signed_cliques_containing
from repro.exceptions import ReproError
from repro.fastpath.compiled import source_graph
from repro.generators import DATASET_BUILDERS, load_dataset
from repro.graphs import graph_stats
from repro.heuristics import WARM_START_STRATEGIES
from repro.io import read_signed_edgelist, write_signed_edgelist
from repro.metrics import (
    balanced_partition,
    local_search_frustration,
    signed_conductance,
    triangle_sign_census,
)


def _add_alpha_k(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--alpha", type=float, default=4.0, help="alpha parameter (default 4)")
    parser.add_argument("-k", type=int, default=3, dest="k", help="k parameter (default 3)")


def _add_graph_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="path to a signed edge-list file (src dst sign)")


def _add_model(parser: argparse.ArgumentParser) -> None:
    from repro.models import available_models

    parser.add_argument(
        "--model",
        choices=available_models(),
        default=None,
        help="signed-cohesion model (default: REPRO_MODEL env or msce)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="signed-clique",
        description="Maximal (alpha, k)-clique search in signed networks (ICDE 2018 reproduction)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the run's span trace (phase wall times + counter deltas) as JSON",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics in Prometheus text exposition format",
    )
    parser.add_argument(
        "--journal-out",
        default=None,
        metavar="PATH",
        help="stream scheduler/guard lifecycle events to a JSONL file",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="print dataset statistics (Table I columns)")
    _add_graph_argument(stats)

    compile_cmd = sub.add_parser(
        "compile", help="compile a graph into a mmap-able storage artifact"
    )
    _add_graph_argument(compile_cmd)
    compile_cmd.add_argument("output", help="artifact output path")
    compile_cmd.add_argument(
        "--packed",
        choices=("auto", "always", "none"),
        default="auto",
        help="embed packed-uint64 adjacency matrices (default auto: "
        "when numpy is available and the graph is small enough)",
    )

    mccore = sub.add_parser("mccore", help="compute the maximal constrained core")
    _add_graph_argument(mccore)
    _add_alpha_k(mccore)
    mccore.add_argument(
        "--method",
        choices=("mcnew", "mcbasic", "positive-core"),
        default="mcnew",
        help="reduction algorithm (default mcnew)",
    )

    enumerate_cmd = sub.add_parser("enumerate", help="enumerate all maximal (alpha,k)-cliques")
    _add_graph_argument(enumerate_cmd)
    _add_alpha_k(enumerate_cmd)
    enumerate_cmd.add_argument("--selection", choices=("greedy", "random", "first"), default="greedy")
    _add_model(enumerate_cmd)
    enumerate_cmd.add_argument("--time-limit", type=float, default=None, help="seconds cap")
    enumerate_cmd.add_argument("--json", action="store_true", help="emit JSON instead of text")
    enumerate_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        help="enumerate through the parallel scheduler with this many workers",
    )
    enumerate_cmd.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES",
        help="soft memory budget (kb/mb/gb suffix ok); pending frames "
        "spill to disk instead of growing the heap (implies the "
        "scheduler path; default: REPRO_MEMORY_BUDGET)",
    )

    top = sub.add_parser("top", help="find the top-r largest maximal (alpha,k)-cliques")
    _add_graph_argument(top)
    _add_alpha_k(top)
    top.add_argument("-r", type=int, default=30, help="how many cliques (default 30)")
    _add_model(top)
    top.add_argument("--time-limit", type=float, default=None, help="seconds cap")
    top.add_argument(
        "--warm-start",
        choices=WARM_START_STRATEGIES,
        default=None,
        help="seed the top-r cutoff with heuristic incumbents (same answer, earlier pruning)",
    )
    top.add_argument("--json", action="store_true", help="emit JSON instead of text")

    conductance = sub.add_parser("conductance", help="signed conductance of the top-r cliques")
    _add_graph_argument(conductance)
    _add_alpha_k(conductance)
    conductance.add_argument("-r", type=int, default=30)

    generate = sub.add_parser("generate", help="write a synthetic dataset stand-in")
    generate.add_argument("name", choices=sorted(DATASET_BUILDERS), help="dataset name")
    generate.add_argument("output", help="output edge-list path")
    generate.add_argument("--seed", type=int, default=None)

    query = sub.add_parser(
        "query", help="community search: maximal cliques containing the query nodes"
    )
    _add_graph_argument(query)
    _add_alpha_k(query)
    query.add_argument("nodes", nargs="+", help="query node ids")
    query.add_argument("--time-limit", type=float, default=None, help="seconds cap")
    query.add_argument("--json", action="store_true", help="emit JSON instead of text")

    balance = sub.add_parser("balance", help="structural balance report")
    _add_graph_argument(balance)

    report = sub.add_parser("report", help="regenerate the evaluation report (markdown)")
    report.add_argument("output", help="output markdown path")
    report.add_argument("--sections", nargs="*", default=None, help="driver subset")

    percolate = sub.add_parser(
        "percolate", help="community detection via signed clique percolation"
    )
    _add_graph_argument(percolate)
    _add_alpha_k(percolate)
    percolate.add_argument("--overlap", type=int, default=2, help="members shared to merge")
    percolate.add_argument("--time-limit", type=float, default=None)
    percolate.add_argument("--dot", default=None, help="also write a Graphviz DOT file")

    sweep = sub.add_parser(
        "sweep", help="profile the (alpha, k) landscape of a graph"
    )
    _add_graph_argument(sweep)
    sweep.add_argument("--alphas", type=float, nargs="+", default=[2, 3, 4, 5, 6, 7])
    sweep.add_argument("--ks", type=int, nargs="+", default=[1, 2, 3, 4, 5, 6])
    sweep.add_argument("--time-limit", type=float, default=10.0, help="seconds per point")

    serve_grid = sub.add_parser(
        "serve-grid",
        help="batch-enumerate an (alpha, k) grid through the serving engine",
    )
    _add_graph_argument(serve_grid)
    serve_grid.add_argument("--alphas", type=float, nargs="+", default=[2, 3, 4, 5, 6, 7])
    serve_grid.add_argument("--ks", type=int, nargs="+", default=[1, 2, 3, 4, 5, 6])
    serve_grid.add_argument("--workers", type=int, default=1, help="worker processes")
    serve_grid.add_argument("--time-limit", type=float, default=None, help="seconds cap")
    serve_grid.add_argument(
        "--cache-dir", default=None, help="persistent disk cache directory"
    )
    serve_grid.add_argument(
        "--cache-mem-entries",
        type=int,
        default=256,
        help="in-memory cache entry bound (default 256)",
    )
    serve_grid.add_argument(
        "--cache-mem-bytes",
        type=int,
        default=None,
        help="in-memory cache approximate byte bound (default unbounded)",
    )
    serve_grid.add_argument(
        "--backend",
        default=None,
        choices=["python", "vectorized", "native"],
        help="kernel tier (default: REPRO_BACKEND or auto-detect)",
    )
    _add_model(serve_grid)
    serve_grid.add_argument("--json", action="store_true", help="emit JSON instead of text")

    serve = sub.add_parser(
        "serve",
        help="host graphs over HTTP with coalescing, admission control and deadlines",
    )
    serve.add_argument(
        "graphs",
        nargs="+",
        metavar="NAME=PATH",
        help="graphs to host; bare PATH uses the file stem as the name",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8265, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--max-concurrency", type=int, default=4, help="computations in flight at once"
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16, help="admitted-but-waiting bound before shedding"
    )
    serve.add_argument(
        "--default-deadline",
        default="30s",
        help="per-request deadline when the client sends none (e.g. 30s, 500ms)",
    )
    serve.add_argument(
        "--max-deadline", default="300s", help="hard cap on client-requested deadlines"
    )
    serve.add_argument(
        "--read-timeout", type=float, default=10.0, help="seconds for a request head to arrive"
    )
    serve.add_argument(
        "--write-timeout", type=float, default=10.0, help="seconds for a response to drain"
    )
    serve.add_argument(
        "--memory-budget",
        default=None,
        help="shed new work when process RSS exceeds this (e.g. 2g, 512m)",
    )
    serve.add_argument("--workers", type=int, default=1, help="worker processes per engine")
    serve.add_argument("--cache-dir", default=None, help="base directory for per-tenant caches")
    serve.add_argument(
        "--cache-mem-entries", type=int, default=256, help="per-tenant memory-cache entries"
    )
    serve.add_argument(
        "--cache-mem-bytes", type=int, default=None, help="per-tenant memory-cache bytes"
    )
    serve.add_argument(
        "--backend",
        default=None,
        choices=["python", "vectorized", "native"],
        help="kernel tier (default: REPRO_BACKEND or auto-detect)",
    )
    serve.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable request coalescing (every request computes; for benchmarks)",
    )
    serve.add_argument(
        "--exit-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop serving after this many seconds (smoke tests)",
    )

    return parser


def _print_cliques(cliques, as_json: bool) -> None:
    if as_json:
        payload = [
            {
                "nodes": sorted(clique.nodes, key=repr),
                "size": clique.size,
                "positive_edges": clique.positive_edges,
                "negative_edges": clique.negative_edges,
            }
            for clique in cliques
        ]
        print(json.dumps(payload, indent=2, default=str))
        return
    for index, clique in enumerate(cliques, start=1):
        members = " ".join(str(node) for node in sorted(clique.nodes, key=repr))
        print(
            f"#{index}: size={clique.size} "
            f"(+{clique.positive_edges}/-{clique.negative_edges}) {members}"
        )


def _load_graph(path: str):
    """Read a graph inside a ``load`` span (the phase tree's root-most phase).

    Files beginning with the storage magic (written by the ``compile``
    subcommand / :meth:`CompiledGraph.save
    <repro.fastpath.compiled.CompiledGraph.mmap>`) are mmapped back as a
    :class:`~repro.fastpath.compiled.CompiledGraph` — zero parsing, zero
    compilation; anything else is read as a signed edge list.
    """
    from repro.fastpath.storage import MAGIC
    from repro.obs import runtime as obs

    try:
        with open(path, "rb") as handle:
            head = handle.read(len(MAGIC))
    except OSError:
        head = b""
    if head == MAGIC:
        from repro.fastpath.compiled import CompiledGraph

        with obs.span("load", path=str(path), format="storage"):
            return CompiledGraph.mmap(path)
    with obs.span("load", path=str(path)):
        return read_signed_edgelist(path)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    With any of ``--trace-out`` / ``--metrics-out`` / ``--journal-out``,
    the command runs under a fresh enabled observer
    (:func:`repro.obs.runtime.observing`) and the requested exports are
    written after the command finishes: the span trace as nested JSON,
    the metrics registry as Prometheus text, and the event journal
    streamed live as JSONL.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.trace_out or args.metrics_out or args.journal_out:
            from repro.obs import runtime as obs
            from repro.obs.export import write_prometheus, write_trace_json

            with obs.observing(journal_path=args.journal_out) as observer:
                code = _dispatch(args)
            if args.trace_out:
                write_trace_json(observer.tracer, args.trace_out)
            if args.metrics_out:
                from repro.fastpath.backend import resolve_backend
                from repro.models import resolve_model

                write_prometheus(
                    observer.registry,
                    args.metrics_out,
                    labels={
                        "kernel_backend": resolve_backend(getattr(args, "backend", None)),
                        "model": resolve_model(getattr(args, "model", None)),
                    },
                )
            return code
        return _dispatch(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "stats":
        stats = graph_stats(source_graph(_load_graph(args.graph)))
        print(stats.as_table_row(args.graph))
        print(
            f"negative fraction: {stats.negative_fraction:.3f}, "
            f"max degree: {stats.max_degree}, "
            f"max d+: {stats.max_positive_degree}, max d-: {stats.max_negative_degree}"
        )
        return 0

    if args.command == "mccore":
        graph = _load_graph(args.graph)
        nodes = find_mccore(graph, args.alpha, args.k, method=args.method)
        print(f"{len(nodes)} nodes in the maximal constrained core:")
        print(" ".join(str(node) for node in sorted(nodes, key=repr)))
        return 0

    if args.command == "compile":
        from repro.fastpath.compiled import CompiledGraph, compile_graph
        from repro.io.cache import graph_fingerprint

        graph = _load_graph(args.graph)
        if isinstance(graph, CompiledGraph):
            compiled, fingerprint = graph, None
        else:
            fingerprint = graph_fingerprint(graph)
            compiled = compile_graph(graph)
        written = compiled.save(args.output, packed=args.packed, fingerprint=fingerprint)
        print(
            f"wrote {args.output}: n={compiled.n} m={len(compiled.adj) // 2} "
            f"({written} bytes, packed={args.packed})"
        )
        return 0

    if args.command == "enumerate":
        graph = _load_graph(args.graph)
        params = AlphaK(args.alpha, args.k)
        if args.workers is not None or args.memory_budget is not None:
            from repro.core.parallel import enumerate_parallel
            from repro.limits import parse_memory_budget

            try:
                budget = (
                    parse_memory_budget(args.memory_budget)
                    if args.memory_budget is not None
                    else None
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            result = enumerate_parallel(
                graph,
                params.alpha,
                params.k,
                workers=args.workers or 1,
                selection=args.selection,
                time_limit=args.time_limit,
                memory_budget_bytes=budget,
                model=args.model,
            )
        else:
            result = MSCE(
                graph,
                params,
                selection=args.selection,
                time_limit=args.time_limit,
                model=args.model,
            ).enumerate_all()
        _print_cliques(result.cliques, args.json)
        if result.timed_out:
            print("warning: time limit hit; results are partial", file=sys.stderr)
        return 0

    if args.command == "top":
        graph = _load_graph(args.graph)
        params = AlphaK(args.alpha, args.k)
        result = MSCE(
            graph, params, time_limit=args.time_limit, model=args.model
        ).top_r(args.r, warm_start=args.warm_start)
        _print_cliques(result.cliques, args.json)
        if result.timed_out:
            print("warning: time limit hit; results are partial", file=sys.stderr)
        return 0

    if args.command == "conductance":
        graph = _load_graph(args.graph)
        params = AlphaK(args.alpha, args.k)
        result = MSCE(graph, params).top_r(args.r)
        for index, clique in enumerate(result.cliques, start=1):
            score = signed_conductance(graph, clique.nodes)
            print(f"#{index}: size={clique.size} signed_conductance={score:+.4f}")
        return 0

    if args.command == "query":
        graph = _load_graph(args.graph)
        query_nodes = []
        for token in args.nodes:
            try:
                query_nodes.append(int(token))
            except ValueError:
                query_nodes.append(token)
        cliques = signed_cliques_containing(
            graph, query_nodes, args.alpha, args.k, time_limit=args.time_limit
        )
        if not cliques:
            print("no maximal (alpha,k)-clique contains the query")
            return 0
        _print_cliques(cliques, args.json)
        return 0

    if args.command == "balance":
        graph = source_graph(_load_graph(args.graph))
        partition = balanced_partition(graph)
        census = triangle_sign_census(graph)
        if partition is not None:
            first, second = partition
            print(f"balanced: yes (camps of {len(first)} and {len(second)} nodes)")
        else:
            violations, _camp = local_search_frustration(graph)
            print(f"balanced: no (frustration <= {violations} edges)")
        print(
            f"triangle census: +++ {census.ppp}, ++- {census.ppm}, "
            f"+-- {census.pmm}, --- {census.mmm} "
            f"(balance ratio {census.balance_ratio:.3f})"
        )
        return 0

    if args.command == "report":
        from repro.experiments.report import DEFAULT_SECTIONS, generate_report

        sections = tuple(args.sections) if args.sections else DEFAULT_SECTIONS
        generate_report(args.output, sections)
        print(f"wrote {args.output}")
        return 0

    if args.command == "percolate":
        from repro.core import signed_clique_percolation
        from repro.io.dot import save_dot

        graph = source_graph(_load_graph(args.graph))
        communities = signed_clique_percolation(
            graph, args.alpha, args.k, overlap=args.overlap, time_limit=args.time_limit
        )
        for index, community in enumerate(communities, start=1):
            members = " ".join(str(node) for node in sorted(community, key=repr))
            print(f"community #{index} ({len(community)} nodes): {members}")
        if args.dot:
            save_dot(graph, args.dot, highlight=communities, members_only=True)
            print(f"wrote {args.dot}")
        return 0

    if args.command == "sweep":
        from repro.experiments.parameter_map import (
            parameter_map,
            render_parameter_map,
            suggest_parameters,
        )

        graph = source_graph(_load_graph(args.graph))
        points = parameter_map(
            graph, alphas=args.alphas, ks=args.ks, time_limit=args.time_limit
        )
        print(render_parameter_map(points))
        suggestion = suggest_parameters(points, min_count=1)
        if suggestion is not None:
            print(
                f"strictest non-empty setting: alpha={suggestion.alpha:g} "
                f"k={suggestion.k} ({suggestion.clique_count} cliques, "
                f"largest {suggestion.largest_clique})"
            )
        return 0

    if args.command == "serve-grid":
        from repro.serve import SignedCliqueEngine

        graph = source_graph(_load_graph(args.graph))
        engine = SignedCliqueEngine(
            graph,
            cache_dir=args.cache_dir,
            cache_mem_entries=args.cache_mem_entries,
            cache_mem_bytes=args.cache_mem_bytes,
            workers=args.workers,
            backend=args.backend,
            model=args.model,
        )
        grid = engine.run_grid(
            args.alphas, args.ks, workers=args.workers, time_limit=args.time_limit
        )
        if args.json:
            payload = {
                "report": grid.report,
                "counters": dict(engine.counters),
                "points": [
                    {
                        "alpha": params.alpha,
                        "k": params.k,
                        "cliques": len(result.cliques),
                        "largest": result.cliques[0].size if result.cliques else 0,
                        "recursions": int(result.stats.recursions),
                        "partial": bool(result.timed_out or result.interrupted),
                    }
                    for params, result in grid.items()
                ],
            }
            print(json.dumps(payload, indent=2))
            return 0
        for params, result in grid.items():
            largest = result.cliques[0].size if result.cliques else 0
            flag = " (partial)" if result.timed_out or result.interrupted else ""
            print(
                f"alpha={params.alpha:g} k={params.k}: "
                f"{len(result.cliques)} cliques, largest {largest}{flag}"
            )
        report = grid.report
        print(
            f"served {report['served_from_cache']}/{report['points']} from cache, "
            f"computed {report['computed']} with {report['workers']} worker(s) "
            f"[{report['backend']} kernels]; "
            f"reduction sharing {report['sharing_ratio']:.0%}; "
            f"{report['elapsed_seconds']:.2f}s"
        )
        return 0

    if args.command == "generate":
        dataset = load_dataset(args.name, seed=args.seed)
        write_signed_edgelist(
            dataset.graph,
            args.output,
            header=f"{dataset.name} stand-in: {dataset.description}",
        )
        stats = graph_stats(dataset.graph)
        print(f"wrote {args.output}: n={stats.nodes} m={stats.edges}")
        return 0

    if args.command == "serve":
        return _serve_http(args)

    raise AssertionError(f"unhandled command {args.command!r}")


def _serve_http(args: argparse.Namespace) -> int:
    """Run the :mod:`repro.net` HTTP server until interrupted.

    Hosted graphs are given as ``NAME=PATH`` (or a bare ``PATH``, named
    after the file stem). The server runs under a fresh enabled
    observer when none is installed yet, so ``/metrics`` is live even
    without ``--metrics-out``.
    """
    import asyncio
    from pathlib import Path

    from repro.limits import parse_deadline, parse_memory_budget
    from repro.net import CliqueServer, ServerConfig, TenantRegistry
    from repro.obs import runtime as obs

    registry = TenantRegistry(
        cache_dir=args.cache_dir,
        cache_mem_entries=args.cache_mem_entries,
        cache_mem_bytes=args.cache_mem_bytes,
        workers=args.workers,
        backend=args.backend,
    )
    for spec in args.graphs:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = Path(spec).stem, spec
        registry.create(name, source_graph(_load_graph(path)))
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        max_queue_depth=args.queue_depth,
        default_deadline=parse_deadline(args.default_deadline),
        max_deadline=parse_deadline(args.max_deadline),
        read_timeout=args.read_timeout,
        write_timeout=args.write_timeout,
        memory_budget_bytes=(
            parse_memory_budget(args.memory_budget)
            if args.memory_budget is not None
            else None
        ),
        coalesce=not args.no_coalesce,
    )
    server = CliqueServer(registry, config)

    async def run() -> None:
        host, port = await server.start()
        names = ", ".join(registry.names())
        print(f"serving {names} on http://{host}:{port} (Ctrl-C to stop)")
        try:
            if args.exit_after is not None:
                try:
                    await asyncio.wait_for(server.serve_forever(), args.exit_after)
                except asyncio.TimeoutError:
                    pass
            else:
                await server.serve_forever()
        finally:
            await server.stop()

    needs_observer = not obs.get_observer().enabled
    try:
        if needs_observer:
            with obs.observing():
                asyncio.run(run())
        else:
            asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
