"""The :class:`SignedGraph` data structure.

A signed graph is an undirected simple graph in which every edge carries
a label ``+`` (friendship / trust / strong tie) or ``-`` (antagonism /
distrust / weak tie). This module provides the central data structure
used by every algorithm in the library.

Design notes
------------
The structure keeps, for each node, *two* adjacency sets — one for
positive neighbours and one for negative neighbours — besides a combined
sign lookup table. The signed clique algorithms of the paper constantly
ask three different questions about a node:

* "who are all neighbours of ``u``?"        (clique constraint)
* "who are the positive neighbours of ``u``?" (positive-edge constraint,
  ego networks, positive-edge cores)
* "who are the negative neighbours of ``u``?" (negative-edge constraint)

Maintaining the partition explicitly makes each of those O(1) set
lookups instead of a filter pass, at the cost of one extra set per node.

Nodes may be any hashable object. Signs are normalised to the integers
``+1`` and ``-1``; the constants :data:`POSITIVE` and :data:`NEGATIVE`
are exported for readability.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Set, Tuple

from repro.exceptions import EdgeSignError, GraphError, SelfLoopError

Node = Hashable
Edge = Tuple[Node, Node]
SignedEdge = Tuple[Node, Node, int]

#: Canonical integer label for a positive ("+") edge.
POSITIVE = 1
#: Canonical integer label for a negative ("-") edge.
NEGATIVE = -1

_SIGN_ALIASES = {
    1: POSITIVE,
    -1: NEGATIVE,
    "+": POSITIVE,
    "-": NEGATIVE,
    "+1": POSITIVE,
    "-1": NEGATIVE,
    "1": POSITIVE,
    "pos": POSITIVE,
    "neg": NEGATIVE,
    "positive": POSITIVE,
    "negative": NEGATIVE,
}


def normalize_sign(sign: object) -> int:
    """Return the canonical ``+1``/``-1`` form of *sign*.

    Accepts the integers ``1``/``-1``, the strings ``"+"``/``"-"`` (and a
    few longer spellings), and booleans (``True`` is positive). Raises
    :class:`EdgeSignError` for anything else — including ``0``, which
    carries no sign.

    >>> normalize_sign("+")
    1
    >>> normalize_sign(-1)
    -1
    """
    # Bools are handled before the table lookup: True/False hash equal
    # to 1/0, which would otherwise make 0 silently alias False.
    if isinstance(sign, bool):
        return POSITIVE if sign else NEGATIVE
    try:
        return _SIGN_ALIASES[sign]
    except (KeyError, TypeError):
        raise EdgeSignError(f"invalid edge sign {sign!r}; expected +1/-1 or '+'/'-'") from None


class SignedGraph:
    """An undirected simple graph whose edges are labelled ``+1`` or ``-1``.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v, sign)`` triples used to initialise
        the graph. Signs are normalised with :func:`normalize_sign`.
    nodes:
        Optional iterable of isolated nodes to add up front.

    Examples
    --------
    >>> g = SignedGraph([(1, 2, "+"), (2, 3, "-")])
    >>> g.sign(1, 2)
    1
    >>> sorted(g.positive_neighbors(2))
    [1]
    >>> sorted(g.negative_neighbors(2))
    [3]
    """

    __slots__ = (
        "_sign",
        "_pos",
        "_neg",
        "_num_pos_edges",
        "_num_neg_edges",
        "_version",
        "_fingerprint",
    )

    def __init__(
        self,
        edges: Iterable[Tuple[Node, Node, object]] = (),
        nodes: Iterable[Node] = (),
    ):
        # _sign[u][v] -> +1 / -1 for every edge (u, v); symmetric.
        self._sign: Dict[Node, Dict[Node, int]] = {}
        # _pos[u] / _neg[u] -> neighbour sets partitioned by sign.
        self._pos: Dict[Node, Set[Node]] = {}
        self._neg: Dict[Node, Set[Node]] = {}
        self._num_pos_edges = 0
        self._num_neg_edges = 0
        # Monotone mutation counter plus a content-hash memo slot; both
        # serve `repro.io.cache.graph_fingerprint`, which is O(m) to
        # recompute but constant per graph *version*.
        self._version = 0
        self._fingerprint: "Optional[str]" = None
        for node in nodes:
            self.add_node(node)
        for u, v, sign in edges:
            self.add_edge(u, v, sign)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def _mutated(self) -> None:
        # Every structural change funnels through here so the memoised
        # fingerprint can never go stale.
        self._version += 1
        self._fingerprint = None

    @property
    def version(self) -> int:
        """Monotone counter bumped on every structural mutation."""
        return self._version

    def add_node(self, node: Node) -> None:
        """Add an isolated node; a no-op if *node* is already present."""
        if node not in self._sign:
            self._sign[node] = {}
            self._pos[node] = set()
            self._neg[node] = set()
            self._mutated()

    def add_edge(self, u: Node, v: Node, sign: object) -> None:
        """Add the undirected edge ``(u, v)`` with the given *sign*.

        Endpoints are created if absent. Re-adding an existing edge with
        the *same* sign is a no-op; re-adding it with the opposite sign
        raises :class:`GraphError` (a simple signed graph carries exactly
        one label per edge — callers that want "last write wins" should
        call :meth:`set_sign`).
        """
        if u == v:
            raise SelfLoopError(f"self-loop on node {u!r} is not allowed")
        canonical = normalize_sign(sign)
        self.add_node(u)
        self.add_node(v)
        existing = self._sign[u].get(v)
        if existing is not None:
            if existing != canonical:
                raise GraphError(
                    f"edge ({u!r}, {v!r}) already present with opposite sign; "
                    "use set_sign() to overwrite"
                )
            return
        self._insert(u, v, canonical)

    def set_sign(self, u: Node, v: Node, sign: object) -> None:
        """Add edge ``(u, v)`` or overwrite its sign if it already exists."""
        if u == v:
            raise SelfLoopError(f"self-loop on node {u!r} is not allowed")
        canonical = normalize_sign(sign)
        self.add_node(u)
        self.add_node(v)
        existing = self._sign[u].get(v)
        if existing == canonical:
            return
        if existing is not None:
            self._delete(u, v, existing)
        self._insert(u, v, canonical)

    def _insert(self, u: Node, v: Node, canonical: int) -> None:
        self._mutated()
        self._sign[u][v] = canonical
        self._sign[v][u] = canonical
        if canonical == POSITIVE:
            self._pos[u].add(v)
            self._pos[v].add(u)
            self._num_pos_edges += 1
        else:
            self._neg[u].add(v)
            self._neg[v].add(u)
            self._num_neg_edges += 1

    def _delete(self, u: Node, v: Node, canonical: int) -> None:
        self._mutated()
        del self._sign[u][v]
        del self._sign[v][u]
        if canonical == POSITIVE:
            self._pos[u].discard(v)
            self._pos[v].discard(u)
            self._num_pos_edges -= 1
        else:
            self._neg[u].discard(v)
            self._neg[v].discard(u)
            self._num_neg_edges -= 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``(u, v)``; raises :class:`GraphError` if absent."""
        sign = self._sign.get(u, {}).get(v)
        if sign is None:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        self._delete(u, v, sign)

    def remove_node(self, node: Node) -> None:
        """Remove *node* and every incident edge."""
        if node not in self._sign:
            raise GraphError(f"node {node!r} not in graph")
        for neighbor in list(self._sign[node]):
            self._delete(node, neighbor, self._sign[node][neighbor])
        del self._sign[node]
        del self._pos[node]
        del self._neg[node]
        self._mutated()

    def remove_nodes(self, nodes: Iterable[Node]) -> None:
        """Remove every node in *nodes* (each must be present)."""
        for node in nodes:
            self.remove_node(node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._sign

    def __len__(self) -> int:
        return len(self._sign)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._sign)

    def has_node(self, node: Node) -> bool:
        """Return ``True`` if *node* is in the graph."""
        return node in self._sign

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        return v in self._sign.get(u, {})

    def sign(self, u: Node, v: Node) -> int:
        """Return the sign (``+1``/``-1``) of edge ``(u, v)``.

        Raises :class:`GraphError` when the edge does not exist.
        """
        try:
            return self._sign[u][v]
        except KeyError:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from None

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._sign)

    def node_set(self) -> Set[Node]:
        """Return a fresh set of all nodes."""
        return set(self._sign)

    def edges(self) -> Iterator[SignedEdge]:
        """Iterate over each undirected edge once, as ``(u, v, sign)``.

        The order of endpoints within a triple is arbitrary but each
        edge is reported exactly once.
        """
        seen: Set[Node] = set()
        for u, neighbor_signs in self._sign.items():
            for v, sign in neighbor_signs.items():
                if v not in seen:
                    yield (u, v, sign)
            seen.add(u)

    def positive_edges(self) -> Iterator[Edge]:
        """Iterate over each positive edge once as ``(u, v)``."""
        for u, v, sign in self.edges():
            if sign == POSITIVE:
                yield (u, v)

    def negative_edges(self) -> Iterator[Edge]:
        """Iterate over each negative edge once as ``(u, v)``."""
        for u, v, sign in self.edges():
            if sign == NEGATIVE:
                yield (u, v)

    def neighbors(self, node: Node) -> Set[Node]:
        """Return the set ``N_u`` of all neighbours of *node*.

        The returned set is a fresh copy; mutating it does not affect
        the graph. Use :meth:`neighbor_keys` on hot paths to avoid the
        copy, and :meth:`positive_neighbors` / :meth:`negative_neighbors`
        when only one sign class is needed.
        """
        if node not in self._sign:
            raise GraphError(f"node {node!r} not in graph")
        return set(self._sign[node])

    def neighbor_keys(self, node: Node):
        """Return a live, copy-free view of all neighbours of *node*.

        The returned ``dict_keys`` view supports set operations
        (``& | -``, membership) without materialising a set, which is
        what the enumeration inner loops need. Treat it as read-only; it
        reflects subsequent graph mutations.
        """
        try:
            return self._sign[node].keys()
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def positive_neighbors(self, node: Node) -> Set[Node]:
        """Return the live set ``N+_u`` of positive neighbours of *node*.

        .. warning:: The returned set is the graph's internal storage;
           treat it as read-only (copy before mutating).
        """
        try:
            return self._pos[node]
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def negative_neighbors(self, node: Node) -> Set[Node]:
        """Return the live set ``N-_u`` of negative neighbours of *node*.

        .. warning:: The returned set is the graph's internal storage;
           treat it as read-only (copy before mutating).
        """
        try:
            return self._neg[node]
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def degree(self, node: Node) -> int:
        """Return ``d_u``, the number of neighbours of *node*."""
        if node not in self._sign:
            raise GraphError(f"node {node!r} not in graph")
        return len(self._sign[node])

    def positive_degree(self, node: Node) -> int:
        """Return ``d+_u``, the number of positive neighbours of *node*."""
        return len(self.positive_neighbors(node))

    def negative_degree(self, node: Node) -> int:
        """Return ``d-_u``, the number of negative neighbours of *node*."""
        return len(self.negative_neighbors(node))

    def number_of_nodes(self) -> int:
        """Return ``n = |V|``."""
        return len(self._sign)

    def number_of_edges(self) -> int:
        """Return ``m = |E|`` (positive plus negative)."""
        return self._num_pos_edges + self._num_neg_edges

    def number_of_positive_edges(self) -> int:
        """Return ``|E+|``."""
        return self._num_pos_edges

    def number_of_negative_edges(self) -> int:
        """Return ``|E-|``."""
        return self._num_neg_edges

    def max_negative_degree(self) -> int:
        """Return ``d-_max``, the largest negative degree in the graph.

        Returns 0 for the empty graph. This is the value of *k* under
        which the (alpha, k)-clique model degenerates to classic maximal
        cliques (together with ``alpha = 0``).
        """
        if not self._neg:
            return 0
        return max(len(neighbors) for neighbors in self._neg.values())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "SignedGraph":
        """Return a deep structural copy of the graph."""
        clone = SignedGraph()
        for node, neighbor_signs in self._sign.items():
            clone._sign[node] = dict(neighbor_signs)
            clone._pos[node] = set(self._pos[node])
            clone._neg[node] = set(self._neg[node])
        clone._num_pos_edges = self._num_pos_edges
        clone._num_neg_edges = self._num_neg_edges
        # A copy has identical content, so it may inherit the fingerprint
        # memo; its version counter restarts from the copied value and
        # diverges independently from here on.
        clone._version = self._version
        clone._fingerprint = self._fingerprint
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "SignedGraph":
        """Return the induced signed subgraph on *nodes* as a new graph.

        Nodes absent from the graph are ignored silently so callers can
        intersect freely.
        """
        keep = {node for node in nodes if node in self._sign}
        sub = SignedGraph()
        for node in keep:
            sub.add_node(node)
        for node in keep:
            for neighbor, sign in self._sign[node].items():
                if neighbor in keep and neighbor not in sub._sign[node]:
                    sub._insert(node, neighbor, sign)
        return sub

    def positive_subgraph(self) -> "SignedGraph":
        """Return the positive-edge graph ``G+ = (V, E+)`` of the paper.

        All nodes are kept (possibly isolated); only positive edges
        survive.
        """
        sub = SignedGraph()
        for node in self._sign:
            sub.add_node(node)
        for u, v in self.positive_edges():
            sub._insert(u, v, POSITIVE)
        return sub

    def induced_positive_neighborhood(self, node: Node) -> "SignedGraph":
        """Return the *ego network* of *node* (Definition 4 of the paper).

        The ego network of ``u`` is the signed subgraph induced by
        ``N+_u`` — note that it may itself contain negative edges, and
        it does **not** include ``u``.
        """
        return self.subgraph(self.positive_neighbors(node))

    def degrees_within(self, members: Set[Node], node: Node) -> Tuple[int, int]:
        """Return ``(d+_u(C), d-_u(C))`` for *node* within node set *members*.

        *node* never counts itself (the graph has no self-loops), so it
        is safe to pass a *members* set that contains *node*.
        """
        if node not in self._pos:
            raise GraphError(f"node {node!r} not in graph")
        return len(self._pos[node] & members), len(self._neg[node] & members)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"SignedGraph(n={self.number_of_nodes()}, m={self.number_of_edges()}, "
            f"pos={self._num_pos_edges}, neg={self._num_neg_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedGraph):
            return NotImplemented
        return self._sign == other._sign

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("SignedGraph is mutable and unhashable")
