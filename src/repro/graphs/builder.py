"""Incremental construction helpers for :class:`~repro.graphs.SignedGraph`.

The builder exists for two reasons. First, bulk loaders (file parsers,
generators) want "last sign wins" or "merge by majority" semantics when
the same node pair appears several times, which the strict
:meth:`SignedGraph.add_edge` deliberately refuses. Second, weighted
sources such as co-authorship networks need an accumulate-then-threshold
step (the paper's DBLP recipe) before signs exist at all.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, Tuple

from repro.exceptions import GraphError, SelfLoopError
from repro.graphs.signed_graph import NEGATIVE, POSITIVE, Node, SignedGraph, normalize_sign


def _canonical_pair(u: Node, v: Node) -> Tuple[Node, Node]:
    """Return a deterministic ordering of the unordered pair ``{u, v}``."""
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        # Mixed / unorderable node types: fall back to repr ordering,
        # which is deterministic within one process.
        return (u, v) if repr(u) <= repr(v) else (v, u)


class SignedGraphBuilder:
    """Accumulate signed edges with configurable duplicate resolution.

    Parameters
    ----------
    on_duplicate:
        ``"error"`` raises when the same pair is added twice with
        conflicting signs; ``"last"`` keeps the most recent sign;
        ``"majority"`` keeps the sign seen more often (ties resolve
        negative, the conservative choice for cohesion mining).

    Examples
    --------
    >>> b = SignedGraphBuilder(on_duplicate="majority")
    >>> b.add(1, 2, "+"); b.add(1, 2, "+"); b.add(1, 2, "-")
    >>> b.build().sign(1, 2)
    1
    """

    _POLICIES = ("error", "last", "majority")

    def __init__(self, on_duplicate: str = "error"):
        if on_duplicate not in self._POLICIES:
            raise GraphError(
                f"unknown duplicate policy {on_duplicate!r}; expected one of {self._POLICIES}"
            )
        self._policy = on_duplicate
        self._signs: Dict[Tuple[Node, Node], int] = {}
        self._votes: Dict[Tuple[Node, Node], Counter] = {}
        self._isolated: set = set()

    def add_node(self, node: Node) -> None:
        """Record an isolated node to be present in the built graph."""
        self._isolated.add(node)

    def add(self, u: Node, v: Node, sign: object) -> None:
        """Record the edge ``(u, v)`` with *sign* under the duplicate policy."""
        if u == v:
            raise SelfLoopError(f"self-loop on node {u!r} is not allowed")
        canonical = normalize_sign(sign)
        pair = _canonical_pair(u, v)
        if self._policy == "majority":
            self._votes.setdefault(pair, Counter())[canonical] += 1
            return
        existing = self._signs.get(pair)
        if existing is not None and existing != canonical and self._policy == "error":
            raise GraphError(f"conflicting signs for edge ({u!r}, {v!r})")
        self._signs[pair] = canonical

    def add_all(self, edges: Iterable[Tuple[Node, Node, object]]) -> None:
        """Record every ``(u, v, sign)`` triple in *edges*."""
        for u, v, sign in edges:
            self.add(u, v, sign)

    def build(self) -> SignedGraph:
        """Materialise the accumulated edges into a :class:`SignedGraph`."""
        graph = SignedGraph()
        for node in self._isolated:
            graph.add_node(node)
        if self._policy == "majority":
            for (u, v), votes in self._votes.items():
                sign = POSITIVE if votes[POSITIVE] > votes[NEGATIVE] else NEGATIVE
                graph.add_edge(u, v, sign)
        else:
            for (u, v), sign in self._signs.items():
                graph.add_edge(u, v, sign)
        return graph


class WeightedGraphBuilder:
    """Accumulate edge weights, then sign by threshold (the DBLP recipe).

    The paper builds its signed DBLP network by assigning ``+`` to a
    co-authorship edge whose paper count reaches the average weight
    ``tau`` and ``-`` otherwise. :meth:`build_signed` implements exactly
    that transformation for any accumulated weighted graph.

    Examples
    --------
    >>> b = WeightedGraphBuilder()
    >>> b.add(1, 2); b.add(1, 2); b.add(2, 3)
    >>> g = b.build_signed()            # tau = average weight = 1.5
    >>> g.sign(1, 2), g.sign(2, 3)
    (1, -1)
    """

    def __init__(self):
        self._weights: Dict[Tuple[Node, Node], float] = {}

    def add(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add *weight* (default 1) to the accumulated weight of ``(u, v)``."""
        if u == v:
            raise SelfLoopError(f"self-loop on node {u!r} is not allowed")
        pair = _canonical_pair(u, v)
        self._weights[pair] = self._weights.get(pair, 0.0) + weight

    def average_weight(self) -> float:
        """Return the mean accumulated edge weight (``tau`` in the paper)."""
        if not self._weights:
            raise GraphError("no edges accumulated; average weight undefined")
        return sum(self._weights.values()) / len(self._weights)

    def build_signed(self, threshold: float | None = None) -> SignedGraph:
        """Return a signed graph: weight >= *threshold* => ``+``, else ``-``.

        When *threshold* is omitted the average accumulated weight is
        used, matching the paper's choice of ``tau``.
        """
        if threshold is None:
            threshold = self.average_weight()
        graph = SignedGraph()
        for (u, v), weight in self._weights.items():
            graph.add_edge(u, v, POSITIVE if weight >= threshold else NEGATIVE)
        return graph
