"""Consistency checks for :class:`~repro.graphs.SignedGraph`.

The graph structure maintains three parallel indexes (sign table,
positive adjacency, negative adjacency). :func:`validate_graph` audits
that they agree — the test-suite runs it after every mutating operation
sequence, and algorithm authors can call it when debugging.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import GraphError
from repro.graphs.signed_graph import NEGATIVE, POSITIVE, SignedGraph


def validation_errors(graph: SignedGraph) -> List[str]:
    """Return a list of human-readable inconsistency descriptions.

    An empty list means the graph's internal indexes are coherent.
    """
    errors: List[str] = []
    pos_count = 0
    neg_count = 0
    for u in graph.nodes():
        for v, sign in graph._sign[u].items():
            if sign not in (POSITIVE, NEGATIVE):
                errors.append(f"edge ({u!r}, {v!r}) has non-canonical sign {sign!r}")
            if graph._sign.get(v, {}).get(u) != sign:
                errors.append(f"edge ({u!r}, {v!r}) is not symmetric")
            if sign == POSITIVE:
                pos_count += 1
                if v not in graph._pos[u]:
                    errors.append(f"positive edge ({u!r}, {v!r}) missing from _pos index")
                if v in graph._neg[u]:
                    errors.append(f"positive edge ({u!r}, {v!r}) wrongly in _neg index")
            else:
                neg_count += 1
                if v not in graph._neg[u]:
                    errors.append(f"negative edge ({u!r}, {v!r}) missing from _neg index")
                if v in graph._pos[u]:
                    errors.append(f"negative edge ({u!r}, {v!r}) wrongly in _pos index")
        extra_pos = graph._pos[u] - set(graph._sign[u])
        extra_neg = graph._neg[u] - set(graph._sign[u])
        if extra_pos:
            errors.append(f"node {u!r} has stale positive index entries {extra_pos!r}")
        if extra_neg:
            errors.append(f"node {u!r} has stale negative index entries {extra_neg!r}")
    if pos_count != 2 * graph.number_of_positive_edges():
        errors.append(
            f"positive edge counter {graph.number_of_positive_edges()} disagrees "
            f"with adjacency ({pos_count} directed entries)"
        )
    if neg_count != 2 * graph.number_of_negative_edges():
        errors.append(
            f"negative edge counter {graph.number_of_negative_edges()} disagrees "
            f"with adjacency ({neg_count} directed entries)"
        )
    return errors


def validate_graph(graph: SignedGraph) -> None:
    """Raise :class:`GraphError` if the graph's internal indexes disagree."""
    errors = validation_errors(graph)
    if errors:
        raise GraphError("; ".join(errors))
