"""Structural statistics of signed graphs.

These are the quantities the paper's complexity analysis and Table I
lean on: degree profiles, the maximum k-core number ``k_max``, the
degeneracy (which upper-bounds and closely tracks the arboricity
``sigma`` appearing in MCNew's O(sigma * m) bound), and sign-balance
statistics used by the dataset stand-ins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.graphs.signed_graph import Node, SignedGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics mirroring Table I of the paper.

    Attributes
    ----------
    nodes, edges:
        ``n = |V|`` and ``m = |E|``.
    positive_edges, negative_edges:
        ``|E+|`` and ``|E-|``.
    k_max:
        Maximum (sign-blind) core number, the paper's ``k_max`` column.
    max_degree, max_positive_degree, max_negative_degree:
        Degree maxima over all nodes.
    negative_fraction:
        ``|E-| / |E|`` (0 for the empty graph).
    """

    nodes: int
    edges: int
    positive_edges: int
    negative_edges: int
    k_max: int
    max_degree: int
    max_positive_degree: int
    max_negative_degree: int
    negative_fraction: float

    def as_table_row(self, name: str) -> str:
        """Render this record as one row of a Table-I style report."""
        return (
            f"{name:<14} {self.nodes:>9,} {self.edges:>10,} "
            f"{self.positive_edges:>10,} {self.negative_edges:>10,} {self.k_max:>6}"
        )


def degeneracy(graph: SignedGraph) -> int:
    """Return the degeneracy of the sign-blind graph.

    The degeneracy equals the maximum core number and upper-bounds the
    arboricity within a factor of 2 (arboricity <= degeneracy <=
    2 * arboricity - 1), so it is the practical stand-in for the
    ``sigma`` in MCNew's O(sigma * m) bound.
    """
    from repro.algorithms.kcore import core_numbers

    numbers = core_numbers(graph)
    return max(numbers.values(), default=0)


def arboricity_upper_bound(graph: SignedGraph) -> int:
    """Return the Chiba–Nishizeki O(sqrt(m)) upper bound on arboricity.

    The paper cites arboricity <= ceil(sqrt(m)); combined with the
    degeneracy bound the tighter of the two is returned.
    """
    m = graph.number_of_edges()
    if m == 0:
        return 0
    sqrt_bound = math.isqrt(m)
    if sqrt_bound * sqrt_bound < m:
        sqrt_bound += 1
    return min(sqrt_bound, degeneracy(graph))


def degree_histogram(graph: SignedGraph) -> Dict[int, int]:
    """Return ``{degree: count}`` over all nodes (sign-blind)."""
    histogram: Dict[int, int] = {}
    for node in graph.nodes():
        d = graph.degree(node)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def positive_degree_sequence(graph: SignedGraph) -> List[int]:
    """Return the sorted (descending) positive-degree sequence."""
    return sorted((graph.positive_degree(node) for node in graph.nodes()), reverse=True)


def graph_stats(graph: SignedGraph) -> GraphStats:
    """Compute the full :class:`GraphStats` record for *graph*."""
    from repro.algorithms.kcore import core_numbers

    numbers = core_numbers(graph)
    k_max = max(numbers.values(), default=0)
    max_degree = 0
    max_pos = 0
    max_neg = 0
    for node in graph.nodes():
        max_degree = max(max_degree, graph.degree(node))
        max_pos = max(max_pos, graph.positive_degree(node))
        max_neg = max(max_neg, graph.negative_degree(node))
    m = graph.number_of_edges()
    return GraphStats(
        nodes=graph.number_of_nodes(),
        edges=m,
        positive_edges=graph.number_of_positive_edges(),
        negative_edges=graph.number_of_negative_edges(),
        k_max=k_max,
        max_degree=max_degree,
        max_positive_degree=max_pos,
        max_negative_degree=max_neg,
        negative_fraction=(graph.number_of_negative_edges() / m) if m else 0.0,
    )


def estimated_bytes(graph: SignedGraph) -> int:
    """Rough in-memory footprint estimate of the adjacency structure.

    Used by the Figure-9 memory experiment as the "graph size" baseline.
    The estimate counts, per directed adjacency entry, one dict slot and
    one set slot (~2 * 64 bytes with CPython overheads folded in), plus a
    fixed per-node cost. It is intentionally a simple deterministic
    model, not a profiler.
    """
    per_edge_entry = 128  # dict slot + set slot, both directions counted below
    per_node = 256
    return graph.number_of_nodes() * per_node + 2 * graph.number_of_edges() * per_edge_entry


def sign_assortativity(graph: SignedGraph) -> float:
    """Return the fraction of triangles that are *balanced* (even # of '-').

    A classic signed-network statistic (structural balance). Returns 1.0
    for triangle-free graphs, so callers can treat the value as "degree
    of balance" without special-casing.
    """
    from repro.algorithms.triangles import iter_triangles

    balanced = 0
    total = 0
    for u, v, w in iter_triangles(graph):
        negatives = (
            (graph.sign(u, v) < 0) + (graph.sign(v, w) < 0) + (graph.sign(u, w) < 0)
        )
        total += 1
        if negatives % 2 == 0:
            balanced += 1
    return balanced / total if total else 1.0
