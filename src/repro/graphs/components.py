"""Connected components of signed graphs.

MSCE (Algorithm 4 of the paper) enumerates within each *maximal
connected component* of the MCCore independently, and Lemma 1/3 are
stated per component, so component extraction sits on the hot path of
the reduction pipeline. Components here are sign-blind (an edge connects
regardless of its label); a positive-only variant is provided for the
positive-edge graph analyses.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Set

from repro.graphs.signed_graph import Node, SignedGraph


def _bfs_component(adjacency, start: Node, unseen: Set[Node]) -> Set[Node]:
    """Collect the component of *start* restricted to *unseen* nodes."""
    component = {start}
    unseen.discard(start)
    frontier = [start]
    while frontier:
        next_frontier: List[Node] = []
        for node in frontier:
            for neighbor in adjacency(node):
                if neighbor in unseen:
                    unseen.discard(neighbor)
                    component.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return component


def connected_components(graph: SignedGraph, nodes: Iterable[Node] | None = None) -> Iterator[Set[Node]]:
    """Yield the node sets of the connected components of *graph*.

    When *nodes* is given, components are computed in the subgraph
    induced by those nodes without materialising it.
    """
    if nodes is None:
        unseen = graph.node_set()
        adjacency = graph.neighbor_keys
    else:
        unseen = {node for node in nodes if graph.has_node(node)}
        members = set(unseen)

        def adjacency(node: Node) -> Set[Node]:
            return graph.neighbor_keys(node) & members

    while unseen:
        start = next(iter(unseen))
        yield _bfs_component(adjacency, start, unseen)


def positive_connected_components(
    graph: SignedGraph, nodes: Iterable[Node] | None = None
) -> Iterator[Set[Node]]:
    """Yield components of the positive-edge graph ``G+`` of *graph*.

    Isolated nodes (no positive edges) form singleton components.
    """
    if nodes is None:
        unseen = graph.node_set()
        adjacency = graph.positive_neighbors
    else:
        unseen = {node for node in nodes if graph.has_node(node)}
        members = set(unseen)

        def adjacency(node: Node) -> Set[Node]:
            return graph.positive_neighbors(node) & members

    while unseen:
        start = next(iter(unseen))
        yield _bfs_component(adjacency, start, unseen)


def largest_component(graph: SignedGraph) -> Set[Node]:
    """Return the node set of the largest connected component.

    Returns the empty set for an empty graph.
    """
    best: Set[Node] = set()
    for component in connected_components(graph):
        if len(component) > len(best):
            best = component
    return best


def is_connected(graph: SignedGraph) -> bool:
    """Return ``True`` if *graph* is non-empty and connected."""
    components = connected_components(graph)
    first = next(components, None)
    if first is None:
        return False
    return next(components, None) is None
