"""Signed graph data structures and structural utilities.

The package exports the :class:`SignedGraph` container used by every
algorithm in the library, builders for bulk/weighted construction,
connected-component extraction, and summary statistics.
"""

from repro.graphs.builder import SignedGraphBuilder, WeightedGraphBuilder
from repro.graphs.components import (
    connected_components,
    is_connected,
    largest_component,
    positive_connected_components,
)
from repro.graphs.properties import (
    GraphStats,
    arboricity_upper_bound,
    degeneracy,
    degree_histogram,
    estimated_bytes,
    graph_stats,
    positive_degree_sequence,
    sign_assortativity,
)
from repro.graphs.signed_graph import (
    NEGATIVE,
    POSITIVE,
    Node,
    SignedGraph,
    normalize_sign,
)
from repro.graphs.validation import validate_graph, validation_errors

__all__ = [
    "SignedGraph",
    "SignedGraphBuilder",
    "WeightedGraphBuilder",
    "POSITIVE",
    "NEGATIVE",
    "Node",
    "normalize_sign",
    "connected_components",
    "positive_connected_components",
    "largest_component",
    "is_connected",
    "GraphStats",
    "graph_stats",
    "degeneracy",
    "arboricity_upper_bound",
    "degree_histogram",
    "positive_degree_sequence",
    "sign_assortativity",
    "estimated_bytes",
    "validate_graph",
    "validation_errors",
]
