"""Exception hierarchy for the :mod:`repro` library.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch one base class. Specific subclasses communicate which
layer of the system rejected the input: graph construction, parameter
validation, I/O parsing, or experiment configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphError(ReproError):
    """Invalid operation on a signed graph (unknown node, bad edge, ...)."""


class EdgeSignError(GraphError):
    """An edge sign was not one of the accepted positive/negative forms."""


class SelfLoopError(GraphError):
    """A self-loop was supplied; signed cliques are defined on simple graphs."""


class ParameterError(ReproError):
    """An (alpha, k) or model parameter is outside its valid domain."""


class ParseError(ReproError):
    """A signed edge-list or JSON document could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class ExecutionError(ReproError):
    """The parallel execution layer failed at runtime (not a user input error)."""


class SharedMemoryError(ExecutionError):
    """A shared-memory segment could not be allocated or populated.

    Raised by :meth:`repro.fastpath.shared.SharedCompiledGraph.create`
    when the operating system refuses the segment (tiny ``/dev/shm``,
    resource limits). The parallel enumerator catches this and degrades
    to the inline sequential path instead of failing the run.
    """


class StorageError(ReproError):
    """An on-disk :class:`~repro.fastpath.compiled.CompiledGraph` artifact
    could not be written, opened, or validated.

    Raised by :mod:`repro.fastpath.storage` on magic/version mismatches,
    truncated files, fingerprint mismatches, and big-endian hosts (the
    layout is little-endian on disk and attached zero-copy).
    """


class WorkerCrashError(ExecutionError):
    """The worker pool collapsed and strict mode forbids degradation.

    Only raised by :meth:`repro.core.scheduler.WorkStealingScheduler.run`
    when constructed with ``strict=True``; the default behaviour is to
    hand unfinished frames back to the caller for inline completion.
    """
