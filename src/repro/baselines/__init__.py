"""Baseline community models from the paper's evaluation (Section V-B).

* ``Core`` — positive-edge ceil(alpha*k)-core components;
* ``SignedCore`` — Giatsidis et al.'s (beta, gamma) s-core;
* ``TClique`` — Hao et al.'s maximal trusted (all-positive) cliques.
"""

from repro.baselines.antagonistic import (
    enumerate_antagonistic_pairs,
    is_antagonistic_pair,
    maximal_antagonistic_pairs,
)
from repro.baselines.core_model import core_communities, top_r_core_communities
from repro.baselines.signed_core import (
    max_signed_core_beta,
    signed_core,
    signed_core_communities,
    signed_core_decomposition,
    top_r_signed_core_communities,
)
from repro.baselines.tclique import tclique_communities, top_r_tcliques

__all__ = [
    "core_communities",
    "top_r_core_communities",
    "signed_core",
    "signed_core_communities",
    "top_r_signed_core_communities",
    "tclique_communities",
    "top_r_tcliques",
    "signed_core_decomposition",
    "max_signed_core_beta",
    "enumerate_antagonistic_pairs",
    "maximal_antagonistic_pairs",
    "is_antagonistic_pair",
]
