"""Antagonistic clique pairs — the "gangs in war" related-work model.

The paper's related work surveys antagonistic community detection (Gao
et al., DMKD 2016; Chu et al., KDD 2016): two cohesive groups that are
internally friendly and mutually hostile. The crispest exact form of
that idea on our machinery is the **maximal antagonistic clique pair**:

* ``A`` and ``B`` are disjoint, non-empty, and each induces an
  all-positive clique;
* every cross pair ``(a, b)`` with ``a in A, b in B`` is a *negative*
  edge;
* no node can be added to either side without breaking the pattern
  (maximality is per-pair, not per-side).

Enumeration is a two-sided Bron–Kerbosch: states carry both partial
sides plus candidate and exclusion sets; a node is a candidate for side
``A`` iff it is positively adjacent to all of ``A`` and negatively
adjacent to all of ``B`` (symmetrically for ``B``). Pairs are reported
at leaves with empty candidate *and* exclusion sets (the standard BK
maximality argument), de-duplicated under the (A, B)/(B, A) symmetry
and across the per-negative-edge search roots.

Exponential in the worst case, like every maximal-clique-style
enumeration; the double adjacency constraint shrinks candidate sets
quickly on real signed networks.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set, Tuple

from repro.graphs.signed_graph import Node, SignedGraph

CliquePair = Tuple[FrozenSet[Node], FrozenSet[Node]]


def _extendable(graph: SignedGraph, node: Node, side: Set[Node], other: Set[Node]) -> bool:
    """Can *node* join *side* against *other*?"""
    if not side <= graph.positive_neighbors(node):
        return False
    return other <= graph.negative_neighbors(node)


def _filter(graph: SignedGraph, pool: Set[Node], side: Set[Node], other: Set[Node]) -> Set[Node]:
    return {node for node in pool if _extendable(graph, node, side, other)}


def enumerate_antagonistic_pairs(graph: SignedGraph, min_side: int = 2) -> List[CliquePair]:
    """Every maximal antagonistic clique pair with both sides >= *min_side*.

    Pairs are returned once, the side containing the repr-smallest node
    first. ``min_side=1`` admits star-like pairs (one node against a
    clique); the default demands genuine groups on both sides.
    """
    found: Set[FrozenSet[FrozenSet[Node]]] = set()
    results: List[CliquePair] = []

    def emit(side_a: Set[Node], side_b: Set[Node]) -> None:
        if len(side_a) < min_side or len(side_b) < min_side:
            return
        key = frozenset((frozenset(side_a), frozenset(side_b)))
        if key in found:
            return
        found.add(key)
        first, second = sorted(
            (frozenset(side_a), frozenset(side_b)),
            key=lambda side: min(map(repr, side)),
        )
        results.append((first, second))

    def search(
        side_a: Set[Node],
        side_b: Set[Node],
        cand_a: Set[Node],
        cand_b: Set[Node],
        excl_a: Set[Node],
        excl_b: Set[Node],
    ) -> None:
        if not cand_a and not cand_b:
            if not excl_a and not excl_b:
                emit(side_a, side_b)
            return
        node = next(iter(cand_a)) if len(cand_a) >= len(cand_b) else next(iter(cand_b))
        union_candidates = (cand_a | cand_b) - {node}
        union_excluded = excl_a | excl_b

        if node in cand_a:  # include into side A
            new_a = side_a | {node}
            search(
                new_a,
                side_b,
                _filter(graph, union_candidates, new_a, side_b),
                _filter(graph, union_candidates, side_b, new_a),
                _filter(graph, union_excluded, new_a, side_b),
                _filter(graph, union_excluded, side_b, new_a),
            )
        if node in cand_b:  # include into side B
            new_b = side_b | {node}
            search(
                side_a,
                new_b,
                _filter(graph, union_candidates, side_a, new_b),
                _filter(graph, union_candidates, new_b, side_a),
                _filter(graph, union_excluded, side_a, new_b),
                _filter(graph, union_excluded, new_b, side_a),
            )
        # Exclude branch: the node moves to the exclusion set of every
        # role it could have played.
        search(
            side_a,
            side_b,
            cand_a - {node},
            cand_b - {node},
            excl_a | ({node} if node in cand_a else set()),
            excl_b | ({node} if node in cand_b else set()),
        )

    for u, v in sorted(graph.negative_edges(), key=lambda e: (repr(e[0]), repr(e[1]))):
        side_a, side_b = {u}, {v}
        pool = graph.node_set() - {u, v}
        search(
            side_a,
            side_b,
            _filter(graph, pool, side_a, side_b),
            _filter(graph, pool, side_b, side_a),
            set(),
            set(),
        )
    return results


def maximal_antagonistic_pairs(graph: SignedGraph, min_side: int = 2) -> List[CliquePair]:
    """All maximal antagonistic clique pairs, biggest (|A| + |B|) first."""
    pairs = enumerate_antagonistic_pairs(graph, min_side=min_side)
    pairs.sort(key=lambda pair: (-(len(pair[0]) + len(pair[1])), repr(pair)))
    return pairs


def is_antagonistic_pair(graph: SignedGraph, side_a: Set[Node], side_b: Set[Node]) -> bool:
    """Check the antagonistic-pair pattern itself (not maximality)."""
    if not side_a or not side_b or side_a & side_b:
        return False
    for side in (side_a, side_b):
        for node in side:
            if not (side - {node}) <= graph.positive_neighbors(node):
                return False
    for a in side_a:
        if not side_b <= graph.negative_neighbors(a):
            return False
    return True
