"""The ``Core`` baseline community model (Section V-B).

The paper's weakest baseline: drop every negative edge, compute the
maximal ceil(alpha*k)-core of what remains, and report its connected
components as communities. It shares the positive-degree requirement
with the (alpha, k)-clique model but imposes no clique structure and no
negative-edge budget, which is exactly why the paper finds it loose
(huge or empty communities in the case studies).
"""

from __future__ import annotations

from typing import List, Set

from repro.algorithms.kcore import k_core
from repro.core.params import AlphaK
from repro.graphs.components import connected_components
from repro.graphs.signed_graph import Node, SignedGraph


def core_communities(graph: SignedGraph, params: AlphaK) -> List[Set[Node]]:
    """Return Core-model communities, largest first.

    Each community is a connected component of the maximal
    ceil(alpha*k)-core of the positive-edge graph. Components are
    connected via positive edges only (negative edges were removed by
    the model before coring).
    """
    members = k_core(graph, params.positive_threshold, sign="positive")
    if not members:
        return []
    positive_view = graph.positive_subgraph()
    components = connected_components(positive_view, nodes=members)
    return sorted(components, key=lambda c: (-len(c), sorted(map(repr, c))))


def top_r_core_communities(graph: SignedGraph, params: AlphaK, r: int) -> List[Set[Node]]:
    """Return the ``r`` largest Core communities."""
    return core_communities(graph, params)[: max(r, 0)]
