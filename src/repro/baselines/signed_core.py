"""The SignedCore (s-core) baseline of Giatsidis et al. (SDM 2014).

A ``(beta, gamma)``-signed-core is the maximal induced subgraph in which
every node has at least ``beta`` positive neighbours **and** at least
``gamma`` negative neighbours inside the subgraph. The original model
was built to study trust dynamics; the paper uses it as a community
baseline with ``beta = ceil(alpha*k)`` and ``gamma = k`` to match the
(alpha, k)-clique parameters (Section V-B, Exp-8).

The paper's critique, reproduced by our Table-II/Fig-11 experiments:
requiring *at least* ``gamma`` negative neighbours forces conflict into
every community (and returns nothing when ``gamma`` exceeds what the
graph can supply), whereas the signed clique model bounds conflict from
above.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

from repro.core.params import AlphaK
from repro.exceptions import ParameterError
from repro.graphs.components import connected_components
from repro.graphs.signed_graph import Node, SignedGraph


def signed_core(graph: SignedGraph, beta: int, gamma: int) -> Set[Node]:
    """Return the maximal (beta, gamma)-signed-core node set.

    Iterative peeling: repeatedly delete nodes with fewer than *beta*
    positive or fewer than *gamma* negative neighbours among survivors.
    The constraint is monotone, so the fixpoint is the unique maximal
    satisfying set (possibly empty).
    """
    if beta < 0 or gamma < 0:
        raise ParameterError(f"beta and gamma must be non-negative, got ({beta}, {gamma})")
    alive: Set[Node] = graph.node_set()
    positive = {node: graph.positive_degree(node) for node in alive}
    negative = {node: graph.negative_degree(node) for node in alive}
    queue: deque = deque(
        node for node in alive if positive[node] < beta or negative[node] < gamma
    )
    dead = set(queue)
    alive -= dead
    while queue:
        node = queue.popleft()
        for neighbor in graph.positive_neighbors(node):
            if neighbor in alive:
                positive[neighbor] -= 1
                if positive[neighbor] < beta:
                    alive.discard(neighbor)
                    queue.append(neighbor)
        for neighbor in graph.negative_neighbors(node):
            if neighbor in alive:
                negative[neighbor] -= 1
                if negative[neighbor] < gamma:
                    alive.discard(neighbor)
                    queue.append(neighbor)
    return alive


def signed_core_decomposition(
    graph: SignedGraph, gamma: int = 0
) -> "dict":
    """Per-node s-core numbers at a fixed negative requirement *gamma*.

    Giatsidis et al. study trust dynamics through the *s-core
    decomposition*: for each node, the largest ``beta`` such that the
    node belongs to a (beta, gamma)-signed-core. Computed by binary-free
    iterative peeling: peel at increasing beta, recording the level at
    which each node falls out (nodes never satisfying the gamma
    requirement get level -1).

    Returns ``{node: max_beta}``.
    """
    if gamma < 0:
        raise ParameterError(f"gamma must be non-negative, got {gamma}")
    levels = {node: -1 for node in graph.nodes()}
    survivors = signed_core(graph, 0, gamma)
    beta = 0
    while survivors:
        for node in survivors:
            levels[node] = beta
        beta += 1
        survivors = signed_core(graph, beta, gamma)
    return levels


def max_signed_core_beta(graph: SignedGraph, gamma: int = 0) -> int:
    """The largest beta with a non-empty (beta, gamma)-signed-core."""
    return max(signed_core_decomposition(graph, gamma).values(), default=-1)


def signed_core_communities(graph: SignedGraph, params: AlphaK) -> List[Set[Node]]:
    """SignedCore communities under the paper's parameter matching.

    ``beta = ceil(alpha*k)``, ``gamma = k``; communities are connected
    components (sign-blind) of the resulting core, largest first.
    """
    members = signed_core(graph, beta=params.positive_threshold, gamma=params.k)
    if not members:
        return []
    components = connected_components(graph, nodes=members)
    return sorted(components, key=lambda c: (-len(c), sorted(map(repr, c))))


def top_r_signed_core_communities(
    graph: SignedGraph, params: AlphaK, r: int
) -> List[Set[Node]]:
    """Return the ``r`` largest SignedCore communities."""
    return signed_core_communities(graph, params)[: max(r, 0)]
