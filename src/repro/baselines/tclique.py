"""The TClique baseline of Hao et al. (IEEE Internet Computing 2014).

TClique ("trusted clique") finds maximal cliques of the positive-edge
graph, ignoring negative edges altogether. The original model caps the
clique size at ``k``; following the paper (Section V-B) we drop the size
cap and enumerate all maximal trusted cliques, ranking by size.

The paper's critique, visible in the Fig-10 case study: by refusing any
negative (weak) tie, TClique truncates communities that the signed
clique model keeps whole with a small negative budget.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from repro.algorithms.cliques import maximal_cliques
from repro.graphs.signed_graph import Node, SignedGraph


def tclique_communities(
    graph: SignedGraph, min_size: int = 2, limit: Optional[int] = None
) -> List[FrozenSet[Node]]:
    """Return maximal positive cliques of size >= *min_size*, largest first.

    *limit* caps the number of cliques collected (they are still the
    largest ones of those enumerated; enumeration order is not
    size-sorted, so pass ``None`` for exact top-r semantics on small
    graphs and use the cap only as a safety valve on huge ones).
    """
    found: List[FrozenSet[Node]] = []
    for clique in maximal_cliques(graph, sign="positive"):
        if len(clique) >= min_size:
            found.append(clique)
            if limit is not None and len(found) >= limit:
                break
    return sorted(found, key=lambda c: (-len(c), sorted(map(repr, c))))


def top_r_tcliques(graph: SignedGraph, r: int, min_size: int = 2) -> List[FrozenSet[Node]]:
    """Return the ``r`` largest maximal trusted cliques."""
    return tclique_communities(graph, min_size=min_size)[: max(r, 0)]
