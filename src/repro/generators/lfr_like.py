"""LFR-style signed community benchmark generator.

The LFR benchmark (Lancichinetti–Fortunato–Radicchi) is the standard
testbed for community detection: power-law degrees, power-law community
sizes, and a *mixing parameter* mu controlling what fraction of each
node's edges leave its community. This module provides a signed
adaptation at the fidelity our experiments need:

* each node gets a target degree from a truncated power law;
* communities get sizes from a second truncated power law;
* a fraction ``1 - mu`` of each node's edges go to random members of
  its own community, the rest to random outsiders;
* signs follow community structure with controllable noise: internal
  edges are positive (negative with probability ``internal_noise``),
  external edges negative (positive with probability
  ``external_noise``) — the structurally-balanced limit is
  ``internal_noise = external_noise = 0``.

Returns the ground-truth partition, so detection quality can be scored
with :func:`repro.metrics.nmi` / :func:`repro.metrics.omega_index`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import ParameterError
from repro.generators.planted import heavy_tailed_sizes
from repro.graphs.signed_graph import NEGATIVE, POSITIVE, SignedGraph


def lfr_like_signed(
    n: int = 500,
    average_degree: float = 8.0,
    degree_exponent: float = 2.5,
    community_size_range: Tuple[int, int] = (10, 60),
    community_exponent: float = 1.5,
    mu: float = 0.2,
    internal_noise: float = 0.05,
    external_noise: float = 0.1,
    seed: Optional[int] = None,
) -> Tuple[SignedGraph, List[Set[int]]]:
    """Generate a signed LFR-style benchmark graph with ground truth.

    Parameters
    ----------
    n:
        Number of nodes.
    average_degree, degree_exponent:
        Target degree distribution (truncated power law with the given
        exponent, scaled to the requested mean).
    community_size_range, community_exponent:
        Community size distribution; sizes are drawn until they cover
        ``n`` (the last community absorbs the remainder).
    mu:
        Mixing parameter in [0, 1): expected fraction of each node's
        edges that leave its community.
    internal_noise, external_noise:
        Sign-noise probabilities (see module docstring).
    seed:
        RNG seed.

    Returns
    -------
    (graph, communities):
        The signed graph and the ground-truth partition (a list of
        disjoint node sets covering all nodes).
    """
    if n < 4:
        raise ParameterError(f"n must be at least 4, got {n}")
    if not (0.0 <= mu < 1.0):
        raise ParameterError(f"mu must be in [0, 1), got {mu}")
    if community_size_range[0] < 2:
        raise ParameterError("communities need at least 2 members")
    rng = random.Random(seed)

    # Partition nodes into power-law-sized communities.
    communities: List[Set[int]] = []
    assigned = 0
    while assigned < n:
        remaining = n - assigned
        size = heavy_tailed_sizes(
            1, community_size_range[0], community_size_range[1], rng, community_exponent
        )[0]
        if remaining - size < community_size_range[0]:
            size = remaining  # absorb the tail into the final community
        communities.append(set(range(assigned, assigned + size)))
        assigned += size
    membership: Dict[int, int] = {}
    for index, members in enumerate(communities):
        for node in members:
            membership[node] = index

    # Truncated power-law degrees scaled to the requested mean.
    max_degree = max(int(n ** 0.5) * 2, 4)
    raw = [
        rng.paretovariate(degree_exponent - 1) for _ in range(n)
    ]
    scale = average_degree / (sum(raw) / n)
    degrees = [max(2, min(max_degree, round(value * scale))) for value in raw]

    graph = SignedGraph(nodes=range(n))
    nodes = list(range(n))
    for node in nodes:
        own = communities[membership[node]]
        own_list = sorted(own - {node})
        for _ in range(degrees[node]):
            if own_list and rng.random() >= mu:
                target = rng.choice(own_list)
            else:
                target = rng.choice(nodes)
                if target == node:
                    continue
            if graph.has_edge(node, target):
                continue
            internal = membership[target] == membership[node]
            if internal:
                sign = NEGATIVE if rng.random() < internal_noise else POSITIVE
            else:
                sign = POSITIVE if rng.random() < external_noise else NEGATIVE
            graph.add_edge(node, target, sign)
    return graph, communities
