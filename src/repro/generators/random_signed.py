"""Elementary random signed graph generators.

Provides Erdős–Rényi signed graphs and the paper's Youtube/Pokec recipe:
take an unsigned topology and assign signs uniformly at random with a
fixed negative fraction (30% in the paper).
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Iterable, Optional

from repro.exceptions import ParameterError
from repro.graphs.signed_graph import NEGATIVE, POSITIVE, SignedGraph


def _check_fraction(value: float, name: str) -> None:
    if not (0.0 <= value <= 1.0):
        raise ParameterError(f"{name} must be in [0, 1], got {value!r}")


def gnp_signed(
    n: int,
    p: float,
    negative_fraction: float = 0.3,
    seed: Optional[int] = None,
) -> SignedGraph:
    """Signed G(n, p): each pair is an edge w.p. *p*, negative w.p. *negative_fraction*.

    Nodes are ``0..n-1``; isolated nodes are kept so ``len(graph) == n``.
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    _check_fraction(p, "p")
    _check_fraction(negative_fraction, "negative_fraction")
    rng = random.Random(seed)
    graph = SignedGraph(nodes=range(n))
    for u, v in combinations(range(n), 2):
        if rng.random() < p:
            sign = NEGATIVE if rng.random() < negative_fraction else POSITIVE
            graph.add_edge(u, v, sign)
    return graph


def random_sign_assignment(
    graph: SignedGraph,
    negative_fraction: float = 0.3,
    seed: Optional[int] = None,
) -> SignedGraph:
    """Re-sign *graph*'s topology uniformly at random (the paper's recipe).

    "We generate a signed network for each by randomly picking 30% of
    the edges as the negative edges and the remaining edges as positive
    edges" (Section V, on Youtube and Pokec). Exactly
    ``round(m * negative_fraction)`` edges become negative. Returns a
    new graph; the input is untouched.
    """
    _check_fraction(negative_fraction, "negative_fraction")
    rng = random.Random(seed)
    edges = sorted(
        ((u, v) for u, v, _sign in graph.edges()),
        key=lambda edge: (repr(edge[0]), repr(edge[1])),
    )
    negative_count = round(len(edges) * negative_fraction)
    negative_indices = set(rng.sample(range(len(edges)), negative_count)) if edges else set()
    signed = SignedGraph(nodes=graph.nodes())
    for index, (u, v) in enumerate(edges):
        signed.add_edge(u, v, NEGATIVE if index in negative_indices else POSITIVE)
    return signed


def random_edge_subsample(
    graph: SignedGraph, fraction: float, seed: Optional[int] = None
) -> SignedGraph:
    """Keep a uniform *fraction* of edges (the Fig-8 scalability protocol).

    "We generate four subgraphs by randomly sampling 20-80% of the edges"
    (Exp-6). Endpoint nodes of surviving edges are kept; fully isolated
    nodes are dropped, as in the paper's subgraph convention.
    """
    _check_fraction(fraction, "fraction")
    rng = random.Random(seed)
    edges = sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
    kept = rng.sample(range(len(edges)), round(len(edges) * fraction)) if edges else []
    sub = SignedGraph()
    for index in sorted(kept):
        u, v, sign = edges[index]
        sub.add_edge(u, v, sign)
    return sub


def random_node_subsample(
    graph: SignedGraph, fraction: float, seed: Optional[int] = None
) -> SignedGraph:
    """Induced subgraph on a uniform *fraction* of nodes (Fig-8's |V| sweep)."""
    _check_fraction(fraction, "fraction")
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    kept = rng.sample(nodes, round(len(nodes) * fraction)) if nodes else []
    return graph.subgraph(kept)


def sprinkle_negative_edges(
    graph: SignedGraph,
    count: int,
    candidates: Optional[Iterable] = None,
    seed: Optional[int] = None,
) -> int:
    """Flip up to *count* random positive edges to negative, in place.

    Returns the number of edges actually flipped. *candidates* restricts
    flipping to edges with both endpoints in the given node set — the
    planted-community generators use this to inject intra-community
    conflict.
    """
    rng = random.Random(seed)
    scope = set(candidates) if candidates is not None else None
    positives = [
        (u, v)
        for u, v in graph.positive_edges()
        if scope is None or (u in scope and v in scope)
    ]
    positives.sort(key=lambda edge: (repr(edge[0]), repr(edge[1])))
    rng.shuffle(positives)
    flipped = 0
    for u, v in positives[: max(count, 0)]:
        graph.set_sign(u, v, NEGATIVE)
        flipped += 1
    return flipped
