"""Synthetic signed network generators and paper-dataset stand-ins."""

from repro.generators.datasets import (
    DATASET_BUILDERS,
    PAPER_DATASETS,
    Dataset,
    load_dataset,
    make_dblp_like,
    make_flysign_like,
    make_pokec_like,
    make_slashdot_like,
    make_wiki_like,
    make_youtube_like,
)
from repro.generators.dblp_like import dblp_like_coauthorship
from repro.generators.planted import (
    CommunitySpec,
    heavy_tailed_sizes,
    plant_community,
    planted_partition_graph,
)
from repro.generators.lfr_like import lfr_like_signed
from repro.generators.ppi import flysign_like
from repro.generators.random_signed import (
    gnp_signed,
    random_edge_subsample,
    random_node_subsample,
    random_sign_assignment,
    sprinkle_negative_edges,
)
from repro.generators.social import close_triangles, preferential_attachment

__all__ = [
    "gnp_signed",
    "random_sign_assignment",
    "random_edge_subsample",
    "random_node_subsample",
    "sprinkle_negative_edges",
    "preferential_attachment",
    "close_triangles",
    "CommunitySpec",
    "plant_community",
    "planted_partition_graph",
    "heavy_tailed_sizes",
    "dblp_like_coauthorship",
    "flysign_like",
    "lfr_like_signed",
    "Dataset",
    "DATASET_BUILDERS",
    "PAPER_DATASETS",
    "load_dataset",
    "make_slashdot_like",
    "make_wiki_like",
    "make_dblp_like",
    "make_youtube_like",
    "make_pokec_like",
    "make_flysign_like",
]
