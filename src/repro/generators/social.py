"""Power-law social-network topology generators.

Real signed social networks (Slashdot, Wiki, Youtube, Pokec) share a
heavy-tailed degree distribution with a dense core — the regime in which
the paper's reduction shines (tiny MCCore inside a big graph). The
generators here produce that regime from scratch:

* :func:`preferential_attachment` — Barabási–Albert-style growth, the
  heavy tail;
* :func:`close_triangles` — random triadic closure, raising clustering
  so non-trivial cliques exist outside the planted communities too.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.exceptions import ParameterError
from repro.graphs.signed_graph import POSITIVE, SignedGraph


def preferential_attachment(
    n: int, edges_per_node: int, seed: Optional[int] = None
) -> SignedGraph:
    """Barabási–Albert growth: each new node attaches to *edges_per_node* targets.

    Targets are drawn proportionally to degree via the standard
    repeated-endpoint urn. All edges are created positive; pass the
    result through :func:`repro.generators.random_sign_assignment` (or a
    community-aware signer) to obtain a signed network.
    """
    if edges_per_node < 1:
        raise ParameterError(f"edges_per_node must be >= 1, got {edges_per_node}")
    if n < edges_per_node + 1:
        raise ParameterError(
            f"n must exceed edges_per_node ({edges_per_node}), got {n}"
        )
    rng = random.Random(seed)
    graph = SignedGraph(nodes=range(n))
    urn: List[int] = []
    # Seed clique over the first edges_per_node + 1 nodes.
    seed_size = edges_per_node + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            graph.add_edge(u, v, POSITIVE)
            urn.extend((u, v))
    for node in range(seed_size, n):
        targets = set()
        while len(targets) < edges_per_node:
            targets.add(rng.choice(urn))
        for target in targets:
            graph.add_edge(node, target, POSITIVE)
            urn.extend((node, target))
    return graph


def close_triangles(
    graph: SignedGraph, closures: int, seed: Optional[int] = None
) -> int:
    """Add up to *closures* triangle-closing positive edges, in place.

    Each attempt picks a random node, then two of its neighbours, and
    links them if unlinked. Returns the number of edges added. Raises
    clustering without disturbing the degree tail much — real social
    graphs sit far above G(n, p) clustering, and clique-search workloads
    are meaningless without triangles.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    if not nodes:
        return 0
    added = 0
    attempts = 0
    max_attempts = closures * 20 + 10
    while added < closures and attempts < max_attempts:
        attempts += 1
        hub = rng.choice(nodes)
        neighbors = sorted(graph.neighbors(hub), key=repr)
        if len(neighbors) < 2:
            continue
        u, v = rng.sample(neighbors, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, POSITIVE)
            added += 1
    return added
