"""Planted dense communities — the workload that makes clique search interesting.

A sparse power-law background contains few (alpha, k)-cliques beyond
trivial ones; real signed networks contain dense, mostly-positive
pockets (trust circles, research groups, protein complexes). The
generators here plant such pockets with controllable size, internal
density, and internal conflict, so the enumeration workload and the
ground-truth-based experiments (Fig. 11) are well defined.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Set, Tuple

from repro.exceptions import ParameterError
from repro.graphs.signed_graph import NEGATIVE, POSITIVE, SignedGraph


@dataclass(frozen=True)
class CommunitySpec:
    """Recipe for one planted community.

    Attributes
    ----------
    size:
        Number of members.
    density:
        Probability of each internal pair being linked (1.0 plants a
        clique).
    negative_fraction:
        Probability that an internal edge is negative. Keep below
        ``k / size`` to leave (alpha, k)-cliques intact inside.
    """

    size: int
    density: float = 1.0
    negative_fraction: float = 0.0

    def __post_init__(self):
        if self.size < 2:
            raise ParameterError(f"community size must be >= 2, got {self.size}")
        if not (0.0 < self.density <= 1.0):
            raise ParameterError(f"density must be in (0, 1], got {self.density}")
        if not (0.0 <= self.negative_fraction < 1.0):
            raise ParameterError(
                f"negative_fraction must be in [0, 1), got {self.negative_fraction}"
            )


def plant_community(
    graph: SignedGraph,
    members: Sequence,
    spec: CommunitySpec,
    rng: random.Random,
) -> None:
    """Wire *members* (must match ``spec.size``) into *graph* per *spec*.

    Existing edges keep their sign ("first write wins" is irrelevant
    here because planting happens before background wiring in the
    dataset builders; when it does collide, the planted sign wins via
    ``set_sign``).
    """
    if len(members) != spec.size:
        raise ParameterError(
            f"expected {spec.size} members, got {len(members)}"
        )
    for u, v in combinations(members, 2):
        if rng.random() >= spec.density:
            continue
        sign = NEGATIVE if rng.random() < spec.negative_fraction else POSITIVE
        graph.set_sign(u, v, sign)


def heavy_tailed_sizes(
    count: int,
    minimum: int,
    maximum: int,
    rng: random.Random,
    tail_exponent: float = 2.2,
) -> List[int]:
    """Draw *count* community sizes from a truncated power law.

    Small communities dominate and large ones thin out — matching the
    near-geometric decay of signed-clique counts across alpha/k that the
    paper's Fig. 6 displays.
    """
    if minimum < 2 or maximum < minimum:
        raise ParameterError(f"invalid size range [{minimum}, {maximum}]")
    sizes = []
    weights = [size ** (-tail_exponent) for size in range(minimum, maximum + 1)]
    values = list(range(minimum, maximum + 1))
    for _ in range(count):
        sizes.append(rng.choices(values, weights=weights, k=1)[0])
    return sizes


def planted_partition_graph(
    background: SignedGraph,
    specs: Sequence[CommunitySpec],
    seed: Optional[int] = None,
    overlap_fraction: float = 0.1,
) -> Tuple[SignedGraph, List[Set]]:
    """Overlay planted communities on *background*, returning (graph, communities).

    Members are drawn from the background's node set; with probability
    *overlap_fraction* a community reuses a member of a previously
    planted one, producing the overlapping-community regime in which
    naive per-maximal-clique enumeration generates duplicates (the
    paper's Section-II argument). The input graph is copied, not
    mutated.
    """
    rng = random.Random(seed)
    graph = background.copy()
    nodes = sorted(graph.nodes(), key=repr)
    if not nodes:
        raise ParameterError("background graph is empty")
    used: List = []
    communities: List[Set] = []
    for spec in specs:
        if spec.size > len(nodes):
            raise ParameterError(
                f"community of size {spec.size} exceeds background of {len(nodes)} nodes"
            )
        members: Set = set()
        while len(members) < spec.size:
            if used and rng.random() < overlap_fraction:
                members.add(rng.choice(used))
            else:
                members.add(rng.choice(nodes))
        member_list = sorted(members, key=repr)
        plant_community(graph, member_list, spec, rng)
        used.extend(member_list)
        communities.append(members)
    return graph, communities
