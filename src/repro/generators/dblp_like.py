"""DBLP-style signed co-authorship network (the paper's Section-V recipe).

The paper signs the DBLP co-authorship graph by paper count: an edge is
positive iff two researchers co-authored at least ``tau`` papers, with
``tau`` the average co-authored paper count (1.427 on their snapshot) —
so most one-off collaborations become negative ("weak ties") and the
network ends up 77% negative (Table I), with strongly cooperative
research groups surviving as dense positive pockets.

:func:`dblp_like_coauthorship` reproduces that pipeline end to end from
a synthetic publication history: research groups with heavy-tailed
sizes publish repeatedly among themselves (producing weights >= tau)
and occasionally across groups (producing weight-1, hence negative,
edges).
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from repro.exceptions import ParameterError
from repro.graphs.builder import WeightedGraphBuilder
from repro.graphs.signed_graph import SignedGraph


def dblp_like_coauthorship(
    authors: int = 2600,
    groups: int = 140,
    papers: int = 7000,
    group_size_range: Tuple[int, int] = (4, 22),
    team_size_range: Tuple[int, int] = (2, 5),
    core_size_range: Tuple[int, int] = (4, 17),
    core_paper_count: int = 5,
    cross_group_probability: float = 0.35,
    repeat_team_probability: float = 0.45,
    consortium_count: int = 3,
    consortium_size_range: Tuple[int, int] = (22, 27),
    consortium_negative_probability: float = 0.10,
    consortium_strong_papers: int = 6,
    seed: Optional[int] = None,
) -> Tuple[SignedGraph, List[Set[int]]]:
    """Generate a signed co-authorship network plus its planted groups.

    Parameters
    ----------
    authors, groups, papers:
        Population sizes: individual researchers, research groups, and
        published papers.
    group_size_range:
        Inclusive min/max researchers per group (uniform).
    team_size_range:
        Inclusive min/max authors per paper.
    core_size_range, core_paper_count:
        Each group has a *core team* (lab heads and long-term members)
        that co-publishes *core_paper_count* joint papers, pushing every
        core pair past ``tau`` — these cores are the strongly
        cooperative groups (all-positive cliques) the paper's case
        study looks for, and the reason the real DBLP supports large
        (alpha, k)-cliques despite being 77% negative overall.
    consortium_count, consortium_size_range,
    consortium_negative_probability, consortium_strong_papers:
        Large multi-institution consortia: every member pair co-authors
        (forming big sign-blind cliques, the source of DBLP's large
        ``k_max`` in Table I), most pairs repeatedly
        (*consortium_strong_papers* joint papers, hence positive) and
        the rest once (hence negative, with probability
        *consortium_negative_probability*). These mixed-sign cliques
        are what makes the number of DBLP signed cliques *grow* with
        ``k`` in the paper's Fig. 6(d): a looser negative budget admits
        combinatorially more near-maximal subsets.
    cross_group_probability:
        Probability a paper is written by an ad-hoc cross-group team
        (the one-off collaborations that become negative edges).
    repeat_team_probability:
        Within a group, probability a paper reuses the group's previous
        author team — repeat collaboration is what pushes a pair's
        weight past ``tau``.
    seed:
        RNG seed (generation is fully deterministic given the seed).

    Returns
    -------
    (graph, groups):
        The signed graph (threshold ``tau`` = average pair weight, the
        paper's choice) and the planted research-group node sets for
        case-study evaluation.
    """
    if authors < max(group_size_range):
        raise ParameterError("not enough authors for the requested group size")
    if team_size_range[0] < 2:
        raise ParameterError("papers need at least two authors to create edges")
    rng = random.Random(seed)

    population = list(range(authors))
    group_members: List[List[int]] = []
    group_cores: List[List[int]] = []
    for _ in range(groups):
        size = rng.randint(*group_size_range)
        members = rng.sample(population, size)
        group_members.append(members)
        core_size = min(rng.randint(*core_size_range), size)
        group_cores.append(rng.sample(members, core_size))

    builder = WeightedGraphBuilder()
    # Core-team papers: the whole core publishes together repeatedly, so
    # every core pair accumulates weight >= core_paper_count >= tau.
    for core in group_cores:
        for _ in range(core_paper_count):
            for i in range(len(core)):
                for j in range(i + 1, len(core)):
                    builder.add(core[i], core[j])
    # Consortium papers: a big clique of co-authors; strong pairs repeat
    # the collaboration, weak pairs co-author exactly once.
    for _ in range(consortium_count):
        size = rng.randint(*consortium_size_range)
        members = rng.sample(population, size)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                if rng.random() < consortium_negative_probability:
                    builder.add(members[i], members[j])
                else:
                    for _ in range(consortium_strong_papers):
                        builder.add(members[i], members[j])

    last_team: List[Optional[List[int]]] = [None] * groups
    for _ in range(papers):
        if rng.random() < cross_group_probability:
            # One-off cross-group collaboration: authors from two groups.
            first, second = rng.sample(range(groups), 2)
            # Membership can overlap across groups; de-duplicate so a
            # sampled team never pairs an author with themselves.
            pool = sorted(set(group_members[first]) | set(group_members[second]))
            team_size = min(rng.randint(*team_size_range), len(pool))
            team = rng.sample(pool, team_size)
        else:
            index = rng.randrange(groups)
            members = group_members[index]
            previous = last_team[index]
            if previous is not None and rng.random() < repeat_team_probability:
                team = previous
            else:
                team_size = min(rng.randint(*team_size_range), len(members))
                team = rng.sample(members, team_size)
                last_team[index] = team
        for i in range(len(team)):
            for j in range(i + 1, len(team)):
                builder.add(team[i], team[j])

    graph = builder.build_signed()  # tau = average pair weight, as in the paper
    for author in population:
        graph.add_node(author)  # authors without co-authorships stay isolated
    planted = [set(members) for members in group_members]
    return graph, planted
