"""Named dataset stand-ins for the paper's five evaluation networks.

The paper evaluates on Slashdot, Wiki, DBLP, Youtube and Pokec (Table I;
up to 1.6M nodes / 30.6M edges). Offline and in pure Python we rebuild
each network's *construction recipe* at ~50x reduced scale, preserving
the properties the experiments depend on:

==============  =======================================================
stand-in        what is preserved
==============  =======================================================
slashdot_like   power-law social topology, ~23% negative edges
                concentrated outside trust circles (Table I ratio)
wiki_like       larger/sparser variant, ~12% negative (Table I ratio)
dblp_like       the paper's own recipe: co-authorship weights
                thresholded at the average weight tau, giving a
                mostly-negative graph (77% in Table I) with dense
                positive research groups
youtube_like    the paper's own recipe: unsigned social topology with
                30% of edges made negative uniformly at random
pokec_like      same recipe, denser topology (Pokec's mean degree is
                the highest of the five)
flysign_like    signed PPI with planted ground-truth complexes
                (Exp-10 / Fig-11)
==============  =======================================================

Every generator is deterministic given its seed; the experiment harness
caches instances per (name, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.exceptions import ParameterError
from repro.generators.dblp_like import dblp_like_coauthorship
from repro.generators.planted import (
    CommunitySpec,
    heavy_tailed_sizes,
    planted_partition_graph,
)
from repro.generators.ppi import flysign_like
from repro.generators.random_signed import random_sign_assignment
from repro.generators.social import close_triangles, preferential_attachment
from repro.graphs.signed_graph import NEGATIVE, POSITIVE, SignedGraph

import random


@dataclass
class Dataset:
    """A generated dataset: the graph plus optional planted ground truth."""

    name: str
    graph: SignedGraph
    communities: Optional[List[Set]] = None
    description: str = ""


def _community_specs(
    count: int,
    size_range,
    density: float,
    negative_fraction: float,
    rng: random.Random,
    tail_exponent: float = 1.9,
) -> List[CommunitySpec]:
    sizes = heavy_tailed_sizes(count, size_range[0], size_range[1], rng, tail_exponent)
    return [
        CommunitySpec(size=size, density=density, negative_fraction=negative_fraction)
        for size in sizes
    ]


def _signed_social_graph(
    n: int,
    attach: int,
    closures: int,
    community_count: int,
    size_range,
    density: float,
    community_negative_fraction: float,
    background_negative_fraction: float,
    seed: int,
):
    """Shared recipe for slashdot_like / wiki_like.

    Background topology is signed edge-by-edge with the background
    negative fraction, then planted communities overwrite their internal
    edges — negatives end up concentrated outside and between trust
    circles, the structure real rating networks show.
    """
    rng = random.Random(seed)
    background = preferential_attachment(n, attach, seed=rng.randrange(2**31))
    close_triangles(background, closures, seed=rng.randrange(2**31))
    background = random_sign_assignment(
        background, background_negative_fraction, seed=rng.randrange(2**31)
    )
    specs = _community_specs(
        community_count, size_range, density, community_negative_fraction, rng
    )
    return planted_partition_graph(
        background, specs, seed=rng.randrange(2**31), overlap_fraction=0.12
    )


def make_slashdot_like(seed: int = 1) -> Dataset:
    """Slashdot Zoo stand-in: trust/distrust network, ~23% negative."""
    graph, communities = _signed_social_graph(
        n=1650,
        attach=4,
        closures=1100,
        community_count=70,
        size_range=(5, 24),
        density=0.95,
        community_negative_fraction=0.12,
        background_negative_fraction=0.30,
        seed=seed,
    )
    return Dataset(
        name="slashdot",
        graph=graph,
        communities=communities,
        description="power-law trust network, negatives outside trust circles (~23%)",
    )


def make_wiki_like(seed: int = 2) -> Dataset:
    """Wikipedia adminship/elections stand-in, ~12% negative."""
    graph, communities = _signed_social_graph(
        n=2770,
        attach=4,
        closures=1400,
        community_count=80,
        size_range=(5, 22),
        density=0.93,
        community_negative_fraction=0.10,
        background_negative_fraction=0.15,
        seed=seed,
    )
    return Dataset(
        name="wiki",
        graph=graph,
        communities=communities,
        description="larger, sparser signed network with ~12% negative edges",
    )


def make_dblp_like(seed: int = 3) -> Dataset:
    """DBLP stand-in built with the paper's own thresholding recipe."""
    graph, groups = dblp_like_coauthorship(
        authors=2600,
        groups=140,
        papers=7000,
        seed=seed,
    )
    return Dataset(
        name="dblp",
        graph=graph,
        communities=groups,
        description="co-authorship weights thresholded at average tau (mostly negative)",
    )


def make_youtube_like(seed: int = 4) -> Dataset:
    """Youtube stand-in: sparse social topology, 30% random negatives."""
    rng = random.Random(seed)
    background = preferential_attachment(2300, 2, seed=rng.randrange(2**31))
    close_triangles(background, 700, seed=rng.randrange(2**31))
    specs = _community_specs(60, (5, 16), 0.97, 0.0, rng)
    graph, communities = planted_partition_graph(
        background, specs, seed=rng.randrange(2**31), overlap_fraction=0.1
    )
    graph = random_sign_assignment(graph, 0.30, seed=rng.randrange(2**31))
    return Dataset(
        name="youtube",
        graph=graph,
        communities=communities,
        description="sparse social graph, 30% of edges negative uniformly at random",
    )


def make_pokec_like(seed: int = 5) -> Dataset:
    """Pokec stand-in: densest topology of the five, 30% random negatives."""
    rng = random.Random(seed)
    background = preferential_attachment(3270, 6, seed=rng.randrange(2**31))
    close_triangles(background, 2500, seed=rng.randrange(2**31))
    specs = _community_specs(80, (5, 18), 0.94, 0.0, rng)
    graph, communities = planted_partition_graph(
        background, specs, seed=rng.randrange(2**31), overlap_fraction=0.1
    )
    graph = random_sign_assignment(graph, 0.30, seed=rng.randrange(2**31))
    return Dataset(
        name="pokec",
        graph=graph,
        communities=communities,
        description="densest stand-in (highest mean degree), 30% random negatives",
    )


def make_flysign_like(seed: int = 6) -> Dataset:
    """FlySign stand-in: signed PPI with planted ground-truth complexes."""
    graph, complexes = flysign_like(seed=seed)
    return Dataset(
        name="flysign",
        graph=graph,
        communities=complexes,
        description="signed PPI network with planted ground-truth complexes",
    )


DATASET_BUILDERS: Dict[str, Callable[[int], Dataset]] = {
    "slashdot": make_slashdot_like,
    "wiki": make_wiki_like,
    "dblp": make_dblp_like,
    "youtube": make_youtube_like,
    "pokec": make_pokec_like,
    "flysign": make_flysign_like,
}

#: The five Table-I datasets, in the paper's order.
PAPER_DATASETS = ("slashdot", "wiki", "dblp", "youtube", "pokec")


def load_dataset(name: str, seed: Optional[int] = None) -> Dataset:
    """Build the named dataset stand-in (deterministic per seed).

    *seed* defaults to each builder's fixed seed so the whole test and
    benchmark suite sees identical graphs run to run.
    """
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise ParameterError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASET_BUILDERS)}"
        ) from None
    if seed is None:
        return builder()
    return builder(seed)
