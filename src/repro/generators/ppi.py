"""FlySign-style signed protein–protein interaction network (Exp-10).

The paper's FlySign network (Vinayagam et al., Nature Methods 2014) has
3,352 proteins and 6,094 signed interactions (4,112 activating /
positive, 1,982 inhibiting / negative), with ground-truth protein
complexes from the COMPLEAT enrichment tool. We synthesise the same
regime: ground-truth complexes are dense and overwhelmingly positive
(co-complex subunits activate a shared function), inhibition
concentrates on the background and on complex boundaries.

:func:`flysign_like` returns both the network and the planted
complexes, so the Fig-11 precision experiment has an exact ground
truth.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from repro.generators.planted import CommunitySpec, heavy_tailed_sizes, plant_community
from repro.graphs.signed_graph import NEGATIVE, POSITIVE, SignedGraph


def flysign_like(
    proteins: int = 840,
    complexes: int = 34,
    complex_size_range: Tuple[int, int] = (5, 30),
    complex_density: float = 0.98,
    complex_negative_fraction: float = 0.08,
    background_edges: int = 900,
    background_negative_fraction: float = 0.45,
    boundary_edges_per_complex: int = 6,
    boundary_negative_fraction: float = 0.6,
    satellite_count: int = 18,
    satellite_attachment: float = 0.8,
    pathway_count: int = 6,
    pathway_size: int = 20,
    seed: Optional[int] = None,
) -> Tuple[SignedGraph, List[Set[int]]]:
    """Generate a signed PPI network plus ground-truth complexes.

    Defaults scale the real FlySign by ~4x (840 proteins vs 3,352) while
    preserving its qualitative profile: ~1/3 negative edges overall,
    dense mostly-positive complexes, inhibition pointing outward. Sizes
    are heavy-tailed so precision stays defined across the paper's full
    (alpha, k) sweep — large complexes keep high-threshold cliques
    non-empty, small ones populate the low-threshold end.

    Returns
    -------
    (graph, complexes):
        The signed graph and the planted complex node sets (the
        ground truth for :func:`repro.metrics.average_precision`).
    """
    rng = random.Random(seed)
    graph = SignedGraph(nodes=range(proteins))
    nodes = list(range(proteins))

    sizes = heavy_tailed_sizes(
        complexes, complex_size_range[0], complex_size_range[1], rng, tail_exponent=1.35
    )
    # Guarantee a couple of large complexes so the high-threshold end of
    # the paper's sweep (alpha up to 6, k up to 5 => positive threshold
    # up to 20) stays populated.
    if len(sizes) >= 3:
        sizes[0] = complex_size_range[1]
        sizes[1] = max(complex_size_range[1] - 2, complex_size_range[0])
        sizes[2] = max(complex_size_range[1] - 6, complex_size_range[0])
    truth: List[Set[int]] = []
    for index, size in enumerate(sizes):
        members = rng.sample(nodes, size)
        if index == 2:
            # One flawless stable complex (all pairs present, all
            # activating) keeps the highest-threshold corner of the
            # paper's sweep (alpha=4, k=5 => threshold 20) populated.
            spec = CommunitySpec(size=size, density=1.0, negative_fraction=0.0)
        else:
            spec = CommunitySpec(
                size=size, density=complex_density, negative_fraction=complex_negative_fraction
            )
        plant_community(graph, members, spec, rng)
        truth.append(set(members))

    # Boundary interactions: complexes regulate external proteins,
    # frequently by inhibition.
    for members in truth:
        member_list = sorted(members)
        for _ in range(boundary_edges_per_complex):
            inside = rng.choice(member_list)
            outside = rng.choice(nodes)
            if outside in members or outside == inside:
                continue
            if graph.has_edge(inside, outside):
                continue
            sign = NEGATIVE if rng.random() < boundary_negative_fraction else POSITIVE
            graph.add_edge(inside, outside, sign)

    # Promiscuous satellite proteins: per large complex, a cohort of
    # regulators positively bound to a shared sub-complex interface and
    # inhibited by the remaining subunits, with mixed-sign interactions
    # among themselves. This is the realism that separates the models in
    # the precision experiment (Fig. 11):
    #
    # * TClique ignores signs entirely, so interface + positively-linked
    #   satellites form its largest "complexes" — heavy false positives;
    # * the signed-clique negative budget caps how many satellites can
    #   co-occur (they inhibit each other and the off-interface
    #   subunits), so whole-complex signed cliques stay satellite-free
    #   and outrank the satellite-polluted ones;
    # * Core's loose degree requirement glues complexes and satellite
    #   cohorts into one blob.
    complex_members = sorted({node for members in truth for node in members})
    outsiders = [node for node in nodes if node not in set(complex_members)]
    rng.shuffle(outsiders)
    eligible = sorted(
        (members for members in truth if len(members) >= 18), key=len, reverse=True
    )
    if eligible and satellite_count > 0:
        per_complex = max(satellite_count // len(eligible), 1)
        cursor = 0
        for target in eligible:
            cohort = outsiders[cursor : cursor + per_complex]
            cursor += per_complex
            if not cohort:
                break
            members = sorted(target)
            attach_count = max(2, round(satellite_attachment * len(members)))
            interface = set(rng.sample(members, min(attach_count, len(members))))
            for satellite in cohort:
                for member in members:
                    if graph.has_edge(satellite, member):
                        continue
                    graph.add_edge(
                        satellite, member, POSITIVE if member in interface else NEGATIVE
                    )
            for i in range(len(cohort)):
                for j in range(i + 1, len(cohort)):
                    if not graph.has_edge(cohort[i], cohort[j]):
                        graph.add_edge(
                            cohort[i], cohort[j], POSITIVE if rng.random() < 0.5 else NEGATIVE
                        )

    # Super-pathways: transient signalling assemblies that cut across
    # complex boundaries with purely activating interactions. These are
    # the largest *all-positive* cliques in the network, so a model that
    # ignores signs (TClique) ranks them as its top complexes — heavy
    # cross-complex false positives — while whole-complex signed cliques
    # (which tolerate a few inhibitory edges and therefore grow larger)
    # outrank them in the signed model's top-r.
    big_complexes = sorted(truth, key=len, reverse=True)[:4]
    for _ in range(pathway_count):
        if len(big_complexes) < 2:
            break
        first, second = rng.sample(big_complexes, 2)
        take_first = rng.sample(sorted(first), min(pathway_size // 2, len(first)))
        take_second = rng.sample(
            sorted(second - set(take_first)), min(pathway_size // 2 - 2, len(second))
        )
        fillers = rng.sample(outsiders, 3) if len(outsiders) >= 3 else []
        pathway = list(dict.fromkeys(take_first + take_second + fillers))[:pathway_size]
        for i in range(len(pathway)):
            for j in range(i + 1, len(pathway)):
                if not graph.has_edge(pathway[i], pathway[j]):
                    graph.add_edge(pathway[i], pathway[j], POSITIVE)

    # Sparse background interactome.
    added = 0
    attempts = 0
    while added < background_edges and attempts < background_edges * 20:
        attempts += 1
        u, v = rng.sample(nodes, 2)
        if graph.has_edge(u, v):
            continue
        sign = NEGATIVE if rng.random() < background_negative_fraction else POSITIVE
        graph.add_edge(u, v, sign)
        added += 1

    return graph, truth
