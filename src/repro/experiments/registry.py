"""Cached dataset access for experiments and benchmarks.

Dataset generation is deterministic but not free (a few hundred
milliseconds each); the figure drivers and the benchmark suite share one
instance per (name, seed) through this cache.
"""

from __future__ import annotations

from functools import lru_cache

from repro.generators.datasets import Dataset, load_dataset


@lru_cache(maxsize=None)
def get_dataset(name: str, seed: int | None = None) -> Dataset:
    """Return the cached dataset stand-in for *name* (see generators)."""
    return load_dataset(name, seed=seed)


def clear_cache() -> None:
    """Drop all cached datasets (tests use this to control memory)."""
    get_dataset.cache_clear()
