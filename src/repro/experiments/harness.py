"""Experiment harness: timing, sweep configuration, environment knobs.

Every figure/table driver in :mod:`repro.experiments.figures` runs a
parameter sweep built from the constants here. The paper's grids are the
defaults (alpha in [2, 7], k in [1, 6], defaults alpha=4, k=3, r=30);
two environment variables let benchmark runs trade fidelity for time:

* ``REPRO_BENCH_FULL=1`` — run the paper's full grids (default: a
  3-point sub-grid per axis, which preserves every monotone-shape
  claim at a fraction of the cost);
* ``REPRO_BENCH_TIME_LIMIT`` — per-enumeration wall-clock cap in
  seconds (default 15; the paper itself caps MSCE-R runs at 3600 s).
"""

from __future__ import annotations

import os
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

#: The paper's parameter grids (Section V, "Parameters").
FULL_ALPHAS: Tuple[float, ...] = (2, 3, 4, 5, 6, 7)
FULL_KS: Tuple[int, ...] = (1, 2, 3, 4, 5, 6)
FAST_ALPHAS: Tuple[float, ...] = (2, 4, 6)
FAST_KS: Tuple[int, ...] = (1, 3, 5)
DEFAULT_ALPHA: float = 4
DEFAULT_K: int = 3
DEFAULT_R: int = 30
FULL_RS: Tuple[int, ...] = (1, 10, 20, 30, 40, 50)
FAST_RS: Tuple[int, ...] = (1, 20, 50)


def full_sweeps_enabled() -> bool:
    """True when ``REPRO_BENCH_FULL`` requests the paper's full grids."""
    return os.environ.get("REPRO_BENCH_FULL", "").strip() not in ("", "0", "false")


def sweep_alphas() -> Tuple[float, ...]:
    """The alpha grid for the current run mode."""
    return FULL_ALPHAS if full_sweeps_enabled() else FAST_ALPHAS


def sweep_ks() -> Tuple[int, ...]:
    """The k grid for the current run mode."""
    return FULL_KS if full_sweeps_enabled() else FAST_KS


def sweep_rs() -> Tuple[int, ...]:
    """The r grid for the current run mode."""
    return FULL_RS if full_sweeps_enabled() else FAST_RS


def time_limit_seconds() -> float:
    """Per-enumeration wall-clock cap (``REPRO_BENCH_TIME_LIMIT``)."""
    raw = os.environ.get("REPRO_BENCH_TIME_LIMIT", "").strip()
    if not raw:
        return 15.0
    return float(raw)


@contextmanager
def stopwatch():
    """Context manager yielding a callable that reports elapsed seconds.

    >>> with stopwatch() as elapsed:
    ...     _ = sum(range(10))
    >>> elapsed() >= 0
    True
    """
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start


def measure(fn: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def measure_peak_memory(fn: Callable, *args, **kwargs) -> Tuple[object, int]:
    """Run ``fn`` under :mod:`tracemalloc`; return ``(result, peak_bytes)``.

    Used by the Figure-9 experiment: the paper measures resident memory
    of the C++ process; the closest faithful Python equivalent is the
    peak allocation attributable to the measured call.
    """
    tracemalloc.start()
    try:
        result = fn(*args, **kwargs)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


@dataclass
class Series:
    """One plotted line: a label plus aligned x/y sequences."""

    label: str
    x: List[object] = field(default_factory=list)
    y: List[object] = field(default_factory=list)

    def add(self, x_value: object, y_value: object) -> None:
        """Append one point."""
        self.x.append(x_value)
        self.y.append(y_value)

    def as_rows(self) -> List[Tuple[object, object]]:
        """Return the points as (x, y) tuples."""
        return list(zip(self.x, self.y))


@dataclass
class Exhibit:
    """A reproduced table/figure: a title plus named series and notes.

    The text rendering is what the benchmark harness prints — the same
    rows/series the paper plots, in plain text instead of gnuplot.
    """

    title: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def series_by_label(self) -> Dict[str, Series]:
        """Index the series by label."""
        return {series.label: series for series in self.series}

    def render(self) -> str:
        """Render the exhibit as an aligned text table."""
        lines = [self.title, "=" * len(self.title)]
        if self.series:
            x_values = self.series[0].x
            header = ["x"] + [series.label for series in self.series]
            widths = [max(len(str(h)), 10) for h in header]
            lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
            for index, x_value in enumerate(x_values):
                row = [x_value] + [
                    series.y[index] if index < len(series.y) else ""
                    for series in self.series
                ]
                formatted = [
                    f"{value:.4g}" if isinstance(value, float) else str(value)
                    for value in row
                ]
                lines.append(
                    "  ".join(cell.ljust(w) for cell, w in zip(formatted, widths))
                )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
