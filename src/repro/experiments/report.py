"""One-shot evaluation report generation.

:func:`generate_report` runs a selection of the per-exhibit drivers and
writes a single self-contained markdown document — the reproduction's
"results section" — with every table rendered and the run configuration
recorded. Used by maintainers after substantive changes:

    python -m repro.experiments.report /tmp/report.md
"""

from __future__ import annotations

import platform
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.experiments.figures import ALL_DRIVERS
from repro.experiments.harness import (
    Exhibit,
    full_sweeps_enabled,
    time_limit_seconds,
)

PathLike = Union[str, Path]

#: Driver order for the report (mirrors the paper's evaluation flow).
DEFAULT_SECTIONS = (
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig6_mechanism",
    "fig7",
    "fig8",
    "fig9",
    "table2",
    "fig10",
    "fig11",
    "ablation_pruning",
    "ablation_maxtest",
    "ablation_reduction",
)


def _as_exhibits(result) -> List[Exhibit]:
    if isinstance(result, Exhibit):
        return [result]
    return list(result)


def generate_report(
    path: Optional[PathLike] = None,
    sections: Sequence[str] = DEFAULT_SECTIONS,
) -> str:
    """Run the selected drivers and return (and optionally write) markdown.

    Unknown section names raise immediately (before any long-running
    driver executes).
    """
    unknown = [name for name in sections if name not in ALL_DRIVERS]
    if unknown:
        from repro.exceptions import ExperimentError

        raise ExperimentError(f"unknown report sections: {', '.join(unknown)}")

    lines: List[str] = [
        "# Signed clique search — evaluation report",
        "",
        f"- python: {platform.python_version()} on {platform.system().lower()}",
        f"- grids: {'full (paper)' if full_sweeps_enabled() else 'fast (3-point)'}",
        f"- per-run time cap: {time_limit_seconds():g}s",
        "",
        "Regenerate any section with `python -m repro.experiments <name>`.",
        "",
    ]
    for name in sections:
        lines.append(f"## {name}")
        lines.append("")
        for exhibit in _as_exhibits(ALL_DRIVERS[name]()):
            lines.append("```")
            lines.append(exhibit.render())
            lines.append("```")
            lines.append("")
    text = "\n".join(lines)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry: ``python -m repro.experiments.report [output.md] [sections…]``."""
    args = list(argv if argv is not None else sys.argv[1:])
    path = args.pop(0) if args else "evaluation_report.md"
    sections = tuple(args) if args else DEFAULT_SECTIONS
    generate_report(path, sections)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
