"""Run every experiment driver and print the exhibits.

Usage::

    python -m repro.experiments              # all exhibits, fast grids
    python -m repro.experiments fig5 table2  # a subset
    REPRO_BENCH_FULL=1 python -m repro.experiments   # the paper's full grids
"""

from __future__ import annotations

import sys

from repro.experiments.figures import ALL_DRIVERS
from repro.experiments.harness import Exhibit


def _print_result(result) -> None:
    if isinstance(result, Exhibit):
        print(result.render())
        print()
        return
    for exhibit in result:
        print(exhibit.render())
        print()


def main(argv=None) -> int:
    """Entry point: run the selected (or all) drivers."""
    names = (argv if argv is not None else sys.argv[1:]) or list(ALL_DRIVERS)
    unknown = [name for name in names if name not in ALL_DRIVERS]
    if unknown:
        print(f"unknown drivers: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(ALL_DRIVERS))}", file=sys.stderr)
        return 2
    for name in names:
        _print_result(ALL_DRIVERS[name]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
