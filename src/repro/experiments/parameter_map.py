"""Parameter exploration: map the (alpha, k) landscape of a graph.

Choosing alpha and k is the practical entry barrier of the signed
clique model (the paper sweeps alpha in [2,7], k in [1,6] and discusses
how the two constraints trade off). :func:`parameter_map` computes, for
every grid point, the quantities a user needs to choose parameters:

* MCCore size (how much survives the reduction — 0 means provably no
  clique exists at this setting, without running any enumeration);
* number of maximal cliques and the largest clique size (capped
  enumeration, flagged when the cap was hit);
* wall-clock cost.

:func:`suggest_parameters` then picks the strictest setting that still
yields a requested number of communities — the "give me about 30 trust
circles" workflow of the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.bbe import MSCE
from repro.core.params import AlphaK
from repro.core.reduction import reduce_graph
from repro.exceptions import ParameterError
from repro.graphs.signed_graph import SignedGraph


@dataclass(frozen=True)
class ParameterPoint:
    """One grid point of the (alpha, k) landscape."""

    alpha: float
    k: int
    mccore_nodes: int
    clique_count: int
    largest_clique: int
    seconds: float
    complete: bool

    @property
    def positive_threshold(self) -> int:
        """``ceil(alpha * k)`` at this point."""
        return AlphaK(self.alpha, self.k).positive_threshold


def parameter_map(
    graph: SignedGraph,
    alphas: Sequence[float] = (2, 3, 4, 5, 6, 7),
    ks: Sequence[int] = (1, 2, 3, 4, 5, 6),
    time_limit: Optional[float] = 10.0,
    max_results: Optional[int] = 5000,
    reduction: str = "mcnew",
) -> List[ParameterPoint]:
    """Profile the (alpha, k) grid; skips enumeration when the MCCore is empty.

    Points whose enumeration hit *time_limit* or *max_results* report
    ``complete=False`` — their counts are lower bounds.
    """
    if not alphas or not ks:
        raise ParameterError("alphas and ks must be non-empty")
    points: List[ParameterPoint] = []
    for alpha in alphas:
        for k in ks:
            params = AlphaK(alpha, k)
            survivors = reduce_graph(graph, params, method=reduction)
            if not survivors:
                points.append(
                    ParameterPoint(
                        alpha=alpha, k=k, mccore_nodes=0, clique_count=0,
                        largest_clique=0, seconds=0.0, complete=True,
                    )
                )
                continue
            searcher = MSCE(
                graph, params, reduction=reduction,
                time_limit=time_limit, max_results=max_results,
            )
            result = searcher.enumerate_all()
            points.append(
                ParameterPoint(
                    alpha=alpha,
                    k=k,
                    mccore_nodes=len(survivors),
                    clique_count=len(result.cliques),
                    largest_clique=result.cliques[0].size if result.cliques else 0,
                    seconds=result.elapsed_seconds,
                    complete=not (result.timed_out or result.truncated),
                )
            )
    return points


def render_parameter_map(points: Sequence[ParameterPoint]) -> str:
    """Render the landscape as an aligned text grid (counts, ``+`` = capped)."""
    alphas = sorted({point.alpha for point in points})
    ks = sorted({point.k for point in points})
    index = {(point.alpha, point.k): point for point in points}
    width = 9
    lines = ["maximal (alpha, k)-clique counts (rows alpha, columns k):"]
    header = "alpha\\k".ljust(8) + "".join(str(k).rjust(width) for k in ks)
    lines.append(header)
    for alpha in alphas:
        cells = []
        for k in ks:
            point = index.get((alpha, k))
            if point is None:
                cells.append("-".rjust(width))
                continue
            suffix = "" if point.complete else "+"
            cells.append(f"{point.clique_count}{suffix}".rjust(width))
        lines.append(f"{alpha:<8g}" + "".join(cells))
    return "\n".join(lines)


def suggest_parameters(
    points: Sequence[ParameterPoint],
    min_count: int = 1,
    max_count: Optional[int] = None,
) -> Optional[ParameterPoint]:
    """Pick the strictest complete grid point within the count window.

    "Strictest" maximises the positive threshold (cohesion), breaking
    ties toward smaller k (less tolerated conflict). Returns ``None``
    when no complete point fits.
    """
    viable = [
        point
        for point in points
        if point.complete
        and point.clique_count >= min_count
        and (max_count is None or point.clique_count <= max_count)
    ]
    if not viable:
        return None
    return max(viable, key=lambda p: (p.positive_threshold, -p.k))
