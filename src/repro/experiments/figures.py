"""Per-exhibit experiment drivers: one function per table/figure.

Each driver regenerates one exhibit of the paper's evaluation (Section
V) on the scaled dataset stand-ins and returns an
:class:`~repro.experiments.harness.Exhibit` whose series carry the same
rows the paper plots. The benchmark suite wraps these drivers; running
``python -m repro.experiments`` prints them all.

Naming follows the paper: Table I (datasets), Fig. 3 (MCBasic vs MCNew
time), Fig. 4 (MCCore size), Fig. 5 (enumeration time), Fig. 6 (clique
counts), Fig. 7 (top-r time), Fig. 8 (scalability), Fig. 9 (memory),
Table II (signed conductance), Fig. 10 (case study), Fig. 11 (precision
on the PPI network). Three ablations beyond the paper cover the design
choices DESIGN.md calls out.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.baselines import (
    core_communities,
    signed_core_communities,
    tclique_communities,
)
from repro.core import MSCE, AlphaK
from repro.core.mcbasic import mccore_basic
from repro.core.mcnew import mccore_new
from repro.core.reduction import reduce_graph
from repro.experiments.harness import (
    DEFAULT_ALPHA,
    DEFAULT_K,
    DEFAULT_R,
    Exhibit,
    Series,
    full_sweeps_enabled,
    measure,
    measure_peak_memory,
    sweep_alphas,
    sweep_ks,
    sweep_rs,
    time_limit_seconds,
)
from repro.experiments.registry import get_dataset
from repro.generators import PAPER_DATASETS, random_edge_subsample, random_node_subsample
from repro.graphs import estimated_bytes, graph_stats
from repro.graphs.signed_graph import SignedGraph
from repro.metrics import average_precision, average_signed_conductance

#: Datasets the paper uses for the reduction-focused exhibits (Figs. 3/4/6/7).
REDUCTION_DATASETS = ("slashdot", "dblp")


# ----------------------------------------------------------------------
# Table I — dataset statistics
# ----------------------------------------------------------------------
def table1_dataset_stats(names: Sequence[str] = PAPER_DATASETS) -> Exhibit:
    """Table I: n, m, |E+|, |E-| and k_max for every dataset stand-in."""
    exhibit = Exhibit(title="Table I: dataset statistics (scaled stand-ins)")
    columns = ["n", "m", "E+", "E-", "k_max"]
    series = {label: Series(label) for label in columns}
    for name in names:
        stats = graph_stats(get_dataset(name).graph)
        series["n"].add(name, stats.nodes)
        series["m"].add(name, stats.edges)
        series["E+"].add(name, stats.positive_edges)
        series["E-"].add(name, stats.negative_edges)
        series["k_max"].add(name, stats.k_max)
    exhibit.series = [series[label] for label in columns]
    exhibit.notes.append(
        "paper: Slashdot 82k/500k (23% neg), Wiki 139k/716k (12%), DBLP 1.3M/5.4M (77%), "
        "Youtube 1.2M/3.0M (30%), Pokec 1.6M/30.6M (30%); stand-ins scale ~50x down"
    )
    return exhibit


# ----------------------------------------------------------------------
# Fig. 3 — MCBasic vs MCNew reduction time
# ----------------------------------------------------------------------
def fig3_reduction_time(
    names: Sequence[str] = REDUCTION_DATASETS,
    alphas: Optional[Sequence[float]] = None,
    ks: Optional[Sequence[int]] = None,
) -> List[Exhibit]:
    """Fig. 3: MCCore computation time, MCBasic vs MCNew, varying alpha and k."""
    alphas = tuple(alphas if alphas is not None else sweep_alphas())
    ks = tuple(ks if ks is not None else sweep_ks())
    exhibits: List[Exhibit] = []
    for name in names:
        graph = get_dataset(name).graph
        for axis, values in (("alpha", alphas), ("k", ks)):
            basic = Series("MCBasic")
            new = Series("MCNew")
            for value in values:
                params = (
                    AlphaK(value, DEFAULT_K) if axis == "alpha" else AlphaK(DEFAULT_ALPHA, value)
                )
                _nodes, seconds = measure(mccore_basic, graph, params)
                basic.add(value, seconds)
                _nodes, seconds = measure(mccore_new, graph, params)
                new.add(value, seconds)
            exhibits.append(
                Exhibit(
                    title=f"Fig.3 ({name}, vary {axis}): MCCore time [s]",
                    series=[new, basic],
                )
            )
    return exhibits


# ----------------------------------------------------------------------
# Fig. 4 — MCCore size
# ----------------------------------------------------------------------
def fig4_mccore_size(
    names: Sequence[str] = REDUCTION_DATASETS,
    alphas: Optional[Sequence[float]] = None,
    ks: Optional[Sequence[int]] = None,
) -> List[Exhibit]:
    """Fig. 4: total number of MCCore nodes, varying alpha and k."""
    alphas = tuple(alphas if alphas is not None else sweep_alphas())
    ks = tuple(ks if ks is not None else sweep_ks())
    exhibits: List[Exhibit] = []
    for name in names:
        dataset = get_dataset(name)
        n = dataset.graph.number_of_nodes()
        for axis, values in (("alpha", alphas), ("k", ks)):
            series = Series("MCNew")
            for value in values:
                params = (
                    AlphaK(value, DEFAULT_K) if axis == "alpha" else AlphaK(DEFAULT_ALPHA, value)
                )
                series.add(value, len(mccore_new(dataset.graph, params)))
            exhibit = Exhibit(
                title=f"Fig.4 ({name}, vary {axis}): MCCore nodes (graph has {n})",
                series=[series],
            )
            exhibits.append(exhibit)
    return exhibits


# ----------------------------------------------------------------------
# Fig. 5 — enumeration time, MSCE-G vs MSCE-R
# ----------------------------------------------------------------------
def _enumeration_seconds(
    graph: SignedGraph, params: AlphaK, selection: str, limit: float
) -> Tuple[float, bool]:
    """One Fig-5 measurement: wall seconds (capped) and a timeout flag."""
    searcher = MSCE(graph, params, selection=selection, time_limit=limit)
    result = searcher.enumerate_all()
    return result.elapsed_seconds, result.timed_out


def fig5_enumeration_time(
    names: Sequence[str] = PAPER_DATASETS,
    alphas: Optional[Sequence[float]] = None,
    ks: Optional[Sequence[int]] = None,
    limit: Optional[float] = None,
) -> List[Exhibit]:
    """Fig. 5: MSCE-G vs MSCE-R enumeration time on every dataset.

    Runs that exceed the time limit are reported at the cap, mirroring
    the paper's treatment of MSCE-R (capped at 3600 s there).
    """
    alphas = tuple(alphas if alphas is not None else sweep_alphas())
    ks = tuple(ks if ks is not None else sweep_ks())
    limit = limit if limit is not None else time_limit_seconds()
    exhibits: List[Exhibit] = []
    for name in names:
        graph = get_dataset(name).graph
        for axis, values in (("alpha", alphas), ("k", ks)):
            greedy = Series("MSCE-G")
            randomized = Series("MSCE-R")
            timeouts: List[str] = []
            for value in values:
                params = (
                    AlphaK(value, DEFAULT_K) if axis == "alpha" else AlphaK(DEFAULT_ALPHA, value)
                )
                seconds, timed_out = _enumeration_seconds(graph, params, "greedy", limit)
                greedy.add(value, seconds)
                if timed_out:
                    timeouts.append(f"MSCE-G {axis}={value}")
                seconds, timed_out = _enumeration_seconds(graph, params, "random", limit)
                randomized.add(value, seconds)
                if timed_out:
                    timeouts.append(f"MSCE-R {axis}={value}")
            exhibit = Exhibit(
                title=f"Fig.5 ({name}, vary {axis}): enumeration time [s], cap {limit:g}s",
                series=[greedy, randomized],
            )
            if timeouts:
                exhibit.notes.append("hit time cap: " + ", ".join(timeouts))
            exhibits.append(exhibit)
    return exhibits


# ----------------------------------------------------------------------
# Fig. 6 — number of maximal (alpha, k)-cliques
# ----------------------------------------------------------------------
def fig6_clique_counts(
    names: Sequence[str] = REDUCTION_DATASETS,
    alphas: Optional[Sequence[float]] = None,
    ks: Optional[Sequence[int]] = None,
    limit: Optional[float] = None,
) -> List[Exhibit]:
    """Fig. 6: how many maximal (alpha, k)-cliques exist, varying alpha/k."""
    alphas = tuple(alphas if alphas is not None else sweep_alphas())
    ks = tuple(ks if ks is not None else sweep_ks())
    limit = limit if limit is not None else time_limit_seconds()
    exhibits: List[Exhibit] = []
    for name in names:
        graph = get_dataset(name).graph
        for axis, values in (("alpha", alphas), ("k", ks)):
            series = Series("maximal cliques")
            notes: List[str] = []
            for value in values:
                params = (
                    AlphaK(value, DEFAULT_K) if axis == "alpha" else AlphaK(DEFAULT_ALPHA, value)
                )
                result = MSCE(graph, params, time_limit=limit).enumerate_all()
                series.add(value, len(result.cliques))
                if result.timed_out:
                    notes.append(f"{axis}={value}: count is a lower bound (time cap)")
            exhibit = Exhibit(
                title=f"Fig.6 ({name}, vary {axis}): # maximal (alpha,k)-cliques",
                series=[series],
                notes=notes,
            )
            exhibits.append(exhibit)
    return exhibits


def fig6_growth_mechanism(
    block_size: int = 22,
    negative_probability: float = 0.28,
    alpha: float = 2,
    ks: Sequence[int] = (1, 2, 3, 4),
    seed: int = 7,
) -> Exhibit:
    """The mechanism behind Fig. 6(d)'s *rising* DBLP curve, in isolation.

    On the real DBLP the number of signed cliques grows with ``k``
    because huge mixed-sign co-authorship cliques (consortia) admit
    combinatorially more near-maximal subsets as the negative budget
    loosens. The full-scale regime (counts of 10K-10M) is out of reach
    for a pure-Python enumeration, so this driver reproduces the
    mechanism on a single consortium block: a *block_size*-clique whose
    edges are negative with probability *negative_probability*. The
    count rises with ``k`` until the budget stops binding — the paper's
    shape.
    """
    rng = random.Random(seed)
    graph = SignedGraph()
    for u, v in itertools.combinations(range(block_size), 2):
        graph.add_edge(u, v, -1 if rng.random() < negative_probability else 1)
    series = Series(f"alpha={alpha:g}")
    for k in ks:
        result = MSCE(graph, AlphaK(alpha, k)).enumerate_all()
        series.add(k, len(result.cliques))
    return Exhibit(
        title=(
            f"Fig.6(d) mechanism: counts vs k on one {block_size}-node consortium "
            f"(p_neg={negative_probability:g})"
        ),
        series=[series],
        notes=["paper's full-scale regime reaches 10K-10M cliques; see EXPERIMENTS.md"],
    )


# ----------------------------------------------------------------------
# Fig. 7 — top-r search time
# ----------------------------------------------------------------------
def fig7_topr_time(
    names: Sequence[str] = REDUCTION_DATASETS,
    alphas: Optional[Sequence[float]] = None,
    ks: Optional[Sequence[int]] = None,
    rs: Optional[Sequence[int]] = None,
    limit: Optional[float] = None,
) -> List[Exhibit]:
    """Fig. 7: time to find the top-r largest maximal (alpha, k)-cliques."""
    alphas = tuple(alphas if alphas is not None else sweep_alphas())
    ks = tuple(ks if ks is not None else sweep_ks())
    rs = tuple(rs if rs is not None else sweep_rs())
    limit = limit if limit is not None else time_limit_seconds()
    exhibits: List[Exhibit] = []
    for name in names:
        graph = get_dataset(name).graph
        axes: List[Tuple[str, Sequence]] = [("alpha", alphas), ("k", ks), ("r", rs)]
        for axis, values in axes:
            series = Series("MSCE-G (top-r)")
            for value in values:
                if axis == "alpha":
                    params, r = AlphaK(value, DEFAULT_K), DEFAULT_R
                elif axis == "k":
                    params, r = AlphaK(DEFAULT_ALPHA, value), DEFAULT_R
                else:
                    params, r = AlphaK(DEFAULT_ALPHA, DEFAULT_K), int(value)
                result = MSCE(graph, params, time_limit=limit).top_r(r)
                series.add(value, result.elapsed_seconds)
            exhibits.append(
                Exhibit(
                    title=f"Fig.7 ({name}, vary {axis}): top-r search time [s]",
                    series=[series],
                )
            )
    return exhibits


# ----------------------------------------------------------------------
# Fig. 8 — scalability on the largest dataset
# ----------------------------------------------------------------------
def fig8_scalability(
    name: str = "pokec",
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    alpha: float = 2,
    k: int = DEFAULT_K,
    limit: Optional[float] = None,
    seed: int = 17,
) -> List[Exhibit]:
    """Fig. 8: enumeration and top-r time on 20-100% samples of Pokec.

    Two sampling axes, as in the paper: induced node samples (vary |V|)
    and uniform edge samples (vary |E|). The paper runs at its default
    (4, 3); the scaled Pokec stand-in has no (4,3)-cliques (see
    EXPERIMENTS.md), so the default here is (2, 3), where the full graph
    holds a few hundred cliques and the curves measure real work.
    """
    limit = limit if limit is not None else time_limit_seconds()
    graph = get_dataset(name).graph
    params = AlphaK(alpha, k)
    exhibits: List[Exhibit] = []
    for axis, sampler in (("|V|", random_node_subsample), ("|E|", random_edge_subsample)):
        all_series = Series("MSCE-G (All)")
        topr_series = Series("MSCE-G (Top-r)")
        for fraction in fractions:
            sample = graph if fraction >= 1.0 else sampler(graph, fraction, seed=seed)
            result = MSCE(sample, params, time_limit=limit).enumerate_all()
            all_series.add(f"{int(fraction * 100)}%", result.elapsed_seconds)
            result = MSCE(sample, params, time_limit=limit).top_r(DEFAULT_R)
            topr_series.add(f"{int(fraction * 100)}%", result.elapsed_seconds)
        exhibits.append(
            Exhibit(
                title=f"Fig.8 ({name}, vary {axis}): scalability [s]",
                series=[all_series, topr_series],
            )
        )
    return exhibits


# ----------------------------------------------------------------------
# Fig. 8 (extension) — intra-component parallel speedup
# ----------------------------------------------------------------------
def fig8_parallel_speedup(
    n: Optional[int] = None,
    average_degree: Optional[float] = None,
    worker_counts: Sequence[int] = (1, 2, 4),
    alpha: float = 1.5,
    k: int = 2,
    seed: int = 17,
) -> Exhibit:
    """Parallel MSCE on one giant LFR-like component, 1/2/4 workers.

    Beyond the paper: the sequential enumerator leaves cores idle on
    real signed networks, whose MCCore is typically one giant connected
    component. This exhibit measures the intra-component root-branch
    decomposition (:func:`repro.core.parallel.enumerate_parallel`) on a
    single-community-structured LFR-like graph — the adversarial case
    for component-level fan-out, since there is exactly one component
    to fan out. Results are checked bit-identical across worker counts
    before any timing is reported; the notes record the once-per-run
    shared-memory payload that replaces per-task subgraph pickles.

    Defaults are sized for CI; ``REPRO_BENCH_FULL=1`` runs the 10k-node
    / ~100k-edge configuration the speedup gate quotes.
    """
    import pickle

    from repro.core.parallel import enumerate_parallel
    from repro.fastpath import compile_graph
    from repro.generators import lfr_like_signed

    full = full_sweeps_enabled()
    n = n if n is not None else (10_000 if full else 400)
    if average_degree is None:
        average_degree = 20.0 if full else 12.0
    graph, _communities = lfr_like_signed(
        n=n, average_degree=average_degree, mu=0.3, seed=seed
    )
    compiled = compile_graph(graph)
    time_series = Series("wall seconds")
    speedup_series = Series("speedup vs 1 worker")
    exhibit = Exhibit(
        title=f"Fig.8 ext: intra-component parallel speedup (LFR-like n={n})",
        series=[time_series, speedup_series],
    )
    fingerprint = None
    baseline = None
    for workers in worker_counts:
        result = enumerate_parallel(compiled, alpha, k, workers=workers, seed=seed)
        current = (
            [c.nodes for c in result.cliques],
            result.stats.as_dict(),
        )
        if fingerprint is None:
            fingerprint = current
            baseline = result.elapsed_seconds
            report = result.parallel
            exhibit.notes.append(
                f"{len(result.cliques)} maximal cliques; "
                f"components={result.stats.components}, "
                f"tasks seeded={report['tasks_seeded']}"
            )
        elif current != fingerprint:  # pragma: no cover - determinism bug
            raise AssertionError(
                f"workers={workers} changed the cliques or stats"
            )
        else:
            report = result.parallel
            exhibit.notes.append(
                f"workers={workers}: shared graph {report['shared_graph_bytes']} B "
                f"(once per run), tasks completed={report['tasks_completed']}, "
                f"frames re-split={report['frames_resplit']}"
            )
        time_series.add(workers, round(result.elapsed_seconds, 3))
        speedup_series.add(workers, round(baseline / max(result.elapsed_seconds, 1e-9), 2))
    worst_task = len(pickle.dumps((compiled.full_mask, compiled.full_mask)))
    exhibit.notes.append(
        f"per-task payload <= {worst_task} B (two bitmasks); "
        f"graph arrays never ride the task queue"
    )
    return exhibit


# ----------------------------------------------------------------------
# Fig. 9 — memory overhead
# ----------------------------------------------------------------------
def fig9_memory(names: Sequence[str] = PAPER_DATASETS, limit: Optional[float] = None) -> Exhibit:
    """Fig. 9: MSCE-G peak working memory vs (estimated) graph size.

    The paper reports resident memory of the C++ binary; the Python
    equivalent compares tracemalloc's peak allocation during the
    enumeration against a deterministic estimate of the adjacency
    structure's footprint. The paper's claim — memory stays within ~2x
    of the graph size — is asserted against the same ratio.
    """
    limit = limit if limit is not None else time_limit_seconds()
    graph_series = Series("graph bytes (est.)")
    peak_series = Series("MSCE-G peak bytes")
    exhibit = Exhibit(title="Fig.9: memory overhead of MSCE-G", series=[graph_series, peak_series])
    params = AlphaK(DEFAULT_ALPHA, DEFAULT_K)
    for name in names:
        graph = get_dataset(name).graph
        searcher = MSCE(graph, params, time_limit=limit)
        _result, peak = measure_peak_memory(searcher.enumerate_all)
        graph_series.add(name, estimated_bytes(graph))
        peak_series.add(name, peak)
    exhibit.notes.append("peak = tracemalloc of the enumeration call, graph storage excluded")
    return exhibit


# ----------------------------------------------------------------------
# Table II — signed conductance of the four community models
# ----------------------------------------------------------------------
def _signed_clique_communities(
    graph: SignedGraph, params: AlphaK, r: int, limit: float
) -> List[Set]:
    result = MSCE(graph, params, time_limit=limit).top_r(r)
    return [set(clique.nodes) for clique in result.cliques]


def table2_conductance(
    names: Sequence[str] = PAPER_DATASETS,
    alpha: float = 2,
    k: int = DEFAULT_K,
    r: int = DEFAULT_R,
    limit: Optional[float] = None,
) -> Exhibit:
    """Table II: average signed conductance of each model's top-r communities.

    The paper uses (alpha, k) = (4, 3). Our scaled stand-ins keep every
    model non-empty at (2, 3) instead (the uniformly-random 30% negative
    recipe on Youtube/Pokec leaves no (4,3)-clique at ~50x reduced
    scale), so the cross-model comparison defaults to alpha=2 — the
    relationship the table checks (SignedClique lowest) is
    scale-invariant. Pass ``alpha=4`` for the paper's exact setting.
    """
    limit = limit if limit is not None else time_limit_seconds()
    params = AlphaK(alpha, k)
    model_series = {
        label: Series(label) for label in ("Core", "SignedCore", "TClique", "SignedClique")
    }
    exhibit = Exhibit(
        title=f"Table II: avg signed conductance of top-{r} communities (alpha={alpha:g}, k={k})",
        series=list(model_series.values()),
    )
    for name in names:
        graph = get_dataset(name).graph
        communities = {
            "Core": [set(c) for c in core_communities(graph, params)[:r]],
            "SignedCore": [set(c) for c in signed_core_communities(graph, params)[:r]],
            "TClique": [set(c) for c in tclique_communities(graph, min_size=3)[:r]],
            "SignedClique": _signed_clique_communities(graph, params, r, limit),
        }
        for label, sets in communities.items():
            score = average_signed_conductance(graph, sets)
            model_series[label].add(name, round(score, 4))
            if not sets:
                exhibit.notes.append(f"{name}/{label}: no communities found (scored 0)")
    return exhibit


# ----------------------------------------------------------------------
# Fig. 10 — case study on DBLP
# ----------------------------------------------------------------------
def fig10_case_study(
    alpha: float = 2, k: int = 2, limit: Optional[float] = None
) -> Exhibit:
    """Fig. 10: TClique vs SignedClique communities around one researcher.

    The paper contrasts the communities of two professors: TClique
    (no negative edges allowed) truncates the group, SignedClique keeps
    the full strongly-cooperative group by tolerating a few weak ties.
    We reproduce the comparison around the focal author with the largest
    signed clique in the DBLP stand-in, reporting community sizes and
    internal negative-edge counts for both models.
    """
    limit = limit if limit is not None else time_limit_seconds()
    graph = get_dataset("dblp").graph
    params = AlphaK(alpha, k)
    top = MSCE(graph, params, time_limit=limit).top_r(25)
    if not top.cliques:
        return Exhibit(
            title="Fig.10 case study (dblp)", notes=["no signed cliques found"]
        )
    # The paper's case study showcases a community held together across
    # weak (negative) ties, so pick the largest signed clique that
    # actually contains one; fall back to the overall largest.
    focal_clique = next(
        (clique for clique in top.cliques if clique.negative_edges > 0),
        top.cliques[0],
    )
    focal_author = min(focal_clique.nodes, key=repr)

    tcliques = [
        clique
        for clique in tclique_communities(graph, min_size=2)
        if focal_author in clique
    ]
    best_tclique = max(tcliques, key=len) if tcliques else frozenset()

    size_series = Series("community size")
    negatives_series = Series("internal negative edges")
    for label, members in (
        ("TClique", set(best_tclique)),
        ("SignedClique", set(focal_clique.nodes)),
    ):
        negatives = (
            sum(len(graph.negative_neighbors(node) & members) for node in members) // 2
            if members
            else 0
        )
        size_series.add(label, len(members))
        negatives_series.add(label, negatives)
    exhibit = Exhibit(
        title=f"Fig.10 case study (dblp, alpha={alpha:g}, k={k}): focal author {focal_author}",
        series=[size_series, negatives_series],
    )
    missed = set(focal_clique.nodes) - set(best_tclique)
    if missed:
        exhibit.notes.append(
            f"TClique misses {len(missed)} member(s) that SignedClique keeps via weak ties"
        )
    return exhibit


# ----------------------------------------------------------------------
# Fig. 11 — protein-complex precision on the PPI network
# ----------------------------------------------------------------------
def fig11_precision(
    alphas: Optional[Sequence[float]] = None,
    ks: Optional[Sequence[int]] = None,
    r: int = DEFAULT_R,
    limit: Optional[float] = None,
) -> List[Exhibit]:
    """Fig. 11: avg precision of the top-r complexes per model on FlySign.

    The paper's grid: alpha in [2, 6] at k=3, and k in [1, 5] at
    alpha=4, against COMPLEAT ground-truth complexes; ours uses the
    planted complexes of the FlySign stand-in.
    """
    alphas = tuple(alphas if alphas is not None else [a for a in sweep_alphas() if a <= 6])
    ks = tuple(ks if ks is not None else [k for k in sweep_ks() if k <= 5])
    limit = limit if limit is not None else time_limit_seconds()
    dataset = get_dataset("flysign")
    graph, truth = dataset.graph, dataset.communities or []
    exhibits: List[Exhibit] = []
    for axis, values in (("alpha", alphas), ("k", ks)):
        model_series = {
            label: Series(label) for label in ("Core", "SignedCore", "TClique", "SignedClique")
        }
        for value in values:
            params = (
                AlphaK(value, DEFAULT_K) if axis == "alpha" else AlphaK(DEFAULT_ALPHA, value)
            )
            communities = {
                "Core": [set(c) for c in core_communities(graph, params)[:r]],
                "SignedCore": [set(c) for c in signed_core_communities(graph, params)[:r]],
                "TClique": [set(c) for c in tclique_communities(graph, min_size=3)[:r]],
                "SignedClique": _signed_clique_communities(graph, params, r, limit),
            }
            for label, sets in communities.items():
                model_series[label].add(value, round(average_precision(sets, truth), 4))
        exhibits.append(
            Exhibit(
                title=f"Fig.11 (flysign, vary {axis}): avg precision of top-{r} complexes",
                series=list(model_series.values()),
            )
        )
    return exhibits


# ----------------------------------------------------------------------
# Ablations (beyond the paper)
# ----------------------------------------------------------------------
def ablation_pruning_rules(
    name: str = "slashdot",
    alpha: float = 3,
    k: int = 2,
    limit: Optional[float] = None,
) -> Exhibit:
    """Cost of disabling each BBE pruning rule (recursion counts + time)."""
    limit = limit if limit is not None else time_limit_seconds()
    graph = get_dataset(name).graph
    params = AlphaK(alpha, k)
    configurations = [
        ("all rules", {}),
        ("no negative pruning", {"negative_pruning": False}),
        ("no clique pruning", {"clique_pruning": False}),
        ("no core pruning", {"core_pruning": False}),
    ]
    time_series = Series("seconds")
    recursion_series = Series("recursions")
    count_series = Series("cliques")
    exhibit = Exhibit(
        title=f"Ablation: BBE pruning rules ({name}, alpha={alpha:g}, k={k})",
        series=[time_series, recursion_series, count_series],
    )
    for label, overrides in configurations:
        searcher = MSCE(graph, params, time_limit=limit, **overrides)
        result = searcher.enumerate_all()
        time_series.add(label, round(result.elapsed_seconds, 3))
        recursion_series.add(label, result.stats.recursions)
        count_series.add(label, len(result.cliques))
        if result.timed_out:
            exhibit.notes.append(f"{label}: hit the {limit:g}s cap (partial counts)")
    return exhibit


def ablation_maxtest(
    name: str = "slashdot",
    alpha: float = 2,
    k: int = 2,
    limit: Optional[float] = None,
) -> Exhibit:
    """Exact Definition-2 maximality test vs the paper's single-extension test.

    The paper's test can reject true maximal cliques whose single-node
    extensions fail only the positive constraint; the exhibit reports
    how many results the heuristic loses and what it saves in time.
    """
    limit = limit if limit is not None else time_limit_seconds()
    graph = get_dataset(name).graph
    params = AlphaK(alpha, k)
    time_series = Series("seconds")
    count_series = Series("cliques")
    for label, kind in (("exact", "exact"), ("paper", "paper")):
        result = MSCE(graph, params, maxtest=kind, time_limit=limit).enumerate_all()
        time_series.add(label, round(result.elapsed_seconds, 3))
        count_series.add(label, len(result.cliques))
    exhibit = Exhibit(
        title=f"Ablation: maximality test ({name}, alpha={alpha:g}, k={k})",
        series=[time_series, count_series],
    )
    exact_count = count_series.y[0]
    paper_count = count_series.y[1]
    exhibit.notes.append(
        f"paper-style MaxTest under-reports {exact_count - paper_count} maximal clique(s)"
    )
    return exhibit


def ablation_reduction(
    name: str = "slashdot",
    alpha: float = DEFAULT_ALPHA,
    k: int = DEFAULT_K,
    limit: Optional[float] = None,
) -> Exhibit:
    """Enumeration cost under each reduction strength (none → MCCore)."""
    limit = limit if limit is not None else time_limit_seconds()
    graph = get_dataset(name).graph
    params = AlphaK(alpha, k)
    time_series = Series("seconds")
    survivor_series = Series("surviving nodes")
    for method in ("none", "positive-core", "mcbasic", "mcnew"):
        survivors = len(reduce_graph(graph, params, method=method))
        result = MSCE(graph, params, reduction=method, time_limit=limit).enumerate_all()
        time_series.add(method, round(result.elapsed_seconds, 3))
        survivor_series.add(method, survivors)
    return Exhibit(
        title=f"Ablation: reduction strength ({name}, alpha={alpha:g}, k={k})",
        series=[time_series, survivor_series],
    )


#: Driver registry used by ``python -m repro.experiments`` and the docs.
ALL_DRIVERS = {
    "table1": table1_dataset_stats,
    "fig3": fig3_reduction_time,
    "fig4": fig4_mccore_size,
    "fig5": fig5_enumeration_time,
    "fig6": fig6_clique_counts,
    "fig6_mechanism": fig6_growth_mechanism,
    "fig7": fig7_topr_time,
    "fig8": fig8_scalability,
    "fig8_parallel": fig8_parallel_speedup,
    "fig9": fig9_memory,
    "table2": table2_conductance,
    "fig10": fig10_case_study,
    "fig11": fig11_precision,
    "ablation_pruning": ablation_pruning_rules,
    "ablation_maxtest": ablation_maxtest,
    "ablation_reduction": ablation_reduction,
}
