"""Warm-start portfolio: race seeding heuristics, hand over incumbents.

The top-r search prunes subspaces against the size of the r-th largest
clique found so far, so its cost is dominated by how quickly strong
incumbents appear. This module builds those incumbents *before* the
exact search starts, by racing three cheap greedy passes under one
deadline:

* ``unseeded`` — the greedy grower seeded in plain ``repr`` order (the
  no-information baseline);
* ``degree`` — the grower's default descending positive-degree
  seeding;
* ``spectral`` — seeds ordered by the leading eigenvector of the
  signed adjacency (:mod:`repro.heuristics.spectral`), which ranks
  nodes by how centrally they sit in the dominant balanced region.

Every arm produces **certified maximal** cliques of the active model
only, so preloading them into the top-r size heap is sound: the heap
then underestimates the true r-th-largest size at every point of the
search, and the seeded run returns the *identical* clique set (the
differential battery in ``tests/test_seeding.py`` proves this across
workers, backends and models).

Explicit warm starts (caller-supplied cliques) go through
:func:`validate_warm_start`, which raises
:class:`~repro.exceptions.ParameterError` on anything that is not a
distinct, maximal, reportable clique of the model — an invalid
incumbent would silently corrupt answers, so it must never reach the
heap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.cliques import SignedClique, sort_cliques
from repro.core.heuristic import greedy_signed_cliques
from repro.core.params import AlphaK
from repro.exceptions import ParameterError
from repro.graphs.signed_graph import Node, SignedGraph
from repro.heuristics.spectral import spectral_seed_order
from repro.models.base import make_constraint, resolve_model
from repro.obs import runtime as obs

#: Accepted ``warm_start=`` strategy names, in portfolio order.
WARM_START_STRATEGIES = ("portfolio", "spectral", "degree", "unseeded")

#: Default wall-clock budget for one warm-start call, in seconds. The
#: heuristics are a *bound seeder*, not the search — they must stay a
#: small fraction of the exact run they accelerate.
DEFAULT_BUDGET_SECONDS = 1.0

#: Per-arm seed cap so a single arm cannot starve the others of the
#: shared deadline on large reduced regions.
MAX_SEEDS_PER_ARM = 48


@dataclass
class WarmStart:
    """Validated incumbents plus the report block the caller surfaces."""

    cliques: List[SignedClique] = field(default_factory=list)
    report: Dict[str, object] = field(default_factory=dict)


def _balanced_candidates(
    graph: SignedGraph,
    members: Set[Node],
    side_a: Set[Node],
    side_b: Set[Node],
    pool: Set[Node],
) -> Dict[Node, int]:
    """Nodes of *pool* that extend the balanced clique, mapped to a side.

    A node joins side ``+1`` (resp. ``-1``) iff its positive neighbours
    inside the clique are exactly ``side_a`` (resp. ``side_b``) and its
    negatives exactly the other side.
    """
    out: Dict[Node, int] = {}
    for node in pool:
        if node in members:
            continue
        pos = graph.positive_neighbors(node) & members
        neg = graph.negative_neighbors(node) & members
        if pos | neg != members:
            continue
        if pos == side_a:
            out[node] = 1
        elif pos == side_b:
            out[node] = -1
    return out


def grow_balanced_cliques(
    graph: SignedGraph,
    tau: int,
    seeds: Optional[Iterable[Node]] = None,
    max_seeds: Optional[int] = None,
    within: Optional[Iterable[Node]] = None,
    deadline: Optional[float] = None,
) -> List[Set[Node]]:
    """Greedily grow balanced cliques (both sides >= *tau*) from seeds.

    The balanced analogue of the (alpha, k) grower: starting from a
    single node, repeatedly add a candidate that keeps the set a
    balanced clique, preferring the smaller side (the ``tau`` floor
    binds on the *minimum* side). Growth stops when no candidate
    remains; because balancedness is hereditary, a stalled set is
    maximal over *within* — maximality over the whole graph is the
    caller's certification step when a region was given.

    Returns grown node sets (deduplicated, unordered); the caller
    filters by the side threshold and certifies maximality.
    """
    pool: Set[Node] = set(graph.nodes()) if within is None else set(within)
    ordered = (
        sorted(pool, key=lambda n: (-len(graph.neighbor_keys(n) & pool), repr(n)))
        if seeds is None
        else [node for node in seeds if node in pool]
    )
    if max_seeds is not None:
        ordered = ordered[:max_seeds]
    grown_sets: Dict[frozenset, Set[Node]] = {}
    for seed in ordered:
        if deadline is not None and time.perf_counter() >= deadline:
            break
        members: Set[Node] = {seed}
        side_a: Set[Node] = {seed}
        side_b: Set[Node] = set()
        candidates = _balanced_candidates(graph, members, side_a, side_b, pool)
        while candidates:
            # Feed the smaller side first; ties by degree-in-pool, repr.
            deficit_side = 1 if len(side_a) <= len(side_b) else -1
            best = min(
                candidates,
                key=lambda n: (
                    candidates[n] != deficit_side,
                    -len(graph.neighbor_keys(n) & pool),
                    repr(n),
                ),
            )
            (side_a if candidates[best] == 1 else side_b).add(best)
            members.add(best)
            candidates = _balanced_candidates(graph, members, side_a, side_b, pool)
        grown_sets.setdefault(frozenset(members), members)
    return list(grown_sets.values())


def _arm_seeds(
    arm: str, graph: SignedGraph, spectral_cache: Dict[str, object]
) -> Optional[List[Node]]:
    """Seed order for *arm* (``None`` = the grower's default order)."""
    if arm == "unseeded":
        return sorted(graph.nodes(), key=repr)
    if arm == "spectral":
        if "order" not in spectral_cache:
            order, sides, frustrated = spectral_seed_order(graph)
            spectral_cache["order"] = order
            spectral_cache["frustrated"] = frustrated
            spectral_cache["sides"] = sorted(
                (
                    sum(1 for s in sides.values() if s > 0),
                    sum(1 for s in sides.values() if s < 0),
                ),
                reverse=True,
            )
        return list(spectral_cache["order"])
    return None  # "degree": the grower's default descending-degree order


def _run_arm(
    arm: str,
    graph: SignedGraph,
    params: AlphaK,
    model: str,
    reduction: str,
    deadline: float,
    spectral_cache: Dict[str, object],
) -> List[SignedClique]:
    """One greedy pass; returns certified maximal cliques of *model*."""
    constraint = make_constraint(model, params)
    seeds = _arm_seeds(arm, graph, spectral_cache)
    if model == "balanced":
        maxtest = constraint.make_maxtest("exact")
        grown = grow_balanced_cliques(
            graph,
            constraint.tau,
            seeds=seeds,
            max_seeds=MAX_SEEDS_PER_ARM,
            deadline=deadline,
        )
        out = []
        for members in grown:
            if not constraint.feasible(graph, members):
                continue
            if not maxtest(graph, members, params):
                continue
            out.append(SignedClique.from_nodes(graph, members, params))
        return sort_cliques(out)
    return greedy_signed_cliques(
        graph,
        params.alpha,
        params.k,
        seeds=seeds,
        max_seeds=MAX_SEEDS_PER_ARM,
        reduction=reduction,
        certify=True,
        deadline=deadline,
    )


def validate_warm_start(
    graph: SignedGraph,
    params: AlphaK,
    incumbents: Iterable,
    model: Optional[str] = None,
    min_size: Optional[int] = None,
) -> List[SignedClique]:
    """Validate caller-supplied incumbents; raise ``ParameterError`` if bad.

    Every incumbent must be a **distinct maximal reportable clique of
    the active model** whose nodes exist in the graph, and at least
    *min_size* large when a floor is active. Anything less would poison
    the top-r size heap: a non-maximal or oversized-bound incumbent
    makes the seeded search prune subspaces the unseeded search keeps,
    silently changing answers. Accepts ``SignedClique`` objects or bare
    node collections; returns normalised ``SignedClique`` rows.
    """
    resolved = resolve_model(model)
    constraint = make_constraint(resolved, params)
    maxtest = constraint.make_maxtest("exact")
    seen: Set[frozenset] = set()
    validated: List[SignedClique] = []
    for item in incumbents:
        nodes = item.nodes if isinstance(item, SignedClique) else frozenset(item)
        if not nodes:
            raise ParameterError("warm-start incumbent is empty")
        missing = [node for node in nodes if not graph.has_node(node)]
        if missing:
            raise ParameterError(
                f"warm-start incumbent contains unknown nodes {sorted(map(repr, missing))}"
            )
        if nodes in seen:
            raise ParameterError(
                f"duplicate warm-start incumbent {sorted(map(repr, nodes))}"
            )
        member_set = set(nodes)
        if not constraint.feasible(graph, member_set) or not constraint.reportable(
            graph, member_set
        ):
            raise ParameterError(
                f"warm-start incumbent {sorted(map(repr, nodes))} is not a valid "
                f"clique of the {resolved!r} model"
            )
        if not maxtest(graph, member_set, params):
            raise ParameterError(
                f"warm-start incumbent {sorted(map(repr, nodes))} is not maximal"
            )
        if min_size is not None and len(nodes) < min_size:
            raise ParameterError(
                f"warm-start incumbent {sorted(map(repr, nodes))} is below "
                f"min_size={min_size}"
            )
        seen.add(nodes)
        validated.append(SignedClique.from_nodes(graph, member_set, params))
    return validated


def warm_start_cliques(
    graph: SignedGraph,
    params: AlphaK,
    r: int,
    strategy: str = "portfolio",
    model: Optional[str] = None,
    reduction: str = "mcnew",
    budget_seconds: float = DEFAULT_BUDGET_SECONDS,
    min_size: Optional[int] = None,
) -> WarmStart:
    """Run the seeding portfolio and return incumbents + report.

    *strategy* is one of :data:`WARM_START_STRATEGIES`: a single arm
    name runs just that arm; ``"portfolio"`` races all three under the
    shared *budget_seconds* deadline. The returned cliques are
    certified maximal cliques of the model, deduplicated across arms,
    sorted largest-first and truncated to the *r* best (more would
    never tighten the heap further).
    """
    if strategy not in WARM_START_STRATEGIES:
        raise ParameterError(
            f"unknown warm_start strategy {strategy!r}; "
            f"expected one of {', '.join(WARM_START_STRATEGIES)}"
        )
    resolved = resolve_model(model)
    arms = (
        ("unseeded", "degree", "spectral")
        if strategy == "portfolio"
        else (strategy,)
    )
    deadline = time.perf_counter() + budget_seconds
    spectral_cache: Dict[str, object] = {}
    merged: Dict[frozenset, SignedClique] = {}
    arm_reports: List[Dict[str, object]] = []
    with obs.span(
        "heuristic_portfolio", strategy=strategy, model=resolved, r=r
    ):
        for arm in arms:
            arm_started = time.perf_counter()
            with obs.span("heuristic_arm", arm=arm):
                cliques = _run_arm(
                    arm, graph, params, resolved, reduction, deadline, spectral_cache
                )
            obs.counter("heuristic_arm_runs").inc()
            fresh = 0
            for clique in cliques:
                if min_size is not None and clique.size < min_size:
                    continue
                if clique.nodes not in merged:
                    merged[clique.nodes] = clique
                    fresh += 1
            arm_reports.append(
                {
                    "arm": arm,
                    "cliques": len(cliques),
                    "fresh": fresh,
                    "best": max((c.size for c in cliques), default=0),
                    "seconds": round(time.perf_counter() - arm_started, 6),
                }
            )
            if time.perf_counter() >= deadline:
                break
        incumbents = sort_cliques(merged.values())[: max(r, 0)]
        obs.counter("heuristic_incumbents").inc(len(incumbents))
    report: Dict[str, object] = {
        "strategy": strategy,
        "model": resolved,
        "arms": arm_reports,
        "incumbents": len(incumbents),
        "best_size": incumbents[0].size if incumbents else 0,
    }
    if "frustrated" in spectral_cache:
        report["spectral"] = {
            "frustrated_edges": spectral_cache["frustrated"],
            "sides": list(spectral_cache["sides"]),
        }
    return WarmStart(cliques=incumbents, report=report)


def prepare_warm_start(
    graph: SignedGraph,
    params: AlphaK,
    r: int,
    warm_start,
    model: Optional[str] = None,
    reduction: str = "mcnew",
    min_size: Optional[int] = None,
    budget_seconds: float = DEFAULT_BUDGET_SECONDS,
) -> Optional[WarmStart]:
    """Normalise a ``warm_start=`` argument into a validated WarmStart.

    ``None`` passes through (no seeding); a strategy name runs the
    portfolio; any other iterable is treated as explicit incumbents and
    strictly validated (:func:`validate_warm_start` — raises
    ``ParameterError`` rather than letting a bad bound corrupt the
    search). Explicit incumbents are also truncated to the *r* largest.
    """
    if warm_start is None:
        return None
    if isinstance(warm_start, str):
        return warm_start_cliques(
            graph,
            params,
            r,
            strategy=warm_start,
            model=model,
            reduction=reduction,
            budget_seconds=budget_seconds,
            min_size=min_size,
        )
    if not isinstance(warm_start, Iterable):
        raise ParameterError(
            f"warm_start must be a strategy name or an iterable of cliques, "
            f"got {type(warm_start).__name__}"
        )
    validated = validate_warm_start(
        graph, params, list(warm_start), model=model, min_size=min_size
    )
    incumbents = sort_cliques(validated)[: max(r, 0)]
    report = {
        "strategy": "explicit",
        "model": resolve_model(model),
        "arms": [],
        "incumbents": len(incumbents),
        "best_size": incumbents[0].size if incumbents else 0,
    }
    return WarmStart(cliques=incumbents, report=report)
