"""Warm-start heuristics: spectral balanced regions + a seeding portfolio.

The exact top-r search (:meth:`repro.core.bbe.MSCE.top_r`) prunes
subspaces against its r-th incumbent's size, so a strong lower bound
found *before* the search starts pays for itself many times over. This
package builds that bound:

* :mod:`repro.heuristics.spectral` — leading-eigenvector 2-partition of
  the signed adjacency with greedy sign-consistent polishing, locating
  the dominant balanced region (after Ordozgoiti et al.,
  arXiv:2002.00775);
* :mod:`repro.heuristics.portfolio` — races ``{unseeded, degree,
  spectral}`` greedy passes under one deadline, certifies every grown
  set as a maximal clique of the active model, and hands the best
  incumbents to the enumerator's size heap.

Soundness contract: a warm start may only ever make the search
*faster*, never change its answers. Every incumbent that reaches the
heap is a distinct genuine maximal clique (validated here), so the
heap's r-th smallest entry always under-estimates the true r-th
largest clique size and the pruning cutoff stays conservative —
``tests/test_seeding.py`` holds seeded and unseeded runs bit-identical
across workers, backends and models.
"""

from repro.heuristics.portfolio import (
    DEFAULT_BUDGET_SECONDS,
    MAX_SEEDS_PER_ARM,
    WARM_START_STRATEGIES,
    WarmStart,
    grow_balanced_cliques,
    prepare_warm_start,
    validate_warm_start,
    warm_start_cliques,
)
from repro.heuristics.spectral import (
    polish_partition,
    spectral_scores,
    spectral_seed_order,
)

__all__ = [
    "DEFAULT_BUDGET_SECONDS",
    "MAX_SEEDS_PER_ARM",
    "WARM_START_STRATEGIES",
    "WarmStart",
    "grow_balanced_cliques",
    "polish_partition",
    "prepare_warm_start",
    "spectral_scores",
    "spectral_seed_order",
    "validate_warm_start",
    "warm_start_cliques",
]
