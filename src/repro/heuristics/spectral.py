"""Signed-spectral balanced-region detection.

A (nearly) balanced region of a signed graph — two camps, positive
inside each camp, negative across — shows up as a large leading
eigenvalue of the *signed* adjacency matrix ``A`` (``A[u][v]`` is the
edge sign): for a perfectly balanced subgraph the switching that flips
one camp turns ``A`` into the all-positive adjacency, whose Perron
vector is positive. The leading eigenvector of the signed matrix
therefore 2-partitions the graph by sign, and its magnitudes rank nodes
by how strongly they sit inside the dominant coherent region (the
spectral relaxation used by Ordozgoiti et al., arXiv:2002.00775).

This module keeps everything deterministic — fixed iteration counts, a
hash-seeded start vector, ``repr``-ordered tie-breaks — because the
warm-start layer built on top must be reproducible run to run.

Pure Python on the ``SignedGraph`` adjacency sets: the graphs this
feeds (reduced candidate regions) are small, and determinism across
platforms matters more than constant factors here.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graphs.signed_graph import Node, SignedGraph

#: Power-iteration steps; enough for the ranking (not the eigenvalue)
#: to stabilise on the region sizes the warm-start layer feeds in.
DEFAULT_ITERATIONS = 60


def _start_vector(nodes: List[Node]) -> Dict[Node, float]:
    """Deterministic pseudo-random start vector, never the zero vector.

    Hash-seeded (crc32 of each node's ``repr``) rather than uniform so
    the start is essentially never orthogonal to the leading
    eigenvector — the all-ones vector *is* orthogonal to it on exactly
    bipartite-balanced instances, which are the interesting ones here.
    """
    vector = {}
    for node in nodes:
        raw = zlib.crc32(repr(node).encode("utf-8"))
        # In [-0.5, 0.5); never exactly 0 (the modulus is odd).
        vector[node] = ((raw % 2000003) / 2000003.0) - 0.5
    return vector


def _normalize(vector: Dict[Node, float]) -> float:
    norm = math.sqrt(sum(value * value for value in vector.values()))
    if norm > 0:
        for node in vector:
            vector[node] /= norm
    return norm


def spectral_scores(
    graph: SignedGraph,
    within: Optional[Iterable[Node]] = None,
    iterations: int = DEFAULT_ITERATIONS,
) -> Dict[Node, float]:
    """Leading-eigenvector scores of the signed adjacency (power iteration).

    Iterates ``x <- (A + (d_max + 1) I) x`` so the dominant eigenvalue
    of the shifted operator is the *largest* (not largest-magnitude)
    eigenvalue of ``A`` — the one that certifies a balanced region.
    Returns a node -> score map over *within* (default: all nodes);
    the sign of a score is the node's camp, its magnitude the node's
    centrality inside the dominant coherent region.
    """
    region: Set[Node] = set(graph.nodes()) if within is None else set(within)
    nodes = sorted(region, key=repr)
    if not nodes:
        return {}
    degree_cap = max(len(graph.neighbor_keys(node) & region) for node in nodes)
    shift = float(degree_cap + 1)
    vector = _start_vector(nodes)
    _normalize(vector)
    for _ in range(max(1, iterations)):
        nxt: Dict[Node, float] = {}
        for node in nodes:
            total = shift * vector[node]
            for other in graph.positive_neighbors(node):
                if other in region:
                    total += vector[other]
            for other in graph.negative_neighbors(node):
                if other in region:
                    total -= vector[other]
            nxt[node] = total
        if _normalize(nxt) == 0.0:  # pragma: no cover - shift keeps it nonzero
            break
        vector = nxt
    return vector


def polish_partition(
    graph: SignedGraph,
    scores: Dict[Node, float],
    max_moves: Optional[int] = None,
) -> Tuple[Dict[Node, int], int]:
    """Greedy sign-consistent polish of the spectral 2-partition.

    Starts from ``side(v) = sign(score(v))`` and repeatedly flips the
    node whose flip most reduces *frustration* (edges inconsistent with
    the partition: positive across camps, negative within a camp),
    until no flip improves. Deterministic: best gain first, ties by
    ``repr``. Returns the polished side map and the remaining number
    of frustrated edges inside the scored region.
    """
    nodes = sorted(scores, key=repr)
    region = set(nodes)
    sides: Dict[Node, int] = {
        node: 1 if scores[node] >= 0 else -1 for node in nodes
    }

    def gain(node: Node) -> int:
        # Flipping turns each incident consistent edge inconsistent and
        # vice versa, so the gain is (#inconsistent - #consistent).
        balance = 0
        for other in graph.positive_neighbors(node):
            if other in region:
                balance += 1 if sides[node] != sides[other] else -1
        for other in graph.negative_neighbors(node):
            if other in region:
                balance += 1 if sides[node] == sides[other] else -1
        return balance

    budget = 2 * len(nodes) if max_moves is None else max_moves
    for _ in range(budget):
        best_node = None
        best_gain = 0
        for node in nodes:
            node_gain = gain(node)
            if node_gain > best_gain:
                best_node, best_gain = node, node_gain
        if best_node is None:
            break
        sides[best_node] = -sides[best_node]

    frustrated = 0
    for node in nodes:
        for other in graph.positive_neighbors(node):
            if other in region and repr(other) > repr(node) and sides[node] != sides[other]:
                frustrated += 1
        for other in graph.negative_neighbors(node):
            if other in region and repr(other) > repr(node) and sides[node] == sides[other]:
                frustrated += 1
    return sides, frustrated


def spectral_seed_order(
    graph: SignedGraph,
    within: Optional[Iterable[Node]] = None,
    iterations: int = DEFAULT_ITERATIONS,
) -> Tuple[List[Node], Dict[Node, int], int]:
    """Seeds for the greedy grower, strongest spectral nodes first.

    Returns ``(order, sides, frustrated)``: nodes by descending
    eigenvector magnitude (ties by ``repr``), the polished camp
    assignment, and the post-polish frustrated-edge count — the latter
    two feed the warm-start report.
    """
    scores = spectral_scores(graph, within=within, iterations=iterations)
    sides, frustrated = polish_partition(graph, scores)
    order = sorted(scores, key=lambda node: (-abs(scores[node]), repr(node)))
    return order, sides, frustrated
