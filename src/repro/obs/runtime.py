"""The ambient :class:`Observer`: process-wide registry + tracer + journal.

Pipeline code does not thread an observer through every signature;
instead it asks this module for the process's current one and emits
through it:

>>> from repro.obs import runtime
>>> with runtime.span("reduce", method="mcnew"):
...     pass
>>> runtime.journal_event("guard_trip", reason="deadline")  # doctest: +SKIP

By default the observer is **disabled** — its registry, tracer and
journal are the shared null singletons, so every hook above costs an
attribute lookup and a no-op call. Observability is enabled either

* programmatically, with the :func:`observing` context manager (what
  the CLI's ``--trace-out`` / ``--metrics-out`` flags and the tests
  use), or
* by environment, setting ``REPRO_OBS=1`` before the first hook runs
  (what the CI observability job uses to run the whole tier-1 suite
  instrumented); ``REPRO_OBS_JOURNAL=<path>`` additionally streams the
  journal to a JSONL file.

Worker processes are *forked* after the parent installs its observer,
so they inherit it: spans and counters they record stay in worker
memory (per-task registry snapshots ride back on ``done`` messages —
see :mod:`repro.core.scheduler`), while journal file output, if
enabled, appends from every process into one JSONL stream.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.clock import MONOTONIC
from repro.obs.journal import NULL_JOURNAL, EventJournal
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracing import NULL_TRACER, Tracer


class Observer:
    """One process's observability bundle."""

    __slots__ = ("registry", "tracer", "journal", "enabled")

    def __init__(self, registry, tracer, journal, enabled: bool):
        self.registry = registry
        self.tracer = tracer
        self.journal = journal
        self.enabled = enabled

    @classmethod
    def disabled(cls) -> "Observer":
        """The no-op bundle (shared null components)."""
        return cls(NULL_REGISTRY, NULL_TRACER, NULL_JOURNAL, enabled=False)

    @classmethod
    def fresh(cls, journal_path: Optional[str] = None, clock=MONOTONIC) -> "Observer":
        """A live bundle with its own registry, tracer and journal."""
        registry = MetricsRegistry()
        return cls(
            registry,
            Tracer(registry, clock=clock),
            EventJournal(path=journal_path, clock=clock),
            enabled=True,
        )

    def __repr__(self) -> str:
        return f"Observer(enabled={self.enabled})"


_OBSERVER: Optional[Observer] = None


def _from_env() -> Observer:
    flag = os.environ.get("REPRO_OBS", "").strip()
    if flag not in ("", "0", "false"):
        return Observer.fresh(journal_path=os.environ.get("REPRO_OBS_JOURNAL") or None)
    return Observer.disabled()


def get_observer() -> Observer:
    """The process's current observer (built from the env on first use)."""
    global _OBSERVER
    if _OBSERVER is None:
        _OBSERVER = _from_env()
    return _OBSERVER


def install(observer: Observer) -> Observer:
    """Replace the current observer; returns the previous one."""
    global _OBSERVER
    previous = get_observer()
    _OBSERVER = observer
    return previous


@contextmanager
def observing(
    journal_path: Optional[str] = None, clock=MONOTONIC
) -> Iterator[Observer]:
    """Install a fresh enabled observer for the block, then restore.

    The observer stays usable after the block (its registry, tracer and
    journal keep their recorded data) — only the ambient installation
    is undone, which is what lets the CLI export a run's trace after
    the run returned.
    """
    observer = Observer.fresh(journal_path=journal_path, clock=clock)
    previous = install(observer)
    try:
        yield observer
    finally:
        install(previous)
        observer.journal.close()


# ---------------------------------------------------------------------------
# Convenience hooks used by the pipeline call sites
# ---------------------------------------------------------------------------
def span(name: str, **attrs):
    """Open a span on the ambient tracer (no-op context when disabled)."""
    return get_observer().tracer.span(name, **attrs)


def counter(name: str):
    """The ambient registry's counter *name* (a shared sink when disabled)."""
    return get_observer().registry.counter(name)


def journal_event(event: str, **fields) -> None:
    """Emit a journal event on the ambient journal (no-op when disabled)."""
    get_observer().journal.emit(event, **fields)


def merge_metrics(snapshot) -> None:
    """Fold a registry snapshot into the ambient registry (no-op when disabled)."""
    get_observer().registry.merge_snapshot(snapshot)
