"""Counters, gauges and histograms with deterministic snapshot merging.

A :class:`MetricsRegistry` is the numeric heart of the observability
subsystem: named :class:`Counter`/:class:`Gauge`/:class:`Histogram`
instruments, a plain-dict :meth:`~MetricsRegistry.snapshot` and an
additive :meth:`~MetricsRegistry.merge_snapshot`. Snapshots are what
crosses process boundaries — a worker ships its per-task registry
snapshot on the task's ``done`` message and the parent merges it, so
metric aggregation inherits the scheduler's exactly-once credit
discipline: a crashed attempt contributes nothing, a retried frame is
counted once, and the merged counters are bit-identical across worker
counts and injected crashes (see :mod:`repro.core.scheduler`).

Merging is commutative and associative for counters and histograms
(integer/float addition) and uses ``max`` for gauges, so the merged
registry does not depend on message arrival order — the property that
makes aggregated metrics deterministic under work stealing.

The disabled path is the :data:`NULL_REGISTRY` singleton: every
instrument it hands out is a shared no-op object whose methods do
nothing, so instrumented call sites cost one attribute lookup and one
no-op call when observability is off.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (generic latency/size scale).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
    500.0, 1000.0, 5000.0,
)


class Counter:
    """A monotonically-increasing named value.

    ``value`` is a plain attribute on purpose: hot loops (the MSCE
    search counters) read and write it directly with native attribute
    speed, and :class:`~repro.core.bbe.SearchStats` exposes its fields
    as views over these attributes. Those direct writes are inherently
    single-threaded (one search, one registry). :meth:`inc`, by
    contrast, is reachable concurrently from the serving layer's
    executor threads — several tenant engines mirror into the same
    ambient counters — so it serialises on a shared lock; a plain
    ``value += amount`` there can lose increments between the load and
    the store.
    """

    __slots__ = ("name", "value")

    #: One process-wide lock for every counter: `inc` sits on request
    #: (not search) granularity, so contention is negligible, and a
    #: shared lock keeps Counter slot-only and picklable.
    _inc_lock = threading.Lock()

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        """Atomically add *amount* (default 1) to the counter."""
        with Counter._inc_lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value!r})"


class Gauge:
    """A named value that can go up and down (pool size, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def add(self, amount: float = 1) -> None:
        """Shift the gauge by *amount* (may be negative)."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value!r})"


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics).

    *bounds* are the inclusive upper edges of the buckets; observations
    above the last bound land in the implicit ``+Inf`` bucket. Counts,
    total and sum are exact, so two histograms built from the same
    multiset of observations are equal regardless of order — the
    property snapshot merging relies on.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds!r}")
        #: Per-bucket observation counts (one extra slot for +Inf).
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        #: Sum of every observed value.
        self.total: float = 0.0
        #: Number of observations.
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, sum={self.total!r})"


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are created on first use (``registry.counter("x")``)
    and shared thereafter; names are free-form strings (the Prometheus
    exporter sanitises them at render time).
    """

    enabled = True

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instrument accessors -------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter called *name*."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called *name*."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create the histogram called *name* (bounds fixed at creation)."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, bounds)
        return instrument

    def counter_value(self, name: str, default: int = 0) -> int:
        """Read a counter's value without creating it."""
        instrument = self.counters.get(name)
        return default if instrument is None else instrument.value

    # -- snapshots ------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Return the registry's state as plain picklable dicts.

        The shape is the wire format of cross-process aggregation:
        ``{"counters": {name: int}, "gauges": {name: float},
        "histograms": {name: {"bounds": [...], "counts": [...],
        "sum": float, "count": int}}}``.
        """
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for name, h in self.histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: Optional[Dict[str, Dict]]) -> None:
        """Fold *snapshot* into this registry (``None`` is a no-op).

        Counters and histograms add; gauges keep the maximum (the only
        order-independent choice, suiting high-water-mark semantics).
        Histograms with mismatched bounds raise — that is a programming
        error, never a runtime condition.
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.value = max(gauge.value, value)
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, payload["bounds"])
            if list(histogram.bounds) != [float(b) for b in payload["bounds"]]:
                raise ValueError(
                    f"histogram {name!r} bounds mismatch: "
                    f"{histogram.bounds} vs {payload['bounds']}"
                )
            for i, count in enumerate(payload["counts"]):
                histogram.counts[i] += count
            histogram.total += payload["sum"]
            histogram.count += payload["count"]

    def clear(self) -> None:
        """Drop every instrument (used between test runs)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )


class _NullCounter(Counter):
    """Shared write-sink counter: increments vanish."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled path: every accessor returns a shared no-op instrument.

    ``snapshot`` is always empty and ``merge_snapshot`` discards its
    argument, so code can treat an observer's registry uniformly whether
    observability is on or off.
    """

    enabled = False

    __slots__ = ("_counter", "_gauge", "_histogram")

    def __init__(self):
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._histogram

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snapshot: Optional[Dict[str, Dict]]) -> None:
        pass


#: Process-wide disabled registry (the default observer's backing store).
NULL_REGISTRY = NullRegistry()
