"""Observability for the signed-clique pipeline: metrics, tracing, journal.

The subsystem is deliberately self-contained — it imports nothing from
``repro.core`` or ``repro.fastpath``, so the pipeline can hook into it
from anywhere without import cycles. Five pieces compose:

* :mod:`repro.obs.clock` — injectable monotonic time (``FakeClock`` for
  deterministic tests);
* :mod:`repro.obs.metrics` — counters / gauges / histograms in a
  :class:`MetricsRegistry` with deterministic snapshot merging;
* :mod:`repro.obs.tracing` — span tree with per-phase wall time and
  counter deltas;
* :mod:`repro.obs.journal` — JSONL event journal for scheduler and
  guard lifecycle events;
* :mod:`repro.obs.export` — JSON trace dumps, Prometheus text
  exposition, and the schema-shape reducer for golden-file checks;
* :mod:`repro.obs.progress` — throttled progress callbacks with ETA
  from frames outstanding;
* :mod:`repro.obs.runtime` — the ambient per-process observer the
  pipeline call sites emit through (no-op singletons when disabled).
"""

from repro.obs.clock import MONOTONIC, FakeClock, MonotonicClock
from repro.obs.export import (
    prometheus_text,
    trace_shape,
    trace_to_dict,
    write_prometheus,
    write_trace_json,
)
from repro.obs.journal import NULL_JOURNAL, EventJournal, NullJournal
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.progress import DEFAULT_MIN_INTERVAL, ProgressEvent, ProgressReporter
from repro.obs.runtime import Observer, get_observer, install, observing
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "MONOTONIC",
    "FakeClock",
    "MonotonicClock",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "EventJournal",
    "NullJournal",
    "NULL_JOURNAL",
    "trace_to_dict",
    "write_trace_json",
    "prometheus_text",
    "write_prometheus",
    "trace_shape",
    "ProgressEvent",
    "ProgressReporter",
    "DEFAULT_MIN_INTERVAL",
    "Observer",
    "get_observer",
    "install",
    "observing",
]
