"""JSONL event journal for scheduler and guard lifecycle events.

Counters say *how much*; the journal says *what happened, in order*:
worker spawns and deaths, frame spawns / steals / retries / quarantines,
worker respawns, shared-memory and spawn-failure degradations, resource
guard trips. Each event is one flat JSON object with a monotonic
``ts`` and an ``event`` name, held in memory (bounded) and optionally
appended to a JSONL file as it happens.

File writes are one ``write()`` call per event on a line-buffered
append-mode handle, so events written by forked worker processes (which
inherit the handle) interleave per line, never mid-line — the file
stays valid JSONL under the parallel enumerator.

The disabled path is the :data:`NULL_JOURNAL` singleton whose ``emit``
does nothing.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.clock import MONOTONIC

#: In-memory events retained per journal; older events stay only in the
#: JSONL file (if any) once the cap is reached.
MAX_EVENTS = 10_000


class EventJournal:
    """An append-only event log, in memory and optionally on disk.

    Parameters
    ----------
    path:
        When given, every event is also appended to this file as one
        JSON line (created if missing, opened in append mode).
    clock:
        Injectable time source for the ``ts`` field.
    max_events:
        In-memory retention cap; excess events are dropped from memory
        (counted in :attr:`dropped`) but still written to the file.
    """

    enabled = True

    def __init__(self, path: Optional[str] = None, clock=MONOTONIC, max_events: int = MAX_EVENTS):
        self.clock = clock
        self.path = str(path) if path is not None else None
        self.max_events = max_events
        #: In-memory event dicts, oldest first.
        self.events: List[Dict[str, object]] = []
        #: Events evicted from memory by the cap (the file keeps them).
        self.dropped = 0
        self._handle = open(self.path, "a", encoding="utf-8", buffering=1) if self.path else None

    def emit(self, event: str, **fields) -> Dict[str, object]:
        """Record one event; returns the event dict."""
        record: Dict[str, object] = {"ts": self.clock.now(), "event": event}
        record.update(fields)
        if len(self.events) < self.max_events:
            self.events.append(record)
        else:
            self.dropped += 1
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        return record

    def of_kind(self, event: str) -> List[Dict[str, object]]:
        """The in-memory events with the given ``event`` name."""
        return [record for record in self.events if record["event"] == event]

    def close(self) -> None:
        """Close the JSONL file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def clear(self) -> None:
        """Drop the in-memory events (the file, if any, is untouched)."""
        self.events.clear()
        self.dropped = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(events={len(self.events)}, path={self.path!r})"


class NullJournal(EventJournal):
    """The disabled path: ``emit`` discards everything."""

    enabled = False

    def __init__(self):
        super().__init__(path=None)

    def emit(self, event: str, **fields) -> Dict[str, object]:
        return {}


#: Process-wide disabled journal (the default observer's journal).
NULL_JOURNAL = NullJournal()
