"""Injectable monotonic clocks for the observability subsystem.

Every time-dependent component of :mod:`repro.obs` — span timing,
journal timestamps, progress throttling and ETA estimation — reads time
through a :class:`Clock` object instead of calling :func:`time.monotonic`
directly. Production code uses the process-wide :data:`MONOTONIC`
singleton; tests inject a :class:`FakeClock` and advance it manually,
which makes span durations, histogram contents and ETA numbers exactly
reproducible (no sleeps, no flaky tolerances).

>>> clock = FakeClock()
>>> clock.advance(2.5)
>>> clock.now()
2.5
"""

from __future__ import annotations

import time


class MonotonicClock:
    """The real clock: a thin wrapper around :func:`time.monotonic`.

    ``CLOCK_MONOTONIC`` is system-wide on the POSIX platforms the
    parallel enumerator runs on, so timestamps taken in forked worker
    processes are directly comparable with the parent's — the same
    property :mod:`repro.limits` relies on for cross-process deadlines.
    """

    __slots__ = ()

    def now(self) -> float:
        """Current monotonic time in seconds."""
        return time.monotonic()

    def __repr__(self) -> str:
        return "MonotonicClock()"


class FakeClock:
    """A manually-advanced clock for deterministic tests.

    Parameters
    ----------
    start:
        The initial reading (defaults to ``0.0``).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current fake time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by *seconds* (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance a monotonic clock by {seconds}")
        self._now += seconds

    def __repr__(self) -> str:
        return f"FakeClock(now={self._now!r})"


#: Process-wide real clock, shared by every default-constructed component.
MONOTONIC = MonotonicClock()
