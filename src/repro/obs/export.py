"""Exporters: nested-JSON trace dumps and Prometheus text exposition.

Two wire formats cover the two consumption modes of a run's telemetry:

* :func:`trace_to_dict` / :func:`write_trace_json` — the span tree with
  per-phase wall time and counter deltas as nested JSON, for humans and
  for the perf-trajectory tooling (`BENCH_*.json` artifacts);
* :func:`prometheus_text` — the metrics registry in the Prometheus text
  exposition format (version 0.0.4), for scraping a long-lived service.

:func:`trace_shape` reduces a trace dump to its *shape* — span names,
nesting, and the sorted key sets of every object — which is what the CI
golden-file check pins: timings drift every run, the schema must not.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def trace_to_dict(tracer: Tracer) -> Dict[str, object]:
    """The tracer's span tree as a JSON-ready nested dict."""
    return tracer.to_dict()


def write_trace_json(tracer: Tracer, path) -> None:
    """Dump the trace to *path* as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_to_dict(tracer), handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


def _metric_name(name: str) -> str:
    """Sanitise *name* into a legal Prometheus metric name."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _label_block(labels: Optional[Dict[str, str]]) -> str:
    """Render *labels* as a ``{key="value",...}`` block ('' when empty)."""
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        value = str(labels[key]).replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{_metric_name(key)}="{value}"')
    return "{" + ",".join(parts) + "}"


def split_inline_labels(name: str) -> "tuple[str, Dict[str, str]]":
    """Split an instrument name carrying inline labels.

    The registry keys instruments by a flat string; multi-series metrics
    (one counter per tenant, say) encode their labels *into* the name as
    ``base|key=value[,key=value...]`` — e.g.
    ``serve_lru_hits|tenant=acme``. The exporter peels the labels back
    off so Prometheus sees one ``repro_serve_lru_hits_total`` family
    with a proper ``tenant`` label instead of a metric name per tenant.
    Names without a ``|`` (or with a malformed label part) pass through
    unchanged — the registry itself never interprets the convention, so
    merge/snapshot semantics are untouched.
    """
    if "|" not in name:
        return name, {}
    base, _, raw = name.partition("|")
    labels: Dict[str, str] = {}
    for part in raw.split(","):
        key, sep, value = part.partition("=")
        if not sep or not key:
            return name, {}  # malformed: treat the whole name as literal
        labels[key] = value
    return base, labels


def prometheus_text(
    registry: MetricsRegistry,
    namespace: str = "repro",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render *registry* in the Prometheus text exposition format.

    Counters get a ``_total`` suffix, histograms the standard
    ``_bucket``/``_sum``/``_count`` triplet with cumulative ``le``
    labels ending in ``+Inf``. Instruments are emitted in sorted name
    order so the export is deterministic. ``labels`` attaches constant
    labels to every sample — the CLI uses it to stamp the run's
    ``kernel_backend`` on the export.

    Counter and gauge names may carry inline labels
    (:func:`split_inline_labels`): every ``base|key=value`` series of
    one base is emitted as a sample of the *same* metric family with
    the inline labels merged over the constant ones, under a single
    ``# TYPE`` line — this is how the per-tenant LRU counters of
    :mod:`repro.serve.lru` reach Prometheus as one ``serve_lru_hits``
    family with a ``tenant`` label.
    """
    prefix = _metric_name(namespace) + "_" if namespace else ""
    tags = _label_block(labels)
    lines: List[str] = []

    def grouped(names):
        families: Dict[str, List] = {}
        for name in names:
            base, inline = split_inline_labels(name)
            merged = dict(labels or {})
            merged.update(inline)
            families.setdefault(base, []).append((_label_block(merged), name))
        return families

    counter_families = grouped(registry.counters)
    for base in sorted(counter_families):
        metric = f"{prefix}{_metric_name(base)}_total"
        lines.append(f"# TYPE {metric} counter")
        for block, name in sorted(counter_families[base]):
            lines.append(f"{metric}{block} {registry.counters[name].value}")
    gauge_families = grouped(registry.gauges)
    for base in sorted(gauge_families):
        metric = f"{prefix}{_metric_name(base)}"
        lines.append(f"# TYPE {metric} gauge")
        for block, name in sorted(gauge_families[base]):
            lines.append(f"{metric}{block} {registry.gauges[name].value}")
    for name in sorted(registry.histograms):
        histogram = registry.histograms[name]
        metric = f"{prefix}{_metric_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        extra = ("," + tags[1:-1]) if tags else ""
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound:g}"{extra}}} {cumulative}')
        cumulative += histogram.counts[-1]
        lines.append(f'{metric}_bucket{{le="+Inf"{extra}}} {cumulative}')
        lines.append(f"{metric}_sum{tags} {histogram.total:g}")
        lines.append(f"{metric}_count{tags} {histogram.count}")
    return "\n".join(lines) + "\n"


def write_prometheus(
    registry: MetricsRegistry,
    path,
    namespace: str = "repro",
    labels: Optional[Dict[str, str]] = None,
) -> None:
    """Write :func:`prometheus_text` output to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry, namespace=namespace, labels=labels))


_Shape = Union[str, List, Dict[str, object]]


def trace_shape(payload) -> _Shape:
    """Reduce a trace dump to its schema shape for golden-file checks.

    Scalars collapse to their type name; dicts keep their (sorted) keys
    with shaped values — except ``counters`` and ``attrs`` payloads,
    which collapse to their sorted key list (values are run-dependent);
    span lists keep per-element shapes so names and nesting are pinned.
    Every ``name`` value is preserved verbatim: a renamed or reparented
    phase is schema drift, not noise.
    """
    if isinstance(payload, dict):
        shaped: Dict[str, object] = {}
        for key in sorted(payload):
            value = payload[key]
            if key in ("counters", "attrs") and isinstance(value, dict):
                shaped[key] = sorted(value)
            elif key == "name":
                shaped[key] = value
            else:
                shaped[key] = trace_shape(value)
        return shaped
    if isinstance(payload, list):
        return [trace_shape(item) for item in payload]
    return type(payload).__name__
