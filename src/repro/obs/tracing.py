"""Span-based tracing: a wall-clock phase tree with counter deltas.

A :class:`Span` is one timed phase of a pipeline run — ``load``,
``reduce``, ``mccore``, ``compile``, ``enumerate``, ``merge`` — opened
and closed through :meth:`Tracer.span`'s context-manager API. Spans
nest: entering a span while another is open makes it a child, so a full
MSCE run produces a tree mirroring the call structure (reduction inside
the run, MCCore inside the reduction, and so on).

Besides wall time (read from an injectable :class:`~repro.obs.clock`
clock, so tests pin durations exactly), every span records the **delta
of every counter** in the tracer's bound registry between entry and
exit. A phase's cost is therefore visible in both dimensions at once:
seconds spent, and how many recursions / prunes / retries happened
inside it — which is exactly the data the paper's pruning ablations
(and those of the balanced-clique work of Chen et al.) tabulate.

The disabled path is :class:`NullTracer`: ``span()`` hands back one
shared re-entrant no-op context manager, so tracing call sites cost a
method call and nothing else when observability is off.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.clock import MONOTONIC
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

#: Root spans kept per tracer; later roots are counted but not stored
#: (bounds memory when a long-lived process traces thousands of runs).
MAX_ROOT_SPANS = 512


class Span:
    """One timed phase: name, duration, attributes, counter deltas, children."""

    __slots__ = ("name", "attrs", "started", "ended", "children", "counters", "_before")

    def __init__(self, name: str, attrs: Dict[str, object], started: float):
        self.name = name
        #: Caller-supplied labels (reduction method, dataset, ...).
        self.attrs = attrs
        self.started = started
        self.ended: Optional[float] = None
        self.children: List["Span"] = []
        #: Registry counter deltas over the span's lifetime (non-zero only).
        self.counters: Dict[str, int] = {}
        self._before: Dict[str, int] = {}

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        return 0.0 if self.ended is None else self.ended - self.started

    def to_dict(self) -> Dict[str, object]:
        """Nested plain-dict form (the JSON trace exporter's unit)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        state = f"{self.seconds:.6f}s" if self.ended is not None else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _SpanContext:
    """Context manager closing one span on exit (exception or not)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._span)


class Tracer:
    """Builds the span tree for one process, one phase at a time.

    Parameters
    ----------
    registry:
        The metrics registry whose counters are snapshotted at span
        entry and diffed at exit. Defaults to the shared null registry
        (deltas then stay empty).
    clock:
        Injectable time source (see :mod:`repro.obs.clock`).
    max_roots:
        Completed root spans retained; further roots are dropped and
        counted in :attr:`dropped_roots` so a long-lived service cannot
        grow without bound.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry = NULL_REGISTRY,
        clock=MONOTONIC,
        max_roots: int = MAX_ROOT_SPANS,
    ):
        self.registry = registry
        self.clock = clock
        self.max_roots = max_roots
        #: Completed + currently-open top-level spans, oldest first.
        self.roots: List[Span] = []
        #: Root spans discarded after :attr:`max_roots` was reached.
        self.dropped_roots = 0
        self._stack: List[Span] = []

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a span named *name*; use as ``with tracer.span("reduce"):``.

        The span becomes a child of the currently-open span, or a new
        root. Counter deltas cover the tracer's bound registry.
        """
        span = Span(name, attrs, self.clock.now())
        span._before = {
            key: counter.value for key, counter in self.registry.counters.items()
        }
        if self._stack:
            self._stack[-1].children.append(span)
        elif len(self.roots) < self.max_roots:
            self.roots.append(span)
        else:
            self.dropped_roots += 1
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.ended = self.clock.now()
        before = span._before
        span._before = {}
        for key, counter in self.registry.counters.items():
            delta = counter.value - before.get(key, 0)
            if delta:
                span.counters[key] = delta
        # Close any children left open by an exception, innermost first.
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.ended is None:
                dangling.ended = span.ended
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def to_dict(self) -> Dict[str, object]:
        """The whole trace as a plain dict (see :mod:`repro.obs.export`)."""
        return {
            "spans": [span.to_dict() for span in self.roots],
            "dropped_roots": self.dropped_roots,
        }

    def clear(self) -> None:
        """Drop every recorded span (used between test runs)."""
        self.roots.clear()
        self._stack.clear()
        self.dropped_roots = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(roots={len(self.roots)}, open={len(self._stack)})"


class _NullSpanContext:
    """Shared re-entrant no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class NullTracer(Tracer):
    """The disabled path: ``span()`` returns one shared no-op context."""

    enabled = False

    def __init__(self):
        super().__init__(NULL_REGISTRY)

    def span(self, name: str, **attrs) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_SPAN


#: Process-wide disabled tracer (the default observer's tracer).
NULL_TRACER = NullTracer()
