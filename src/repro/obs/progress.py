"""Throttled progress reporting with ETA from frames outstanding.

The parallel enumerator's parent loop knows, at every message, how many
frame tasks have completed and how many are outstanding (pending seeds
plus frames re-split by work stealing). :class:`ProgressReporter` turns
that stream into a human-rate callback: invocations are throttled to
``min_interval`` seconds of the injected clock, the completion rate is
the run-long average, and the ETA is simply ``outstanding / rate`` —
honest about the caveat that outstanding frames can still *grow* as
subtrees are re-split, which is why the raw numbers ride along.

With a :class:`~repro.obs.clock.FakeClock` every emitted
:class:`ProgressEvent` — including the ETA — is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.clock import MONOTONIC

#: Default minimum seconds between two progress callbacks.
DEFAULT_MIN_INTERVAL = 0.5


@dataclass(frozen=True)
class ProgressEvent:
    """One progress sample handed to the callback."""

    #: Frame tasks completed so far.
    completed: int
    #: Frame tasks still queued or in flight (may grow via re-splits).
    outstanding: int
    #: Seconds since the reporter's first update.
    elapsed_seconds: float
    #: Completed tasks per second (run-long average; 0.0 until work finishes).
    rate: float
    #: Estimated seconds until the outstanding work drains, or ``None``
    #: while no completion rate is established yet.
    eta_seconds: Optional[float]


class ProgressReporter:
    """Throttle ``(completed, outstanding)`` samples into callback events.

    Parameters
    ----------
    callback:
        Called with a :class:`ProgressEvent` at most once per
        *min_interval* (plus once on :meth:`finish`).
    clock:
        Injectable time source (see :mod:`repro.obs.clock`).
    min_interval:
        Minimum seconds between two callbacks; ``0`` disables throttling.
    """

    def __init__(
        self,
        callback: Callable[[ProgressEvent], None],
        clock=MONOTONIC,
        min_interval: float = DEFAULT_MIN_INTERVAL,
    ):
        self.callback = callback
        self.clock = clock
        self.min_interval = min_interval
        self._started: Optional[float] = None
        self._last_emit: Optional[float] = None
        #: Events actually delivered to the callback.
        self.emitted = 0

    def _event(self, completed: int, outstanding: int, now: float) -> ProgressEvent:
        elapsed = now - self._started if self._started is not None else 0.0
        rate = completed / elapsed if elapsed > 0 and completed > 0 else 0.0
        eta = outstanding / rate if rate > 0 else None
        return ProgressEvent(
            completed=completed,
            outstanding=outstanding,
            elapsed_seconds=elapsed,
            rate=rate,
            eta_seconds=eta,
        )

    def update(self, completed: int, outstanding: int, force: bool = False) -> bool:
        """Offer a sample; returns ``True`` when the callback fired.

        The first update starts the elapsed-time clock and always
        fires; later updates fire when *min_interval* has passed since
        the last emission (or *force* is set).
        """
        now = self.clock.now()
        if self._started is None:
            self._started = now
        elif not force and self._last_emit is not None and (
            now - self._last_emit < self.min_interval
        ):
            return False
        self._last_emit = now
        self.emitted += 1
        self.callback(self._event(completed, outstanding, now))
        return True

    def finish(self, completed: int, outstanding: int = 0) -> None:
        """Force a final sample (the 100% line a throttle would swallow)."""
        self.update(completed, outstanding, force=True)
