"""Fault-injection harness for the parallel enumeration stack.

The resilient scheduler (:mod:`repro.core.scheduler`) is only worth
trusting if its failure paths are exercised deterministically. This
module provides the injection points the execution layer consults at
its seams:

* **worker death** — :func:`worker_tick` returns a per-frame callback
  that hard-kills the worker process (``os._exit``) once it has
  processed a chosen number of frames. Only first-incarnation workers
  (``epoch == 0``) are killed, so a respawned worker never re-dies and
  tests terminate. The queue feeder is flushed before exiting so the
  death is abrupt for the scheduler (no ``done`` message) but does not
  leave a torn message in the pipe.
* **poisoned tasks** — :func:`check_task` raises :class:`InjectedFault`
  for chosen task ids on *every* attempt, driving the retry budget to
  exhaustion and the frame into quarantine.
* **message delay** — :func:`message_delay` sleeps before each worker
  result message, widening race windows and making deadline tests
  deterministic.
* **shared-memory starvation** — :func:`check_shm_create` makes
  :meth:`~repro.fastpath.shared.SharedCompiledGraph.create` fail as if
  ``/dev/shm`` were full.
* **spawn failure** — :func:`check_worker_spawn` makes every worker
  process launch fail, collapsing the pool before it starts.
* **parent interrupt** — :func:`parent_message_tick` raises
  ``KeyboardInterrupt`` in the scheduler's parent loop after a chosen
  number of handled messages, simulating Ctrl-C mid-enumeration.

Plans are installed process-globally (:func:`install` / :func:`clear`,
or the :func:`injected` context manager). The scheduler's worker
processes are forked *after* the parent seeds its state, so an
installed plan is inherited by every worker automatically — no
environment variables or pickled configuration needed. With no plan
installed every hook short-circuits on one ``None`` comparison, so the
harness costs nothing in production.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: injected
    faults simulate arbitrary runtime breakage (a segfaulting kernel, a
    full ``/dev/shm``), so the production code must handle them through
    the same generic paths it uses for real failures.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject into one run.

    Attributes
    ----------
    kill_at_frame:
        ``{worker slot: frame count}`` — hard-kill the slot's first
        incarnation once it has processed that many search frames.
    poison_tasks:
        Task ids whose processing always raises :class:`InjectedFault`
        (every attempt, every worker) — exercises retry + quarantine.
    message_delay:
        Seconds each worker sleeps before sending a result message.
    fail_shm_create:
        Make shared-memory segment creation fail.
    fail_worker_spawn:
        Make every worker process launch fail.
    interrupt_parent_after:
        Raise ``KeyboardInterrupt`` in the scheduler's parent loop after
        this many messages have been handled (``None`` = never).
    """

    kill_at_frame: Dict[int, int] = field(default_factory=dict)
    poison_tasks: FrozenSet[int] = frozenset()
    message_delay: float = 0.0
    fail_shm_create: bool = False
    fail_worker_spawn: bool = False
    interrupt_parent_after: Optional[int] = None


_PLAN: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Install *plan* process-wide (inherited by forked workers)."""
    global _PLAN
    _PLAN = plan


def clear() -> None:
    """Remove any installed plan (every hook becomes a no-op again)."""
    global _PLAN
    _PLAN = None


def active() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    return _PLAN


@contextmanager
def injected(plan: FaultPlan):
    """Context manager: install *plan*, then always clear it."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


# ---------------------------------------------------------------------------
# Hooks consulted by the production code
# ---------------------------------------------------------------------------
def check_shm_create() -> None:
    """Raise :class:`InjectedFault` when shm starvation is planned."""
    if _PLAN is not None and _PLAN.fail_shm_create:
        raise InjectedFault("injected fault: shared-memory allocation refused")


def check_worker_spawn(slot: int, epoch: int) -> None:
    """Raise :class:`InjectedFault` when worker spawn failure is planned."""
    if _PLAN is not None and _PLAN.fail_worker_spawn:
        raise InjectedFault(
            f"injected fault: spawn of worker slot {slot} (epoch {epoch}) refused"
        )


def check_task(task_id: int) -> None:
    """Raise :class:`InjectedFault` for poisoned task ids."""
    if _PLAN is not None and task_id in _PLAN.poison_tasks:
        raise InjectedFault(f"injected fault: task {task_id} is poisoned")


def worker_tick(slot: int, epoch: int, result_queue) -> Optional[Callable[[], None]]:
    """Per-frame kill callback for a worker, or ``None`` when unplanned.

    The returned callable ``os._exit(1)``s the process once the slot's
    frame budget is reached — but only for the first incarnation
    (``epoch == 0``), so the respawned worker finishes the work. The
    result queue's feeder thread is flushed first: messages already sent
    (task spawns) reach the parent, while the in-progress task's
    ``done`` never will — exactly the abrupt-death scenario the
    scheduler's retry accounting must absorb. Flushing also releases the
    queue's shared write lock, which a raw ``os._exit`` could leave
    held, deadlocking sibling workers.
    """
    if _PLAN is None or epoch != 0:
        return None
    limit = _PLAN.kill_at_frame.get(slot)
    if limit is None:
        return None
    remaining = [limit]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] <= 0:
            try:
                result_queue.close()
                result_queue.join_thread()
            finally:
                os._exit(1)

    return tick


def message_delay() -> None:
    """Sleep before a worker result message when a delay is planned."""
    if _PLAN is not None and _PLAN.message_delay > 0.0:
        time.sleep(_PLAN.message_delay)


def parent_message_tick(messages_handled: int) -> None:
    """Raise ``KeyboardInterrupt`` at the planned parent message count."""
    if (
        _PLAN is not None
        and _PLAN.interrupt_parent_after is not None
        and messages_handled >= _PLAN.interrupt_parent_after
    ):
        raise KeyboardInterrupt(
            f"injected fault: parent interrupted after {messages_handled} messages"
        )
