"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is a fault-injection harness for the
parallel execution layer: it lets tests kill worker processes at chosen
frame counts, poison individual tasks, delay queue messages, starve
shared memory and interrupt the scheduler's parent loop — all through
hooks the production code consults at its failure-prone seams. With no
plan installed every hook is a no-op costing one ``None`` comparison.

:mod:`repro.testing.chaos` is the companion harness for the network
serving layer: a background-thread :class:`~repro.testing.chaos.ServerHarness`
running a real :class:`~repro.net.server.CliqueServer`, a raw-socket
HTTP client, a slow-loris generator, an abandon-the-request client, and
closed/open-loop load drivers producing
:class:`~repro.testing.chaos.LoadReport` summaries.
"""

from repro.testing.chaos import (
    HttpReply,
    LoadReport,
    ServerHarness,
    closed_loop,
    half_request,
    http_request,
    open_loop,
    slow_loris,
)
from repro.testing.faults import FaultPlan, InjectedFault, clear, injected, install

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "install",
    "clear",
    "injected",
    "HttpReply",
    "LoadReport",
    "ServerHarness",
    "closed_loop",
    "half_request",
    "http_request",
    "open_loop",
    "slow_loris",
]
