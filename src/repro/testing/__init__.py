"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is a fault-injection harness for the
parallel execution layer: it lets tests kill worker processes at chosen
frame counts, poison individual tasks, delay queue messages, starve
shared memory and interrupt the scheduler's parent loop — all through
hooks the production code consults at its failure-prone seams. With no
plan installed every hook is a no-op costing one ``None`` comparison.
"""

from repro.testing.faults import FaultPlan, InjectedFault, clear, injected, install

__all__ = ["FaultPlan", "InjectedFault", "install", "clear", "injected"]
