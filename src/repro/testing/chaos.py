"""Chaos / load harness for the network serving layer (:mod:`repro.net`).

The server's robustness claims — shed don't melt, deadlines hold,
coalescing survives disconnects, one poisoned request never takes the
process down — are only claims until something hostile exercises them.
This module is that something, shared by ``tests/test_net.py`` and the
``benchmarks/test_serve_http.py`` load benchmark:

* :class:`ServerHarness` runs a real :class:`~repro.net.server.CliqueServer`
  on its own event loop in a daemon thread (with an enabled observer so
  ``/metrics`` has data), binds an ephemeral port, and exposes plain
  synchronous helpers — tests stay ordinary blocking code;
* :func:`http_request` is a minimal socket HTTP client (stdlib only)
  returning status, headers and parsed JSON;
* :func:`slow_loris` dribbles a partial request head to prove the
  read-timeout defence disconnects stallers;
* :func:`half_request` opens a request and abandons it mid-flight — the
  client-disconnect scenario the coalescing cancellation test needs;
* :func:`closed_loop` / :func:`open_loop` are the two canonical load
  shapes: N clients back-to-back (throughput under saturation) and a
  fixed arrival schedule (overload / shedding behaviour), both
  returning a :class:`LoadReport` of status counts and latencies.

Everything here is test scaffolding: deliberately synchronous, thread
-per-client, and free of dependencies beyond the standard library.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "HttpReply",
    "LoadReport",
    "ServerHarness",
    "closed_loop",
    "half_request",
    "http_request",
    "open_loop",
    "slow_loris",
]


class HttpReply:
    """One parsed HTTP reply: status, headers, body (+ JSON helper)."""

    __slots__ = ("status", "headers", "body", "elapsed")

    def __init__(self, status: int, headers: Dict[str, str], body: bytes, elapsed: float):
        self.status = status
        self.headers = headers
        self.body = body
        self.elapsed = elapsed

    def json(self) -> object:
        return json.loads(self.body.decode("utf-8"))

    def __repr__(self) -> str:
        return f"HttpReply(status={self.status}, bytes={len(self.body)})"


def _read_reply(sock: socket.socket, started: float) -> HttpReply:
    handle = sock.makefile("rb")
    try:
        status_line = handle.readline().decode("latin-1")
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = handle.readline().decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = handle.read(length) if length else b""
        return HttpReply(status, headers, body, time.perf_counter() - started)
    finally:
        handle.close()


def http_request(
    host: str,
    port: int,
    method: str = "GET",
    path: str = "/healthz",
    body: Optional[object] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 30.0,
) -> HttpReply:
    """One blocking HTTP request over a fresh connection.

    ``body`` may be bytes or any JSON-serialisable object. Raises
    ``socket.timeout`` / ``ConnectionError`` on transport failure — the
    caller decides whether that is a test failure or the point.
    """
    payload = b""
    if body is not None:
        payload = body if isinstance(body, bytes) else json.dumps(body).encode("utf-8")
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}:{port}",
        "Connection: close",
        f"Content-Length: {len(payload)}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    blob = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload
    started = time.perf_counter()
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(blob)
        return _read_reply(sock, started)


def slow_loris(
    host: str,
    port: int,
    drip: bytes = b"GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow:",
    interval: float = 0.2,
    max_seconds: float = 30.0,
) -> float:
    """Dribble a never-finishing request head; returns seconds until the
    server hung up (raises ``TimeoutError`` if it never did)."""
    started = time.perf_counter()
    with socket.create_connection((host, port), timeout=max_seconds) as sock:
        sock.settimeout(max_seconds)
        sock.sendall(drip)
        while time.perf_counter() - started < max_seconds:
            try:
                sock.sendall(b"x")  # one byte of a header that never ends
            except (BrokenPipeError, ConnectionError, OSError):
                return time.perf_counter() - started
            try:
                if sock.recv(4096) == b"":
                    return time.perf_counter() - started
                # Server answered (408) — wait for the close.
                sock.settimeout(2.0)
                while sock.recv(4096):
                    pass
                return time.perf_counter() - started
            except socket.timeout:
                pass
            time.sleep(interval)
    raise TimeoutError("server never disconnected the slow-loris client")


def half_request(
    host: str,
    port: int,
    path: str,
    linger: float = 0.05,
    headers: Optional[Dict[str, str]] = None,
) -> None:
    """Send a complete GET, then slam the connection shut after *linger*.

    Models a client that issued a (possibly coalesced) query and
    disconnected before the answer was ready.
    """
    lines = [f"GET {path} HTTP/1.1", f"Host: {host}:{port}", "Content-Length: 0"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    blob = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    sock = socket.create_connection((host, port), timeout=10.0)
    try:
        sock.sendall(blob)
        time.sleep(linger)
    finally:
        # RST rather than FIN where supported: the abrupt version.
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, b"\x01\x00\x00\x00\x00\x00\x00\x00")
        except OSError:
            pass
        sock.close()


class ServerHarness:
    """A live :class:`~repro.net.server.CliqueServer` on a background loop.

    Usage::

        harness = ServerHarness({"default": graph}, config=ServerConfig(port=0))
        harness.start()
        reply = harness.get("/v1/graphs/default/cliques?alpha=3&k=1")
        ...
        harness.stop()

    The harness installs a fresh enabled observer on the loop thread's
    ambient runtime before serving (unless ``observe=False``), so the
    ``/metrics`` endpoint and journal events behave as in production.
    Registry/server/config objects are exposed for white-box assertions
    — mutate them only before :meth:`start` or via the loop.
    """

    def __init__(
        self,
        graphs: Dict[str, object],
        config: Optional[object] = None,
        registry: Optional[object] = None,
        observe: bool = True,
        journal_path: Optional[str] = None,
        **registry_kwargs,
    ):
        from repro.net.server import CliqueServer, ServerConfig
        from repro.net.tenants import TenantRegistry

        self.config = config or ServerConfig(port=0)
        self.registry = registry or TenantRegistry(**registry_kwargs)
        for name, graph in graphs.items():
            self.registry.create(name, graph)
        self.server = CliqueServer(self.registry, self.config)
        self.observe = observe
        self.journal_path = journal_path
        self.observer = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------
    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Start loop + server on a daemon thread; returns (host, port)."""
        self._thread = threading.Thread(
            target=self._run, name="repro-net-harness", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self.host, self.port

    def _run(self) -> None:
        import asyncio

        from repro.obs import runtime as obs

        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        previous = None
        if self.observe:
            self.observer = obs.Observer.fresh(journal_path=self.journal_path)
            previous = obs.install(self.observer)
        try:
            try:
                self.host, self.port = loop.run_until_complete(self.server.start())
            except BaseException as exc:  # noqa: BLE001 - surfaced to start()
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            loop.run_until_complete(self._serve_until_stopped())
        finally:
            try:
                loop.run_until_complete(self.server.stop())
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
            if self.observe:
                obs.install(previous)
                self.observer.journal.close()
            loop.close()

    async def _serve_until_stopped(self) -> None:
        import asyncio

        serve = asyncio.ensure_future(self.server.serve_forever())
        while not self._stopped.is_set():
            await asyncio.sleep(0.02)
        serve.cancel()
        try:
            await serve
        except asyncio.CancelledError:
            pass

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join the loop thread."""
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise TimeoutError("server thread did not stop in time")

    def __enter__(self) -> "ServerHarness":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- convenience clients -------------------------------------------
    def request(self, method: str, path: str, **kwargs) -> HttpReply:
        return http_request(self.host, self.port, method, path, **kwargs)

    def get(self, path: str, **kwargs) -> HttpReply:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, body: object, **kwargs) -> HttpReply:
        return self.request("POST", path, body=body, **kwargs)

    def metrics(self) -> str:
        return self.get("/metrics").body.decode("utf-8")


class LoadReport:
    """Outcome of one load run: status counts, latencies, wall time."""

    def __init__(self):
        self.statuses: Dict[int, int] = {}
        self.latencies: List[float] = []
        self.transport_errors = 0
        self.wall_seconds = 0.0
        self._lock = threading.Lock()

    def record(self, reply: Optional[HttpReply]) -> None:
        with self._lock:
            if reply is None:
                self.transport_errors += 1
                return
            self.statuses[reply.status] = self.statuses.get(reply.status, 0) + 1
            self.latencies.append(reply.elapsed)

    @property
    def total(self) -> int:
        return sum(self.statuses.values()) + self.transport_errors

    def count(self, status: int) -> int:
        return self.statuses.get(status, 0)

    @property
    def ok(self) -> int:
        return sum(count for status, count in self.statuses.items() if status < 300)

    @property
    def shed(self) -> int:
        return self.count(503)

    def goodput(self) -> float:
        """Successful responses per second of wall time."""
        return self.ok / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency_quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def as_dict(self) -> Dict[str, object]:
        return {
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "ok": self.ok,
            "shed": self.shed,
            "transport_errors": self.transport_errors,
            "total": self.total,
            "wall_seconds": self.wall_seconds,
            "goodput_rps": self.goodput(),
            "p50_seconds": self.latency_quantile(0.5),
            "p95_seconds": self.latency_quantile(0.95),
        }


def closed_loop(
    request_fn: Callable[[int, int], Optional[HttpReply]],
    clients: int,
    requests_per_client: int,
) -> LoadReport:
    """N clients, each issuing its requests back-to-back (closed loop).

    ``request_fn(client, index)`` performs one request and returns the
    reply (or ``None`` after a transport error it already handled).
    All clients start on a barrier so bursts really are concurrent.
    """
    report = LoadReport()
    barrier = threading.Barrier(clients + 1)

    def client_body(client: int) -> None:
        barrier.wait()
        for index in range(requests_per_client):
            try:
                report.record(request_fn(client, index))
            except (OSError, ConnectionError, socket.timeout):
                report.record(None)

    threads = _spawn_indexed(client_body, clients)
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    return report


def open_loop(
    request_fn: Callable[[int], Optional[HttpReply]],
    arrivals: int,
    interval: float,
) -> LoadReport:
    """Fixed arrival schedule: one request every *interval* seconds,
    regardless of completions (open loop — the overload shape)."""
    report = LoadReport()
    threads: List[threading.Thread] = []
    started = time.perf_counter()

    def one(index: int) -> None:
        try:
            report.record(request_fn(index))
        except (OSError, ConnectionError, socket.timeout):
            report.record(None)

    for index in range(arrivals):
        thread = threading.Thread(target=one, args=(index,), daemon=True)
        thread.start()
        threads.append(thread)
        time.sleep(interval)
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    return report


def _spawn_indexed(
    body: Callable[[int], None], count: int
) -> List[threading.Thread]:
    threads = [
        threading.Thread(target=body, args=(index,), daemon=True)
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads
