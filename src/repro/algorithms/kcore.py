"""k-core computations, including the paper's ICore (Algorithm 1).

Three entry points matter to the signed clique pipeline:

* :func:`core_numbers` — classic O(m) peeling producing the core number
  of every node (used for Table I's ``k_max`` and by the degeneracy
  ordering).
* :func:`k_core` — the node set of the maximal k-core.
* :func:`icore` — Algorithm 1 of the paper: compute the maximal tau-core
  of a (sub)graph **subject to a set of fixed nodes** ``I`` that must
  survive. The moment a fixed node would be peeled the computation
  aborts, which is exactly the early-failure behaviour MSCE's
  ceil(alpha*k)-core pruning rule relies on.

All functions take an optional ``within`` node set so callers can core a
candidate subspace without materialising an induced subgraph, and a
``sign`` selector (``"all"`` or ``"positive"``) so the same code serves
the sign-blind graph and the positive-edge graph ``G+``.

Fastpath dispatch: :func:`icore` and :func:`core_numbers` (and through
them :func:`k_core`, :func:`positive_core`, :func:`core_decomposition`,
...) also accept a :class:`repro.fastpath.CompiledGraph` and then run
the flat-array kernels of :mod:`repro.fastpath.kernels` instead of the
set-based peeling below, producing identical results; pass
``compile=False`` to force the pure path for ablations.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.exceptions import ParameterError
from repro.graphs.signed_graph import Node, SignedGraph

_EMPTY: FrozenSet[Node] = frozenset()


def _neighbor_fn(graph: SignedGraph, sign: str):
    """Return the adjacency accessor for the requested edge-sign class.

    The ``"all"`` accessor returns a live keys view (copy-free); the
    sign-restricted accessors return the graph's live internal sets. All
    support set operations and membership tests; none should be mutated.
    """
    if sign == "all":
        return graph.neighbor_keys
    if sign == "positive":
        return graph.positive_neighbors
    if sign == "negative":
        return graph.negative_neighbors
    raise ParameterError(f"unknown sign selector {sign!r}; expected 'all'/'positive'/'negative'")


def icore(
    graph: SignedGraph,
    fixed: Iterable[Node] = (),
    tau: int = 0,
    within: Optional[Set[Node]] = None,
    sign: str = "all",
    compile: bool = True,
) -> Tuple[bool, Set[Node]]:
    """Algorithm 1 (ICore): the maximal tau-core that keeps all *fixed* nodes.

    Parameters
    ----------
    graph:
        The host signed graph.
    fixed:
        Nodes that must be contained in the returned core (the paper's
        ``I``). If peeling would remove one, the function returns
        ``(False, set())`` immediately.
    tau:
        Minimum within-core degree.
    within:
        Restrict the computation to the subgraph induced by this node
        set (the paper calls ICore on induced subgraphs ``H``). Defaults
        to the whole graph.
    sign:
        ``"all"`` uses every edge; ``"positive"`` cores the positive-edge
        graph ``G+`` (the common case in the paper).

    Returns
    -------
    (flag, nodes):
        ``flag`` is ``False`` when no tau-core containing all fixed
        nodes exists (including the case of an empty result, matching
        line 14 of Algorithm 1); otherwise ``True`` with the core's node
        set.
    """
    if tau < 0:
        raise ParameterError(f"tau must be non-negative, got {tau}")
    from repro.fastpath.compiled import CompiledGraph

    if isinstance(graph, CompiledGraph):
        if not compile:
            graph = graph.source
        else:
            from repro.fastpath.kernels import icore_fast

            index = graph.index
            fixed_list = [node for node in fixed]
            if any(node not in index for node in fixed_list):
                return False, set()
            fixed_mask = graph.mask_from_nodes(fixed_list)
            within_mask = None if within is None else graph.mask_from_nodes(within)
            flag, mask = icore_fast(graph, fixed_mask, tau, within_mask, sign)
            return flag, graph.nodes_from_mask(mask)
    neighbors_of = _neighbor_fn(graph, sign)
    if within is None:
        members: Set[Node] = graph.node_set()
    else:
        members = {node for node in within if graph.has_node(node)}
    fixed_set = set(fixed)
    if not fixed_set <= members:
        return False, set()

    degrees: Dict[Node, int] = {node: len(neighbors_of(node) & members) for node in members}
    queue: deque = deque()
    queued: Set[Node] = set()
    for node, degree in degrees.items():
        if degree < tau:
            if node in fixed_set:
                return False, set()
            queue.append(node)
            queued.add(node)

    while queue:
        node = queue.popleft()
        members.discard(node)
        for neighbor in neighbors_of(node):
            if neighbor in members and neighbor not in queued:
                degrees[neighbor] -= 1
                if degrees[neighbor] < tau:
                    if neighbor in fixed_set:
                        return False, set()
                    queue.append(neighbor)
                    queued.add(neighbor)

    if not members:
        return False, set()
    return True, members


def icore_tracked(
    graph: SignedGraph,
    fixed,
    tau: int,
    members: Set[Node],
    degrees: Optional[Dict[Node, int]] = None,
    sign: str = "positive",
) -> Tuple[bool, Set[Node], Dict[Node, int]]:
    """Degree-tracked ICore for the enumeration inner loop.

    Semantically identical to :func:`icore`, but built for repeated calls
    over shrinking candidate sets: *members* is peeled **in place** (the
    caller must own it), and an optional pre-computed *degrees* map
    (within-*members* degree of every member, for the selected sign
    class) is reused and updated instead of recomputed. The returned map
    reflects the surviving core exactly, so callers can keep threading
    it through child search frames with cheap decremental updates —
    this is what makes MSCE's per-recursion core pruning O(changes)
    instead of O(|R|).

    On failure the partially-peeled *members*/*degrees* are returned as
    is; callers are expected to discard the frame.
    """
    neighbors_of = _neighbor_fn(graph, sign)
    if degrees is None:
        degrees = {node: len(neighbors_of(node) & members) for node in members}
    fixed_set = fixed if isinstance(fixed, (set, frozenset)) else set(fixed)
    queue: deque = deque()
    queued: Set[Node] = set()
    for node, degree in degrees.items():
        if degree < tau:
            if node in fixed_set:
                return False, members, degrees
            queue.append(node)
            queued.add(node)
    while queue:
        node = queue.popleft()
        members.discard(node)
        del degrees[node]
        for neighbor in neighbors_of(node):
            if neighbor in members and neighbor not in queued:
                d = degrees[neighbor] - 1
                degrees[neighbor] = d
                if d < tau:
                    if neighbor in fixed_set:
                        return False, members, degrees
                    queue.append(neighbor)
                    queued.add(neighbor)
    if not members:
        return False, members, degrees
    return True, members, degrees


def k_core(
    graph: SignedGraph,
    k: int,
    within: Optional[Set[Node]] = None,
    sign: str = "all",
) -> Set[Node]:
    """Return the node set of the maximal k-core (possibly empty).

    A thin wrapper over :func:`icore` with no fixed nodes; the empty
    result is returned as an empty set rather than a failure flag.
    """
    _flag, nodes = icore(graph, fixed=(), tau=k, within=within, sign=sign)
    return nodes


def positive_core(graph: SignedGraph, k: int, within: Optional[Set[Node]] = None) -> Set[Node]:
    """Return the maximal positive-edge k-core of the paper (Lemma 1).

    Equivalent to the k-core of ``G+`` restricted to *within*.
    """
    return k_core(graph, k, within=within, sign="positive")


def core_numbers(graph: SignedGraph, sign: str = "all", compile: bool = True) -> Dict[Node, int]:
    """Return the core number of every node via bucket peeling (O(m)).

    The core number of ``u`` is the largest ``k`` such that ``u`` belongs
    to a k-core. ``sign="positive"`` computes core numbers of ``G+``.
    """
    from repro.fastpath.compiled import CompiledGraph

    if isinstance(graph, CompiledGraph):
        if compile:
            from repro.fastpath.kernels import core_numbers_fast

            return core_numbers_fast(graph, sign)
        graph = graph.source
    neighbors_of = _neighbor_fn(graph, sign)
    degrees: Dict[Node, int] = {node: len(neighbors_of(node)) for node in graph.nodes()}
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    buckets: Dict[int, Set[Node]] = {d: set() for d in range(max_degree + 1)}
    for node, degree in degrees.items():
        buckets[degree].add(node)

    numbers: Dict[Node, int] = {}
    remaining = dict(degrees)
    current = 0
    processed: Set[Node] = set()
    for _ in range(len(degrees)):
        while current <= max_degree and not buckets.get(current):
            current += 1
        # A node's bucket index can drop below `current`; clamp instead
        # of rescanning, which keeps the loop linear.
        node = buckets[current].pop()
        numbers[node] = current
        processed.add(node)
        for neighbor in neighbors_of(node):
            if neighbor in processed:
                continue
            d = remaining[neighbor]
            if d > current:
                buckets[d].discard(neighbor)
                remaining[neighbor] = d - 1
                buckets[max(d - 1, current)].add(neighbor)
    return numbers


def max_core_number(graph: SignedGraph, sign: str = "all") -> int:
    """Return ``k_max``, the largest core number (0 for the empty graph)."""
    numbers = core_numbers(graph, sign=sign)
    return max(numbers.values(), default=0)


def core_decomposition(graph: SignedGraph, sign: str = "all") -> Dict[int, Set[Node]]:
    """Return ``{k: nodes whose core number is exactly k}``."""
    shells: Dict[int, Set[Node]] = {}
    for node, k in core_numbers(graph, sign=sign).items():
        shells.setdefault(k, set()).add(node)
    return shells


def has_k_core(graph: SignedGraph, k: int, within: Optional[Set[Node]] = None, sign: str = "all") -> bool:
    """Return ``True`` if a (non-empty) k-core exists in the scope.

    This is the primitive behind the paper's neighbour-core constraint
    test: "does the ego network contain a (ceil(alpha*k) - 1)-core?".
    """
    return bool(k_core(graph, k, within=within, sign=sign))
