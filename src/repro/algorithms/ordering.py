"""Node orderings: degeneracy (smallest-last) ordering and peel orders.

The degeneracy ordering drives the outer loop of the Bron–Kerbosch
variant in :mod:`repro.algorithms.cliques` (Eppstein–Löffler–Strash
style), and gives the arboricity-tracking bound the paper's complexity
analysis cites.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.algorithms.kcore import _neighbor_fn
from repro.graphs.signed_graph import Node, SignedGraph


def degeneracy_ordering(
    graph: SignedGraph,
    within: Optional[Set[Node]] = None,
    sign: str = "all",
) -> Tuple[List[Node], int]:
    """Return ``(order, degeneracy)`` by repeated minimum-degree removal.

    ``order`` lists nodes in the sequence they were peeled (smallest
    remaining degree first); ``degeneracy`` is the largest degree seen at
    removal time, which equals the maximum core number.
    """
    neighbors_of = _neighbor_fn(graph, sign)
    members: Set[Node] = (
        graph.node_set() if within is None else {node for node in within if graph.has_node(node)}
    )
    degrees: Dict[Node, int] = {node: len(neighbors_of(node) & members) for node in members}
    if not degrees:
        return [], 0
    max_degree = max(degrees.values())
    buckets: List[Set[Node]] = [set() for _ in range(max_degree + 1)]
    for node, degree in degrees.items():
        buckets[degree].add(node)

    order: List[Node] = []
    removed: Set[Node] = set()
    degeneracy = 0
    current = 0
    for _ in range(len(degrees)):
        while not buckets[current]:
            current += 1
        node = buckets[current].pop()
        degeneracy = max(degeneracy, current)
        order.append(node)
        removed.add(node)
        for neighbor in neighbors_of(node):
            if neighbor in members and neighbor not in removed:
                d = degrees[neighbor]
                buckets[d].discard(neighbor)
                degrees[neighbor] = d - 1
                buckets[d - 1].add(neighbor)
        current = max(current - 1, 0)
    return order, degeneracy


def peel_order_by_positive_degree(
    graph: SignedGraph, within: Optional[Set[Node]] = None
) -> List[Node]:
    """Return nodes sorted by ascending positive degree (ties by repr).

    This is the static variant of MSCE-G's greedy minimum-positive-degree
    branch selection; the dynamic selection inside BBE recomputes degrees
    per subspace, but the static order is a useful deterministic
    tie-break for tests and for the candidate iteration order.
    """
    members = graph.node_set() if within is None else set(within)
    return sorted(
        (node for node in members if graph.has_node(node)),
        key=lambda node: (len(graph.positive_neighbors(node) & members), repr(node)),
    )
