"""k-truss decomposition.

The paper's Section-III Remark contrasts the MCCore with the k-truss
model (Cohen 2005; Wang & Cheng, PVLDB 2012): a k-truss is the maximal
subgraph in which every edge participates in at least ``k - 2``
triangles. The MCCore differs in three ways the Remark spells out — it
mixes edge signs, its ego-triangle counts are *directed* (per-endpoint),
and its peeling must delete nodes as well as edges.

This module supplies the classic (sign-blind and positive-only) k-truss
so the comparison is executable: the ``truss_vs_mccore`` helper feeds
the reduction-comparison experiment, and the decomposition doubles as a
general substrate (trussness is a standard cohesion statistic).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.algorithms.kcore import _neighbor_fn
from repro.exceptions import ParameterError
from repro.graphs.signed_graph import Node, SignedGraph

_Edge = FrozenSet[Node]


def _support_map(
    graph: SignedGraph, members: Set[Node], neighbors_of
) -> Dict[_Edge, int]:
    """Triangle support of every edge of the selected class within *members*."""
    support: Dict[_Edge, int] = {}
    for u in members:
        adjacency_u = neighbors_of(u) & members
        for v in adjacency_u:
            edge = frozenset((u, v))
            if edge in support:
                continue
            support[edge] = len(adjacency_u & neighbors_of(v))
    return support


def k_truss(
    graph: SignedGraph,
    k: int,
    within: Optional[Set[Node]] = None,
    sign: str = "all",
) -> Set[Node]:
    """Return the node set of the maximal k-truss (possibly empty).

    Every edge of the returned subgraph closes at least ``k - 2``
    triangles inside it. ``k <= 2`` keeps every non-isolated node of the
    scope (the constraint is vacuous). ``sign="positive"`` computes the
    truss of the positive-edge graph.
    """
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    neighbors_of = _neighbor_fn(graph, sign)
    members: Set[Node] = (
        graph.node_set() if within is None else {node for node in within if graph.has_node(node)}
    )
    adjacency: Dict[Node, Set[Node]] = {
        node: set(neighbors_of(node)) & members for node in members
    }
    support = _support_map(graph, members, neighbors_of)
    needed = max(k - 2, 0)

    queue: deque = deque(edge for edge, value in support.items() if value < needed)
    removed: Set[_Edge] = set(queue)
    while queue:
        edge = queue.popleft()
        u, v = tuple(edge)
        adjacency[u].discard(v)
        adjacency[v].discard(u)
        for w in adjacency[u] & adjacency[v]:
            for other in (frozenset((u, w)), frozenset((v, w))):
                if other in removed:
                    continue
                support[other] -= 1
                if support[other] < needed:
                    removed.add(other)
                    queue.append(other)
    return {node for node, neighbors in adjacency.items() if neighbors}


def truss_numbers(graph: SignedGraph, sign: str = "all") -> Dict[Tuple[Node, Node], int]:
    """Return the trussness of every edge of the selected class.

    The trussness of edge ``e`` is the largest ``k`` such that ``e``
    belongs to a k-truss. Computed by iterative peeling, O(m^1.5)-ish;
    adequate for the experiment scale.
    """
    neighbors_of = _neighbor_fn(graph, sign)
    members = graph.node_set()
    adjacency: Dict[Node, Set[Node]] = {
        node: set(neighbors_of(node)) & members for node in members
    }
    support = _support_map(graph, members, neighbors_of)
    numbers: Dict[Tuple[Node, Node], int] = {}
    remaining = dict(support)
    while remaining:
        edge, value = min(remaining.items(), key=lambda item: item[1])
        k = value + 2
        # Peel every edge at this support level (standard truss
        # decomposition: trussness = support at removal time + 2).
        stack = [edge]
        while stack:
            current = stack.pop()
            if current not in remaining:
                continue
            current_value = remaining[current]
            if current_value > k - 2:
                continue
            del remaining[current]
            u, v = tuple(current)
            numbers[(u, v)] = k
            adjacency[u].discard(v)
            adjacency[v].discard(u)
            for w in adjacency[u] & adjacency[v]:
                for other in (frozenset((u, w)), frozenset((v, w))):
                    if other in remaining:
                        remaining[other] -= 1
                        if remaining[other] <= k - 2:
                            stack.append(other)
    return numbers


def max_trussness(graph: SignedGraph, sign: str = "all") -> int:
    """Return the largest edge trussness (0 for an edgeless scope)."""
    numbers = truss_numbers(graph, sign=sign)
    return max(numbers.values(), default=0)


def truss_vs_mccore(graph: SignedGraph, alpha: float, k: int) -> Dict[str, int]:
    """Compare positive k-truss pruning against the paper's reductions.

    For the (alpha, k)-clique problem, a clique of the minimum size
    ``ceil(alpha*k) + 1`` gives every *positive* edge at least
    ``ceil(alpha*k) - 1`` positive closing triangles **only if the
    clique were all-positive** — negative members break that bound, so
    the positive truss is *not* a sound reduction for the signed model.
    The comparison quantifies the paper's Remark: it reports survivor
    counts of the positive-core, the MCCore, and the (unsound) positive
    truss at the matching order, making the gap visible.
    """
    from repro.core.params import AlphaK
    from repro.core.reduction import positive_core_reduction, reduce_graph

    params = AlphaK(alpha, k)
    order = params.positive_threshold + 1
    return {
        "graph": graph.number_of_nodes(),
        "positive-core": len(positive_core_reduction(graph, params)),
        "mccore": len(reduce_graph(graph, params, method="mcnew")),
        "positive-truss": len(k_truss(graph, order, sign="positive")),
    }
