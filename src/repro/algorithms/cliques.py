"""Maximal clique enumeration (Bron–Kerbosch) on signed graphs.

Used in three roles:

* the **TClique baseline** (Section V-B) — maximal cliques of the
  positive-edge graph, negative edges ignored;
* the **reference enumerator** for maximal (alpha, k)-cliques in
  :mod:`repro.core.naive` — it walks sub-cliques of ordinary maximal
  cliques, exactly the "straightforward method" the paper discusses (and
  rejects for scale) in Section II;
* general clique statistics in the experiment harness.

The implementation is the classic Bron–Kerbosch recursion with Tomita
pivoting, with an optional degeneracy-ordered top level
(Eppstein–Löffler–Strash) that keeps the recursion shallow on sparse
graphs.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional, Set

from repro.algorithms.kcore import _neighbor_fn
from repro.algorithms.ordering import degeneracy_ordering
from repro.graphs.signed_graph import Node, SignedGraph


def _bron_kerbosch_pivot(
    neighbors_of,
    clique: Set[Node],
    candidates: Set[Node],
    excluded: Set[Node],
) -> Iterator[FrozenSet[Node]]:
    """Yield maximal cliques extending *clique* using candidates P and X."""
    if not candidates and not excluded:
        yield frozenset(clique)
        return
    # Tomita pivot: the vertex of P | X with the most neighbours in P
    # minimises the branching set P \ N(pivot).
    pivot = max(candidates | excluded, key=lambda node: len(neighbors_of(node) & candidates))
    for node in list(candidates - neighbors_of(pivot)):
        adjacency = neighbors_of(node)
        clique.add(node)
        yield from _bron_kerbosch_pivot(
            neighbors_of, clique, candidates & adjacency, excluded & adjacency
        )
        clique.discard(node)
        candidates.discard(node)
        excluded.add(node)


def maximal_cliques(
    graph: SignedGraph,
    within: Optional[Set[Node]] = None,
    sign: str = "all",
    use_degeneracy_order: bool = True,
) -> Iterator[FrozenSet[Node]]:
    """Yield every maximal clique of the selected edge class once.

    Parameters
    ----------
    graph:
        Host signed graph.
    within:
        Restrict enumeration to the induced subgraph on this node set.
    sign:
        ``"all"`` treats the graph sign-blind (clique constraint of the
        (alpha, k) model); ``"positive"`` enumerates cliques of ``G+``
        (the TClique baseline).
    use_degeneracy_order:
        When ``True``, the top level iterates nodes in degeneracy order,
        which bounds recursion width by the degeneracy; disable for very
        small graphs where ordering overhead dominates.

    Notes
    -----
    Isolated nodes form singleton maximal cliques and are yielded.
    """
    base_neighbors = _neighbor_fn(graph, sign)
    members: Set[Node] = (
        graph.node_set() if within is None else {node for node in within if graph.has_node(node)}
    )
    if not members:
        return

    if within is None and sign == "all":
        neighbors_of = graph.neighbor_keys
    else:
        cache = {}

        def neighbors_of(node: Node) -> Set[Node]:
            cached = cache.get(node)
            if cached is None:
                cached = base_neighbors(node) & members
                cache[node] = cached
            return cached

    if not use_degeneracy_order:
        yield from _bron_kerbosch_pivot(neighbors_of, set(), set(members), set())
        return

    order, _deg = degeneracy_ordering(graph, within=members, sign=sign)
    position = {node: index for index, node in enumerate(order)}
    for node in order:
        adjacency = neighbors_of(node)
        later = {v for v in adjacency if position[v] > position[node]}
        earlier = {v for v in adjacency if position[v] < position[node]}
        yield from _bron_kerbosch_pivot(neighbors_of, {node}, later, earlier)


def maximum_clique(
    graph: SignedGraph, within: Optional[Set[Node]] = None, sign: str = "all"
) -> FrozenSet[Node]:
    """Return one largest clique (empty frozenset for an empty scope)."""
    best: FrozenSet[Node] = frozenset()
    for clique in maximal_cliques(graph, within=within, sign=sign):
        if len(clique) > len(best):
            best = clique
    return best


def is_clique(
    graph: SignedGraph, nodes: Set[Node], sign: str = "all"
) -> bool:
    """Return ``True`` if *nodes* induces a clique in the selected edge class.

    The empty set and singletons are cliques by convention.
    """
    neighbors_of = _neighbor_fn(graph, sign)
    node_list = list(nodes)
    for node in node_list:
        if not graph.has_node(node):
            return False
    needed = len(node_list) - 1
    for node in node_list:
        if len(neighbors_of(node) & nodes) < needed:
            return False
    return True


def common_neighbors(
    graph: SignedGraph, nodes: Set[Node], within: Optional[Set[Node]] = None, sign: str = "all"
) -> Set[Node]:
    """Return nodes adjacent (in the selected class) to *every* node of *nodes*.

    This is the paper's ``CN_R`` used by the maximality test (Algorithm 4,
    line 22). Members of *nodes* are excluded from the result. For an
    empty *nodes* the full scope is returned.
    """
    neighbors_of = _neighbor_fn(graph, sign)
    if not nodes:
        scope = graph.node_set() if within is None else set(within)
        return scope
    # Intersect smallest neighbourhoods first: the running set shrinks
    # to its final size fastest, which dominates the cost on hubs.
    ordered = sorted(nodes, key=lambda node: len(neighbors_of(node)))
    result = set(neighbors_of(ordered[0]))
    for node in ordered[1:]:
        result &= neighbors_of(node)
        if not result:
            break
    result -= set(nodes)
    if within is not None:
        result &= within
    return result
