"""Unsigned graph-algorithm substrates.

Everything the paper's signed clique machinery stands on: k-core peeling
and the fixed-node ICore (Algorithm 1), triangle / ego-triangle counting
(Definition 5, Lemma 4), Bron–Kerbosch maximal clique enumeration, and
degeneracy orderings.
"""

from repro.algorithms.cliques import (
    common_neighbors,
    is_clique,
    maximal_cliques,
    maximum_clique,
)
from repro.algorithms.kcore import (
    core_decomposition,
    core_numbers,
    has_k_core,
    icore,
    k_core,
    max_core_number,
    positive_core,
)
from repro.algorithms.ordering import degeneracy_ordering, peel_order_by_positive_degree
from repro.algorithms.truss import k_truss, max_trussness, truss_numbers, truss_vs_mccore
from repro.algorithms.triangles import (
    all_ego_triangle_degrees,
    clustering_coefficient,
    ego_triangle_degree,
    iter_triangles,
    local_triangle_counts,
    triangle_count,
    triangles_per_edge,
)

__all__ = [
    "icore",
    "k_core",
    "positive_core",
    "core_numbers",
    "core_decomposition",
    "max_core_number",
    "has_k_core",
    "maximal_cliques",
    "maximum_clique",
    "is_clique",
    "common_neighbors",
    "degeneracy_ordering",
    "peel_order_by_positive_degree",
    "iter_triangles",
    "triangle_count",
    "triangles_per_edge",
    "local_triangle_counts",
    "clustering_coefficient",
    "ego_triangle_degree",
    "all_ego_triangle_degrees",
    "k_truss",
    "truss_numbers",
    "max_trussness",
    "truss_vs_mccore",
]
