"""Triangle and ego-triangle primitives (Definition 5 / Lemma 4).

MCNew (Algorithm 3) replaces MCBasic's repeated ego-network coring with
bookkeeping over *ego-triangle degrees*: for a directed positive edge
``(u, v)``, ``delta(u, v)`` is the number of ego triangles of ``u``
containing ``(u, v)`` — equivalently (Lemma 4), the degree of ``v``
inside ``u``'s ego network. This module provides those counts plus
general triangle enumeration used by statistics and tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from repro.graphs.signed_graph import Node, SignedGraph


def ego_triangle_degree(
    graph: SignedGraph,
    u: Node,
    v: Node,
    within: Optional[Set[Node]] = None,
) -> int:
    """Return ``delta(u, v)``: ego triangles of *u* containing ``(u, v)``.

    Per Definition 5, a triangle ``(u, v, w)`` is an *ego triangle of u*
    iff both ``(u, v)`` and ``(u, w)`` are positive edges; the third edge
    ``(v, w)`` may carry either sign. By Lemma 4 this equals the degree
    of ``v`` in ``u``'s ego network. Note ``delta(u, v)`` is generally
    different from ``delta(v, u)``.

    *within* restricts both the positive neighbourhood of ``u`` and the
    closing edges to an induced node set.
    """
    pos_u = graph.positive_neighbors(u)
    adj_v = graph.neighbors(v)
    if within is not None:
        if u not in within or v not in within:
            return 0
        return len(pos_u & adj_v & within)
    return len(pos_u & adj_v)


def all_ego_triangle_degrees(
    graph: SignedGraph, within: Optional[Set[Node]] = None, compile: bool = True
) -> Dict[Tuple[Node, Node], int]:
    """Return ``delta`` for every *directed* positive edge ``(u, v)``.

    This is the initialisation step of MCNew (lines 5-9 of Algorithm 3):
    each undirected positive edge contributes two directed entries.
    Accepts a :class:`repro.fastpath.CompiledGraph` for the bitmask
    kernel (``compile=False`` forces the pure path).
    """
    from repro.fastpath.compiled import CompiledGraph

    if isinstance(graph, CompiledGraph):
        if compile:
            from repro.fastpath.kernels import ego_triangle_degrees_fast

            return ego_triangle_degrees_fast(graph, within)
        graph = graph.source
    deltas: Dict[Tuple[Node, Node], int] = {}
    members = within if within is not None else graph.node_set()
    for u in members:
        pos_u = graph.positive_neighbors(u) & members
        for v in pos_u:
            deltas[(u, v)] = len(pos_u & graph.neighbors(v) & members)
    return deltas


def iter_triangles(graph: SignedGraph) -> Iterator[Tuple[Node, Node, Node]]:
    """Yield every (sign-blind) triangle of *graph* exactly once.

    Uses the standard ordered-neighbourhood method: fix an arbitrary
    total order on nodes, and emit ``(u, v, w)`` with ``u < v < w`` in
    that order.
    """
    rank = {node: index for index, node in enumerate(graph.nodes())}
    for u in graph.nodes():
        higher = {v for v in graph.neighbors(u) if rank[v] > rank[u]}
        for v in higher:
            for w in higher & graph.neighbors(v):
                if rank[w] > rank[v]:
                    yield (u, v, w)


def triangle_count(graph: SignedGraph, compile: bool = True) -> int:
    """Return the total number of (sign-blind) triangles.

    Accepts a :class:`repro.fastpath.CompiledGraph` for the
    degeneracy-orientation kernel (``compile=False`` forces the pure
    ordered-neighbourhood path).
    """
    from repro.fastpath.compiled import CompiledGraph

    if isinstance(graph, CompiledGraph):
        if compile:
            from repro.fastpath.kernels import triangle_count_fast

            return triangle_count_fast(graph)
        graph = graph.source
    return sum(1 for _ in iter_triangles(graph))


def triangles_per_edge(graph: SignedGraph) -> Dict[Tuple[Node, Node], int]:
    """Return the triangle support of every undirected edge.

    Keys are canonicalised so that each undirected edge appears once
    (the pair ordering follows first-seen iteration order). Used by the
    k-truss comparison utilities and by tests of Lemma 4.
    """
    support: Dict[Tuple[Node, Node], int] = {}
    index: Dict[frozenset, Tuple[Node, Node]] = {}
    for u, v, _sign in graph.edges():
        key = (u, v)
        index[frozenset((u, v))] = key
        support[key] = 0
    for u, v, w in iter_triangles(graph):
        for a, b in ((u, v), (v, w), (u, w)):
            support[index[frozenset((a, b))]] += 1
    return support


def local_triangle_counts(graph: SignedGraph) -> Dict[Node, int]:
    """Return the number of triangles through each node."""
    counts: Dict[Node, int] = {node: 0 for node in graph.nodes()}
    for u, v, w in iter_triangles(graph):
        counts[u] += 1
        counts[v] += 1
        counts[w] += 1
    return counts


def clustering_coefficient(graph: SignedGraph, node: Node) -> float:
    """Return the local (sign-blind) clustering coefficient of *node*."""
    neighbors = graph.neighbors(node)
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    links = 0
    for v in neighbors:
        links += len(graph.neighbors(v) & neighbors)
    links //= 2
    return 2.0 * links / (degree * (degree - 1))
