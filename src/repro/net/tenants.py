"""Named-graph (tenant) hosting for the network serving layer.

One server process hosts several independent signed graphs — one per
product surface, per customer, per dataset snapshot. Each tenant owns a
full :class:`~repro.serve.engine.SignedCliqueEngine`: its own resident
graph, compiled fastpath, ceiling-keyed reduction memo, and — the part
that matters for isolation — its own :class:`~repro.serve.lru.MemoryLRU`
budget and disk/artifact directory. A tenant that thrashes its cache
evicts its *own* entries; a tenant whose artifact directory rots
self-heals (or degrades) without touching its neighbours. Per-tenant
LRU traffic reaches Prometheus as ``serve_lru_*{tenant="..."}`` series
(see :mod:`repro.serve.lru`).

Mutations route through the engine's versioned-snapshot machinery: the
graph fingerprint (memoised behind ``SignedGraph._version``) changes on
every write, request-coalescing keys embed the fingerprint, and cache
entries are fingerprint-keyed. A flight's compute pins the engine lock
and re-reads the fingerprint inside it, so every response is labelled
with the exact version it was computed against; when a write slips in
between a request's keying and its compute, the response says so
(``version_changed``) instead of mislabelling the result.

Tenant names double as path components (cache directories) and label
values (Prometheus), so they are restricted to a conservative character
set at creation time.
"""

from __future__ import annotations

import re
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.graphs.signed_graph import SignedGraph
from repro.obs import runtime as obs
from repro.serve.engine import (
    DEFAULT_CACHE_MEM_BYTES,
    DEFAULT_CACHE_MEM_ENTRIES,
    SignedCliqueEngine,
)

__all__ = ["Tenant", "TenantError", "TenantRegistry", "UnknownTenant"]

#: Tenant names are path- and label-safe: 1-64 chars of [A-Za-z0-9_.-],
#: not starting with a dot or dash.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]{0,63}$")


class TenantError(ReproError):
    """Invalid tenant operation (bad name, duplicate, unknown)."""


class UnknownTenant(TenantError):
    """Lookup of a tenant that does not exist."""


class Tenant:
    """One hosted graph: a named engine plus its serving metadata."""

    __slots__ = ("name", "engine", "created_at", "requests", "errors")

    def __init__(self, name: str, engine: SignedCliqueEngine):
        self.name = name
        self.engine = engine
        self.created_at = time.time()
        #: Requests routed to this tenant (any outcome).
        self.requests = 0
        #: Requests that ended in a structured error for this tenant.
        self.errors = 0

    @property
    def fingerprint(self) -> str:
        """Current graph-version fingerprint (changes on every write).

        A lock-free read (the engine maintains a fingerprint mirror
        outside its search lock), so the server's event loop can key
        coalescing and answer listing endpoints while a long search
        holds the engine lock.
        """
        return self.engine.fingerprint

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary for the listing / stats endpoints.

        Safe on the event loop: no read here takes the engine lock.
        """
        graph = self.engine.graph
        return {
            "name": self.name,
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
            "fingerprint": self.fingerprint,
            "created_at": self.created_at,
            "requests": self.requests,
            "errors": self.errors,
        }


class TenantRegistry:
    """The server's mapping of tenant name -> engine.

    Parameters
    ----------
    cache_dir:
        Optional base directory; each tenant gets the subdirectory
        ``<cache_dir>/<name>`` as its private disk cache + compiled
        artifact store. ``None`` serves every tenant memory-only.
    cache_mem_entries / cache_mem_bytes:
        Per-tenant memory-tier budgets (every tenant gets its own
        :class:`~repro.serve.lru.MemoryLRU` with these bounds, unless
        overridden at :meth:`create` time).
    workers / backend / seed:
        Engine configuration shared by all tenants.
    """

    def __init__(
        self,
        cache_dir: Optional[object] = None,
        cache_mem_entries: int = DEFAULT_CACHE_MEM_ENTRIES,
        cache_mem_bytes: Optional[int] = DEFAULT_CACHE_MEM_BYTES,
        workers: int = 1,
        backend: Optional[str] = None,
        seed: int = 0,
    ):
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._cache_mem_entries = cache_mem_entries
        self._cache_mem_bytes = cache_mem_bytes
        self._workers = workers
        self._backend = backend
        self._seed = seed
        self._tenants: Dict[str, Tenant] = {}

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def names(self) -> List[str]:
        """Tenant names in creation order."""
        return list(self._tenants)

    def tenants(self) -> Iterable[Tenant]:
        return self._tenants.values()

    def get(self, name: str) -> Tenant:
        """The named tenant, or :class:`UnknownTenant`."""
        tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenant(f"unknown graph {name!r}")
        return tenant

    def create(
        self,
        name: str,
        graph: SignedGraph,
        cache_mem_entries: Optional[int] = None,
        cache_mem_bytes: Optional[object] = "inherit",
    ) -> Tenant:
        """Host *graph* under *name* with its own engine and budgets."""
        if not _NAME_PATTERN.match(name or ""):
            raise TenantError(
                f"invalid graph name {name!r}: use 1-64 characters of "
                "letters, digits, '_', '.', '-' (not starting with '.'/'-')"
            )
        if name in self._tenants:
            raise TenantError(f"graph {name!r} already exists")
        tenant_dir = None
        if self._cache_dir is not None:
            tenant_dir = self._cache_dir / name
            tenant_dir.mkdir(parents=True, exist_ok=True)
        engine = SignedCliqueEngine(
            graph,
            cache_dir=tenant_dir,
            cache_mem_entries=(
                cache_mem_entries
                if cache_mem_entries is not None
                else self._cache_mem_entries
            ),
            cache_mem_bytes=(
                self._cache_mem_bytes if cache_mem_bytes == "inherit" else cache_mem_bytes
            ),
            workers=self._workers,
            backend=self._backend,
            seed=self._seed,
            tenant=name,
        )
        tenant = Tenant(name, engine)
        self._tenants[name] = tenant
        obs.journal_event(
            "net_tenant_created",
            tenant=name,
            nodes=graph.number_of_nodes(),
            edges=graph.number_of_edges(),
        )
        return tenant

    def drop(self, name: str) -> Tenant:
        """Stop hosting *name* (its on-disk cache, if any, is kept)."""
        tenant = self.get(name)
        del self._tenants[name]
        obs.journal_event("net_tenant_dropped", tenant=name)
        return tenant

    def describe(self) -> List[Dict[str, object]]:
        """JSON-ready tenant summaries, creation order."""
        return [tenant.describe() for tenant in self._tenants.values()]
