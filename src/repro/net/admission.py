"""Admission control: shed early, shed cheap, never melt.

A clique search is seconds of CPU; a socket accept is microseconds. An
overloaded server that admits everything therefore dies the slow way —
queues grow, every request times out, memory climbs, and *no one* gets
an answer. The robust alternative is classic admission control: a
hard bound on concurrently admitted work, a bounded wait queue on top,
and a cheap structured rejection (HTTP 503 + ``Retry-After``) for
everything past the bound, issued *before* the request costs anything.

:class:`AdmissionController` implements that bound as plain counters on
the server's event loop (no locks needed — admission decisions happen
on loop callbacks; tickets are released via ``call_soon_threadsafe``
when the work ran on an executor thread):

* at most ``max_concurrency`` tickets are *running* (this also sizes
  the server's executor pool);
* at most ``max_queue_depth`` more are admitted-but-waiting;
* anything beyond is shed with reason ``"queue_full"``;
* when the process's peak RSS exceeds the optional soft
  ``memory_budget_bytes`` (see :func:`repro.limits.rss_bytes`), *new*
  work is shed with reason ``"memory"`` while admitted work finishes —
  the budget sheds load instead of tripping running searches.

``Retry-After`` is not a constant: the controller keeps an exponential
moving average of recent service times and suggests
``(standing work / concurrency) * EMA`` seconds, clamped to
``[1, 30]`` — an overloaded server tells its clients roughly when the
backlog will actually drain, which is what turns a retry storm into a
staggered trickle.

Only *leaders* take tickets: requests that coalesce onto an in-flight
computation (:mod:`repro.net.coalesce`) are always admitted, because
their marginal cost is one waiter slot, not a search. This pairing is
what keeps goodput flat on duplicate-heavy overload — the benchmark
``benchmarks/test_serve_http.py`` gates exactly that.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.limits import rss_bytes

__all__ = ["AdmissionController", "Shed", "Ticket"]

#: Clamp bounds for the suggested Retry-After (seconds).
RETRY_AFTER_MIN = 1.0
RETRY_AFTER_MAX = 30.0

#: Smoothing factor of the service-time EMA (higher = more reactive).
SERVICE_EMA_ALPHA = 0.3


class Shed(Exception):
    """Raised when admission is refused; carries the client guidance."""

    def __init__(self, reason: str, retry_after: float):
        super().__init__(f"admission refused: {reason}")
        self.reason = reason
        #: Suggested client back-off in whole seconds (>= 1).
        self.retry_after = retry_after


class Ticket:
    """One admitted unit of work; release exactly once when done."""

    __slots__ = ("_controller", "_started", "_released")

    def __init__(self, controller: "AdmissionController"):
        self._controller = controller
        self._started = controller._clock()
        self._released = False

    def release(self) -> None:
        """Return the ticket and feed the service-time EMA."""
        if self._released:
            return
        self._released = True
        self._controller._release(self._controller._clock() - self._started)

    def __enter__(self) -> "Ticket":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


class AdmissionController:
    """Bounded-admission gate with load-aware ``Retry-After`` estimates.

    Parameters
    ----------
    max_concurrency:
        Tickets allowed to run at once (size the executor to match).
    max_queue_depth:
        Additional tickets admitted beyond *max_concurrency*; the total
        standing bound is the sum of the two.
    memory_budget_bytes:
        Optional soft peak-RSS bound; above it, new admissions shed
        with reason ``"memory"`` (``None`` disables the check).
    initial_service_seconds:
        Seed of the service-time EMA before any work completed.
    """

    def __init__(
        self,
        max_concurrency: int = 4,
        max_queue_depth: int = 16,
        memory_budget_bytes: Optional[int] = None,
        initial_service_seconds: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_queue_depth < 0:
            raise ValueError(f"max_queue_depth must be >= 0, got {max_queue_depth}")
        self.max_concurrency = max_concurrency
        self.max_queue_depth = max_queue_depth
        self.memory_budget_bytes = memory_budget_bytes
        self._clock = clock
        self._standing = 0
        self._service_ema = max(1e-3, initial_service_seconds)
        #: Monotone counters (exported via the server's /metrics).
        self.admitted = 0
        self.completed = 0
        self.shed: Dict[str, int] = {"queue_full": 0, "memory": 0}

    @property
    def capacity(self) -> int:
        """Total standing bound (running + queued)."""
        return self.max_concurrency + self.max_queue_depth

    @property
    def standing(self) -> int:
        """Tickets currently admitted and not yet released."""
        return self._standing

    def retry_after(self) -> float:
        """Suggested client back-off, from the backlog drain estimate."""
        backlog = max(1, self._standing - self.max_concurrency + 1)
        estimate = backlog * self._service_ema / self.max_concurrency
        return float(min(RETRY_AFTER_MAX, max(RETRY_AFTER_MIN, estimate)))

    def over_memory_budget(self) -> bool:
        """Whether peak RSS currently exceeds the soft budget."""
        if self.memory_budget_bytes is None:
            return False
        peak = rss_bytes()
        return peak is not None and peak > self.memory_budget_bytes

    def admit(self) -> Ticket:
        """Take a ticket, or raise :class:`Shed` with client guidance."""
        if self._standing >= self.capacity:
            self.shed["queue_full"] += 1
            raise Shed("queue_full", self.retry_after())
        if self.over_memory_budget():
            self.shed["memory"] += 1
            raise Shed("memory", self.retry_after())
        self._standing += 1
        self.admitted += 1
        return Ticket(self)

    def _release(self, elapsed: float) -> None:
        self._standing = max(0, self._standing - 1)
        self.completed += 1
        self._service_ema += SERVICE_EMA_ALPHA * (max(0.0, elapsed) - self._service_ema)

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for introspection endpoints."""
        return {
            "standing": self._standing,
            "capacity": self.capacity,
            "max_concurrency": self.max_concurrency,
            "max_queue_depth": self.max_queue_depth,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": dict(self.shed),
            "service_ema_seconds": self._service_ema,
            "retry_after_seconds": self.retry_after(),
        }
