"""repro.net — the asyncio HTTP serving layer over the clique engine.

The network front door for :class:`repro.serve.SignedCliqueEngine`:
:class:`CliqueServer` hosts multiple named graphs (tenants), coalesces
identical in-flight requests onto one computation
(:class:`SingleFlight`), bounds admitted work with load shedding and
``Retry-After`` guidance (:class:`AdmissionController`), enforces
per-request deadlines end to end (parsed by
:func:`repro.limits.parse_deadline`, propagated into the search via
:meth:`repro.limits.ResourceGuard.remaining_time`), and turns every
request-scoped failure into a structured JSON error while the process
keeps serving. Built on stdlib ``asyncio`` + ``http`` semantics only —
no third-party dependencies. Start it with ``signed-clique serve`` or
programmatically via :class:`repro.testing.chaos.ServerHarness`.
See docs/ALGORITHMS.md ("Serving over the network").
"""

from repro.net.admission import AdmissionController, Shed, Ticket
from repro.net.coalesce import Flight, SingleFlight
from repro.net.http import HttpError, Request
from repro.net.server import CliqueServer, ServerConfig
from repro.net.tenants import Tenant, TenantError, TenantRegistry, UnknownTenant

__all__ = [
    "AdmissionController",
    "CliqueServer",
    "Flight",
    "HttpError",
    "Request",
    "ServerConfig",
    "Shed",
    "SingleFlight",
    "Tenant",
    "TenantError",
    "TenantRegistry",
    "Ticket",
    "UnknownTenant",
]
