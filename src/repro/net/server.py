"""`CliqueServer`: the asyncio HTTP front door over the serving engine.

One process, one event loop, one bounded thread pool. The loop owns all
protocol work (parsing, routing, admission, coalescing bookkeeping);
the pool runs the actual clique searches, sized exactly to the
admission controller's ``max_concurrency`` so admitted work is the only
work. Per request the server:

1. **parses** under hard limits and timeouts (:mod:`repro.net.http` —
   a slow-loris client gets a 408, an oversized body a 413);
2. **resolves the tenant** (:mod:`repro.net.tenants`) and its current
   graph-version fingerprint — a lock-free read: the event loop never
   takes an engine lock, so a slow search cannot stall the loop (and
   with it every tenant, ``/healthz`` and the timeouts);
3. **derives a deadline** from ``?deadline=`` / ``X-Deadline``
   (:func:`repro.limits.parse_deadline`, capped by the server maximum)
   and builds a :class:`~repro.limits.ResourceGuard` whose
   :meth:`~repro.limits.ResourceGuard.remaining_time` propagates into
   the engine as the compute's ``time_limit``;
4. **coalesces** onto an in-flight identical computation when one
   exists — the single-flight key is ``(tenant, fingerprint, kind,
   params)``, so mutations (which bump the fingerprint) start new
   flights. A flight's compute holds the engine lock and re-reads the
   fingerprint inside it, and the response carries that
   computed-against fingerprint; if a write slipped in between keying
   and compute, the response is flagged ``version_changed`` rather
   than mislabelled;
5. otherwise **admits** the new computation through the
   :class:`~repro.net.admission.AdmissionController` — or sheds it
   with a 503 + ``Retry-After`` *before* it costs a search;
6. **awaits within the deadline**: a request whose budget runs out
   gets a structured 504 (the shared computation keeps running for
   other waiters and warms the cache for the retry).

Every failure is answered as a structured JSON envelope
``{"error": {"code", "message", "status"}}`` scoped to its own request;
the connection loop and the listener survive anything a request throws.
Counters mirror to the ambient observer as ``net_*`` metrics and the
event journal (``net_shed`` / ``net_deadline`` / ``net_error`` ...), so
the existing Prometheus exporter — mounted at ``GET /metrics`` — tells
the whole overload story, per tenant where it matters.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.limits import ResourceGuard, parse_deadline
from repro.models import resolve_model
from repro.net.admission import AdmissionController, Shed
from repro.net.coalesce import SingleFlight
from repro.net.http import (
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    Request,
    json_body,
    read_request,
    render_response,
)
from repro.net.tenants import Tenant, TenantError, TenantRegistry, UnknownTenant
from repro.obs import runtime as obs
from repro.obs.export import prometheus_text

__all__ = ["CliqueServer", "ServerConfig"]

#: Server counter names, mirrored as ``net_<name>`` observer counters.
COUNTER_NAMES = (
    "connections",
    "requests",
    "responses",
    "errors",
    "bad_requests",
    "shed",
    "deadline_exceeded",
    "flights",
    "coalesced",
    "computes",
    "edits",
    "slow_client_drops",
)


@dataclass
class ServerConfig:
    """Tunables of one :class:`CliqueServer` (all have safe defaults)."""

    host: str = "127.0.0.1"
    port: int = 8265
    #: Searches allowed to run at once (executor width).
    max_concurrency: int = 4
    #: Admitted-but-waiting bound on top of ``max_concurrency``.
    max_queue_depth: int = 16
    #: Deadline applied when the request names none (seconds).
    default_deadline: float = 30.0
    #: Hard cap on any requested deadline (seconds).
    max_deadline: float = 300.0
    #: Budget for reading a request head / body chunk (slow-loris cap).
    read_timeout: float = 10.0
    #: Budget for draining a response to a slow reader.
    write_timeout: float = 10.0
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    #: Soft peak-RSS bound; above it new computations are shed.
    memory_budget_bytes: Optional[int] = None
    #: Single-flight coalescing of identical in-flight requests.
    coalesce: bool = True
    #: Maximum cliques serialised into one response payload.
    max_response_cliques: int = 1000


def _clique_payload(clique) -> Dict[str, object]:
    return {
        "nodes": sorted(clique.nodes, key=repr),
        "size": clique.size,
        "positive_edges": clique.positive_edges,
        "negative_edges": clique.negative_edges,
    }


def _nodes_digest(nodes) -> str:
    payload = "\x1f".join(sorted(repr(node) for node in nodes))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class CliqueServer:
    """Serve signed-clique queries for a :class:`TenantRegistry` over HTTP.

    Lifecycle: :meth:`start` binds the listener (resolving ``port=0``
    to the real ephemeral port), :meth:`serve_forever` blocks, and
    :meth:`stop` closes the listener, cancels connection handlers and
    shuts the executor down. The server never dies from request-scoped
    failures; only :meth:`stop` (or loop teardown) ends it.
    """

    def __init__(self, registry: TenantRegistry, config: Optional[ServerConfig] = None):
        self.registry = registry
        self.config = config or ServerConfig()
        self.flights = SingleFlight()
        self.admission = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            max_queue_depth=self.config.max_queue_depth,
            memory_budget_bytes=self.config.memory_budget_bytes,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-net",
        )
        self._server: Optional["asyncio.base_events.Server"] = None
        self._connections: "set[asyncio.Task]" = set()
        self._started_at = time.time()
        #: Plain mirror of the ``net_*`` observer counters.
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self.host = self.config.host
        self.port = self.config.port

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the listener; returns the (host, actual port) pair."""
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        obs.journal_event("net_started", host=self.host, port=self.port)
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Accept connections until cancelled / stopped."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Stop accepting, drop live connections, release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._executor.shutdown(wait=True)
        obs.journal_event("net_stopped", host=self.host, port=self.port)

    def _bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        obs.counter("net_" + name).inc(amount)

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------
    def _on_connection(self, reader, writer) -> None:
        task = asyncio.get_running_loop().create_task(
            self._handle_connection(reader, writer)
        )
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(self, reader, writer) -> None:
        """Serve keep-alive requests on one socket; outlive any failure."""
        self._bump("connections")
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        read_timeout=self.config.read_timeout,
                        max_body_bytes=self.config.max_body_bytes,
                    )
                except HttpError as error:
                    self._bump("bad_requests")
                    if error.status == 408:
                        self._bump("slow_client_drops")
                        obs.journal_event("net_slow_client", code=error.code)
                    await self._write(writer, *self._error_response(error, close=True))
                    return
                if request is None:
                    return  # client closed between requests
                status, payload, extra = await self._safe_dispatch(request)
                keep_alive = not request.wants_close() and status < 500
                content_type = (
                    "text/plain; version=0.0.4; charset=utf-8"
                    if request.path == "/metrics"
                    and isinstance(payload, str)
                    else "application/json"
                )
                blob, keep_alive = render_response(
                    status,
                    payload,
                    keep_alive=keep_alive,
                    extra_headers=extra,
                    content_type=content_type,
                )
                if not await self._write(writer, blob, keep_alive):
                    return
                if not keep_alive:
                    return
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - connection must never kill the server
            obs.journal_event("net_connection_error", detail=traceback.format_exc(limit=3))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - already torn down
                pass

    async def _write(self, writer, blob: bytes, keep_alive: bool) -> bool:
        """Write + drain under the write timeout; False = drop client."""
        try:
            writer.write(blob)
            await asyncio.wait_for(writer.drain(), self.config.write_timeout)
        except asyncio.TimeoutError:
            self._bump("slow_client_drops")
            obs.journal_event("net_slow_client", code="write_timeout")
            return False
        except (ConnectionError, BrokenPipeError, OSError):
            return False
        return keep_alive

    def _error_response(
        self, error: HttpError, close: bool = False
    ) -> Tuple[bytes, bool]:
        payload = {
            "error": {
                "code": error.code,
                "message": error.message,
                "status": error.status,
            }
        }
        if error.detail:
            payload["error"]["detail"] = error.detail
        extra = {}
        if error.retry_after is not None:
            extra["Retry-After"] = str(max(1, int(round(error.retry_after))))
        return render_response(
            error.status, payload, keep_alive=not close, extra_headers=extra
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _safe_dispatch(
        self, request: Request
    ) -> Tuple[int, object, Dict[str, str]]:
        """Dispatch one request; every failure becomes a structured error."""
        self._bump("requests")
        try:
            status, payload, extra = await self._dispatch(request)
            self._bump("responses")
            return status, payload, extra
        except HttpError as error:
            return self._structured_error(request, error)
        except Shed as shed:
            self._bump("shed")
            obs.journal_event(
                "net_shed",
                reason=shed.reason,
                retry_after=shed.retry_after,
                path=request.path,
            )
            return self._structured_error(
                request,
                HttpError(
                    503,
                    "shed_" + shed.reason,
                    "server over capacity; retry later",
                    retry_after=shed.retry_after,
                ),
            )
        except asyncio.TimeoutError:
            self._bump("deadline_exceeded")
            obs.journal_event("net_deadline", path=request.path)
            return self._structured_error(
                request,
                HttpError(504, "deadline_exceeded", "request deadline elapsed"),
            )
        except UnknownTenant as error:
            return self._structured_error(
                request, HttpError(404, "unknown_graph", str(error))
            )
        except (ReproError, ValueError) as error:
            return self._structured_error(
                request, HttpError(400, "bad_request", str(error))
            )
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - poisoned request firewall
            obs.journal_event(
                "net_error",
                path=request.path,
                error=type(error).__name__,
                detail=traceback.format_exc(limit=5),
            )
            return self._structured_error(
                request,
                HttpError(500, "internal", f"{type(error).__name__}: {error}"),
            )

    def _structured_error(
        self, request: Request, error: HttpError
    ) -> Tuple[int, object, Dict[str, str]]:
        self._bump("errors")
        tenant_name = (
            request.parts[2]
            if len(request.parts) >= 3 and request.parts[:2] == ["v1", "graphs"]
            else None
        )
        if tenant_name is not None and tenant_name in self.registry:
            self.registry.get(tenant_name).errors += 1
        payload = {
            "error": {
                "code": error.code,
                "message": error.message,
                "status": error.status,
            }
        }
        if error.detail:
            payload["error"]["detail"] = error.detail
        extra: Dict[str, str] = {}
        if error.retry_after is not None:
            extra["Retry-After"] = str(max(1, int(round(error.retry_after))))
        return error.status, payload, extra

    async def _dispatch(self, request: Request) -> Tuple[int, object, Dict[str, str]]:
        parts = request.parts
        if request.path == "/healthz" and request.method == "GET":
            return 200, {"status": "ok", "uptime_seconds": time.time() - self._started_at}, {}
        if request.path == "/metrics" and request.method == "GET":
            return 200, prometheus_text(obs.get_observer().registry), {}
        if parts == ["v1", "server"] and request.method == "GET":
            return 200, self.describe(), {}
        if parts[:2] == ["v1", "graphs"]:
            if len(parts) == 2 and request.method == "GET":
                return 200, {"graphs": self.registry.describe()}, {}
            if len(parts) == 3:
                return await self._graph_endpoint(request, parts[2])
            if len(parts) == 4:
                return await self._tenant_endpoint(request, parts[2], parts[3])
        raise HttpError(404, "not_found", f"no route for {request.method} {request.path}")

    async def _graph_endpoint(self, request: Request, name: str):
        if request.method in ("PUT", "POST"):
            return await self._create_tenant(request, name)
        if request.method == "DELETE":
            self.registry.drop(name)
            return 200, {"dropped": name}, {}
        if request.method == "GET":
            return 200, self.registry.get(name).describe(), {}
        raise HttpError(405, "method_not_allowed", f"{request.method} not allowed here")

    async def _tenant_endpoint(self, request: Request, name: str, action: str):
        tenant = self.registry.get(name)
        tenant.requests += 1
        if action == "cliques" and request.method == "GET":
            return await self._cliques(request, tenant)
        if action == "query" and request.method == "POST":
            return await self._community_query(request, tenant)
        if action == "edits" and request.method == "POST":
            return await self._edits(request, tenant)
        if action == "stats" and request.method == "GET":
            info = tenant.describe()
            info["cache"] = tenant.engine.cache_info()
            return 200, info, {}
        raise HttpError(404, "not_found", f"no tenant action {action!r}")

    async def _create_tenant(self, request: Request, name: str):
        from repro.graphs.builder import SignedGraphBuilder

        body = json_body(request)
        if not isinstance(body, dict) or not isinstance(body.get("edges"), list):
            raise HttpError(400, "bad_graph", 'expected {"edges": [[u, v, sign], ...]}')
        builder = SignedGraphBuilder(on_duplicate="error")
        try:
            for edge in body["edges"]:
                if not isinstance(edge, (list, tuple)) or len(edge) != 3:
                    raise HttpError(
                        400, "bad_graph", f"edge {edge!r} is not a [u, v, sign] triple"
                    )
                builder.add(edge[0], edge[1], edge[2])
            for node in body.get("nodes", []):
                builder.add_node(node)
            graph = builder.build()
        except ReproError as error:
            raise HttpError(400, "bad_graph", str(error))
        try:
            tenant = self.registry.create(name, graph)
        except TenantError as error:
            status = 404 if isinstance(error, UnknownTenant) else 400
            raise HttpError(status, "bad_tenant", str(error))
        return 201, tenant.describe(), {}

    # ------------------------------------------------------------------
    # Query serving (admission + coalescing + deadlines)
    # ------------------------------------------------------------------
    def _deadline_guard(self, request: Request) -> ResourceGuard:
        raw = request.param("deadline")
        if raw is None:
            seconds = self.config.default_deadline
        else:
            seconds = parse_deadline(raw)  # ValueError -> 400 via dispatch
        seconds = min(seconds, self.config.max_deadline)
        return ResourceGuard(deadline=time.monotonic() + seconds)

    async def _run_flight(
        self,
        tenant: Tenant,
        key_parts: Tuple,
        guard: ResourceGuard,
        compute: Callable[[], object],
    ) -> Tuple[object, bool]:
        """Coalesce-or-admit *compute*, await it within the deadline.

        Returns ``(result, coalesced)``. The admission ticket belongs
        to the flight (released when the computation finishes, even if
        every waiter timed out) and is only taken for flight leaders —
        joining an in-flight computation is always admitted.
        """
        key = key_parts if self.config.coalesce else (id(guard), key_parts)
        flight = self.flights.get(key) if self.config.coalesce else None
        if flight is not None:
            # No await separates this lookup from the wait below, so the
            # flight cannot complete-and-unregister in between.
            self.flights.coalesced += 1
            flight.served += 1
            self._bump("coalesced")
            coalesced = True
        else:
            ticket = self.admission.admit()  # Shed -> 503 via dispatch
            loop = asyncio.get_running_loop()

            async def factory():
                try:
                    return await loop.run_in_executor(self._executor, compute)
                finally:
                    ticket.release()

            flight, _leader = self.flights.join(key, factory)
            self._bump("flights")
            self._bump("computes")
            coalesced = False
        result = await self.flights.wait(flight, timeout=guard.remaining_time())
        return result, coalesced

    async def _cliques(self, request: Request, tenant: Tenant):
        try:
            alpha = float(request.param("alpha", "4"))
            k = int(request.param("k", "3"))
        except ValueError:
            raise HttpError(400, "bad_params", "alpha must be a float, k an integer")
        mode = request.param("mode", "all")
        if mode not in ("all", "top"):
            raise HttpError(400, "bad_params", f"unknown mode {mode!r} (all / top)")
        try:
            model = resolve_model(request.param("model"))
        except ReproError as error:
            raise HttpError(400, "bad_params", str(error))
        r = None
        warm_start = None
        if mode == "top":
            try:
                r = int(request.param("r", "10"))
            except ValueError:
                raise HttpError(400, "bad_params", "r must be an integer")
            if r < 1:
                raise HttpError(400, "bad_params", "r must be >= 1")
            warm_start = request.param("warm_start")
            if warm_start is not None:
                from repro.heuristics import WARM_START_STRATEGIES

                if warm_start not in WARM_START_STRATEGIES:
                    raise HttpError(
                        400,
                        "bad_params",
                        f"unknown warm_start {warm_start!r} "
                        f"({' / '.join(WARM_START_STRATEGIES)})",
                    )
        guard = self._deadline_guard(request)
        fingerprint = tenant.fingerprint
        engine = tenant.engine
        started = time.perf_counter()

        # Each compute pins the engine lock, re-reads the fingerprint
        # inside it and returns (fingerprint, result): the response is
        # labelled with the version it was actually computed against,
        # even if an edit slipped in after `fingerprint` was keyed.
        if mode == "all":
            def compute():
                with engine.pinned():
                    computed_on = engine.fingerprint
                    grid = engine.run_grid(
                        [alpha], [k], time_limit=guard.remaining_time(), model=model
                    )
                    return computed_on, grid[(alpha, k)]
        else:
            def compute(r=r, warm_start=warm_start):
                with engine.pinned():
                    computed_on = engine.fingerprint
                    return computed_on, engine.top_r_with_stats(
                        alpha,
                        k,
                        r,
                        time_limit=guard.remaining_time(),
                        model=model,
                        warm_start=warm_start,
                    )

        # warm_start is deliberately NOT in the flight key: seeded and
        # unseeded requests return the identical answer, so they may
        # coalesce onto one compute.
        key = (tenant.name, fingerprint, mode, alpha, k, r, model)
        flight_result, coalesced = await self._run_flight(tenant, key, guard, compute)
        computed_on, result = flight_result
        return self._result_payload(
            tenant, fingerprint, computed_on, result,
            {"alpha": alpha, "k": k, "mode": mode, "r": r, "model": model,
             "warm_start": warm_start},
            coalesced, started,
        )

    async def _community_query(self, request: Request, tenant: Tenant):
        body = json_body(request)
        if not isinstance(body, dict) or not isinstance(body.get("nodes"), list):
            raise HttpError(400, "bad_query", 'expected {"nodes": [...], "alpha": ..., "k": ...}')
        try:
            alpha = float(body.get("alpha", 4))
            k = int(body.get("k", 3))
        except (TypeError, ValueError):
            raise HttpError(400, "bad_params", "alpha must be a float, k an integer")
        nodes = body["nodes"]
        if not nodes:
            raise HttpError(400, "bad_query", "query nodes must be non-empty")
        guard = self._deadline_guard(request)
        fingerprint = tenant.fingerprint
        engine = tenant.engine
        started = time.perf_counter()

        def compute():
            with engine.pinned():
                computed_on = engine.fingerprint
                return computed_on, engine.query_with_stats(
                    nodes, alpha, k, time_limit=guard.remaining_time()
                )

        key = (tenant.name, fingerprint, "query", alpha, k, _nodes_digest(nodes))
        flight_result, coalesced = await self._run_flight(tenant, key, guard, compute)
        computed_on, result = flight_result
        return self._result_payload(
            tenant, fingerprint, computed_on, result,
            {"alpha": alpha, "k": k, "mode": "query", "nodes": sorted(nodes, key=repr)},
            coalesced, started,
        )

    async def _edits(self, request: Request, tenant: Tenant):
        body = json_body(request)
        if not isinstance(body, dict) or not isinstance(body.get("edits"), list):
            raise HttpError(
                400, "bad_edits", 'expected {"edits": [["add"|"remove"|"flip", u, v(, sign)], ...]}'
            )
        edits: List[tuple] = []
        arity = {"add": 4, "flip": 4, "remove": 3}
        for edit in body["edits"]:
            if not isinstance(edit, (list, tuple)) or not edit:
                raise HttpError(400, "bad_edits", f"edit {edit!r} is malformed")
            expected = arity.get(edit[0])
            if expected is None:
                raise HttpError(400, "bad_edits", f"unknown edit operation {edit[0]!r}")
            if len(edit) != expected:
                raise HttpError(
                    400,
                    "bad_edits",
                    f"edit {edit!r}: {edit[0]!r} takes {expected - 1} arguments",
                )
            edits.append(tuple(edit))
        guard = self._deadline_guard(request)
        engine = tenant.engine
        before = tenant.fingerprint
        ticket = self.admission.admit()
        loop = asyncio.get_running_loop()
        deadline_fired = threading.Event()

        def apply():
            # Pinned so the returned fingerprint is exactly this edit's
            # resulting version, not a later write's.
            with engine.pinned():
                engine.apply_edits(edits)
                return engine.fingerprint

        future = self._executor.submit(apply)

        def settle(done, _loop=loop):
            # Runs when the executor thread actually finishes. Only now
            # is the admission slot truly free: `wait_for` cannot cancel
            # a running thread, so releasing from the await path on a
            # deadline would hand out capacity the edit still occupies.
            try:
                _loop.call_soon_threadsafe(ticket.release)
            except RuntimeError:  # loop already closed (server stopping)
                ticket.release()
            if deadline_fired.is_set():
                # The 504 already went out; journal how the ambiguous
                # edit actually settled so operators can reconcile.
                error = None if done.cancelled() else done.exception()
                obs.journal_event(
                    "net_edit_after_deadline",
                    tenant=tenant.name,
                    edits=len(edits),
                    applied=not done.cancelled() and error is None,
                    error=type(error).__name__ if error is not None else None,
                )

        future.add_done_callback(settle)
        try:
            after = await asyncio.wait_for(
                asyncio.wrap_future(future), guard.remaining_time()
            )
        except asyncio.TimeoutError:
            deadline_fired.set()
            self._bump("deadline_exceeded")
            obs.journal_event("net_deadline", path=request.path, kind="edit")
            # The mutation may still land after this response: tell the
            # client which fingerprint it *had*, so a follow-up GET of
            # the graph reveals whether the edit applied.
            raise HttpError(
                504,
                "deadline_exceeded",
                "edit deadline elapsed; the mutation may still apply",
                detail={"fingerprint_before": before, "edit_outcome": "unknown"},
            )
        self._bump("edits")
        obs.journal_event(
            "net_edit", tenant=tenant.name, edits=len(edits),
            fingerprint_before=before[:16], fingerprint_after=after[:16],
        )
        return 200, {
            "tenant": tenant.name,
            "applied": len(edits),
            "fingerprint_before": before,
            "fingerprint_after": after,
        }, {}

    def _result_payload(
        self,
        tenant: Tenant,
        requested: str,
        computed_on: str,
        result,
        params: Dict[str, object],
        coalesced: bool,
        started: float,
    ):
        cliques = list(result.cliques)
        truncated_payload = len(cliques) > self.config.max_response_cliques
        shown = cliques[: self.config.max_response_cliques]
        partial = bool(
            getattr(result, "timed_out", False)
            or getattr(result, "truncated", False)
            or getattr(result, "interrupted", False)
        )
        payload = {
            "tenant": tenant.name,
            # The version the result was computed against vs. the one
            # the request was keyed under; they differ only when a
            # write landed between keying and compute.
            "fingerprint": computed_on,
            "fingerprint_requested": requested,
            "version_changed": computed_on != requested,
            "params": params,
            "count": len(cliques),
            "cliques": [_clique_payload(clique) for clique in shown],
            "stats": result.stats.as_dict() if result.stats is not None else None,
            "partial": partial,
            "interrupted_reason": getattr(result, "interrupted_reason", None),
            "payload_truncated": truncated_payload,
            "coalesced": coalesced,
            "elapsed_ms": round((time.perf_counter() - started) * 1000, 3),
        }
        return 200, payload, {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """JSON-ready snapshot of server-level state (``/v1/server``)."""
        return {
            "host": self.host,
            "port": self.port,
            "uptime_seconds": time.time() - self._started_at,
            "coalesce": self.config.coalesce,
            "counters": dict(self.counters),
            "admission": self.admission.stats(),
            "flights": self.flights.stats(),
            "graphs": self.registry.names(),
        }
