"""Minimal HTTP/1.1 plumbing over asyncio streams (stdlib only).

The serving layer needs exactly enough HTTP to be a robust front door:
request-line + header parsing with hard limits, ``Content-Length``
bodies, keep-alive, JSON responses, and — the robustness part —
timeouts on every read and write so a slow or stalled client can never
pin a connection handler:

* **slow-loris reads** — the whole head (request line + headers) must
  arrive within ``read_timeout``, and so must each body chunk; a client
  dribbling one byte a second gets a 408 and its socket closed;
* **oversized input** — heads are bounded by the stream limit, bodies
  by ``max_body_bytes`` (413), so no request can balloon the heap;
* **slow writes** — responses drain under ``write_timeout``; a client
  that stops reading its response gets disconnected instead of filling
  the kernel buffer and blocking the handler forever.

Malformed input raises :class:`HttpError`, which carries the status and
a machine-readable ``code`` — the server turns any of these into the
structured JSON error envelope (see :mod:`repro.net.server`) without
tearing down the listener.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "render_response",
    "json_body",
]

#: Upper bound on the request head (request line + headers), bytes.
MAX_HEAD_BYTES = 32 * 1024

#: Default upper bound on request bodies, bytes (1 MiB).
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: Reason phrases for the statuses the server emits.
REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A request that must be answered with an error status.

    ``code`` is the machine-readable error identifier clients dispatch
    on (``"bad_request"``, ``"deadline_exceeded"``, ``"shed"`` ...);
    ``retry_after`` (seconds) adds a ``Retry-After`` header when set;
    ``detail`` (a JSON-ready mapping) rides in the error envelope under
    ``error.detail`` — e.g. an edit that timed out reports the pre-edit
    fingerprint there so clients can tell whether it landed.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
        detail: Optional[Dict[str, object]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        self.detail = detail


class Request:
    """One parsed request: method, split path, query, headers, body."""

    __slots__ = ("method", "target", "path", "parts", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ):
        self.method = method
        self.target = target
        split = urlsplit(target)
        self.path = unquote(split.path)
        #: Non-empty, percent-decoded path segments ("/v1/graphs/g" ->
        #: ["v1", "graphs", "g"]).
        self.parts = [unquote(part) for part in split.path.split("/") if part]
        #: First-value-wins query mapping.
        self.query: Dict[str, str] = {}
        for key, value in parse_qsl(split.query, keep_blank_values=True):
            self.query.setdefault(key, value)
        self.headers = headers
        self.body = body

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Query parameter, falling back to an ``X-<name>`` header."""
        value = self.query.get(name)
        if value is None:
            value = self.headers.get("x-" + name.lower())
        return value if value is not None else default

    def wants_close(self) -> bool:
        """Whether the client asked to close the connection after this."""
        return self.headers.get("connection", "").lower() == "close"

    def __repr__(self) -> str:
        return f"Request({self.method} {self.target!r}, body={len(self.body)}B)"


async def read_request(
    reader: "asyncio.StreamReader",
    read_timeout: float = 10.0,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Optional[Request]:
    """Read one request, or ``None`` on clean EOF before any bytes.

    Raises :class:`HttpError` for malformed, oversized or too-slow
    input and ``asyncio.IncompleteReadError`` surfaces as a 400 — the
    caller answers and closes. The head must arrive within
    *read_timeout* as one budget (not per byte!), which is the
    slow-loris defence.
    """
    try:
        head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), read_timeout)
    except asyncio.TimeoutError:
        raise HttpError(408, "header_timeout", "request head not received in time")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "head_too_large", "request head exceeds the limit")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "truncated_head", "connection closed mid-head")
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(413, "head_too_large", "request head exceeds the limit")
    try:
        text = head.decode("latin-1")
        request_line, _, header_block = text.partition("\r\n")
        method, target, version = request_line.split(" ", 2)
    except ValueError:
        raise HttpError(400, "bad_request_line", "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, "bad_version", f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, "bad_header", f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, "bad_content_length", "non-integer Content-Length")
        if length < 0:
            raise HttpError(400, "bad_content_length", "negative Content-Length")
        if length > max_body_bytes:
            raise HttpError(413, "body_too_large", "request body exceeds the limit")
        if length:
            try:
                body = await asyncio.wait_for(reader.readexactly(length), read_timeout)
            except asyncio.TimeoutError:
                raise HttpError(408, "body_timeout", "request body not received in time")
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated_body", "connection closed mid-body")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "unsupported_encoding", "chunked bodies are not supported")
    return Request(method.upper(), target, headers, body)


def json_body(request: Request) -> object:
    """Parse the request body as JSON (400 on anything else)."""
    if not request.body:
        raise HttpError(400, "missing_body", "a JSON request body is required")
    try:
        return json.loads(request.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HttpError(400, "bad_json", f"request body is not valid JSON: {exc}")


def render_response(
    status: int,
    payload: object,
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
    content_type: str = "application/json",
) -> Tuple[bytes, bool]:
    """Serialise one response; returns ``(bytes, keep_alive)``.

    JSON payloads are rendered with sorted keys (deterministic bytes —
    the differential tests compare whole bodies); ``str`` payloads pass
    through for text endpoints like ``/metrics``.
    """
    if isinstance(payload, (bytes, str)):
        body = payload.encode("utf-8") if isinstance(payload, str) else payload
    else:
        body = (json.dumps(payload, sort_keys=True, default=str) + "\n").encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: " + ("keep-alive" if keep_alive else "close"),
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body, keep_alive
