"""Single-flight request coalescing for the network serving layer.

Identical queries tend to arrive together: a hot (graph, alpha, k)
setting hit by many clients at once, a dashboard fanning the same grid
point to every panel, a retry storm after a deploy. Running the search
once per arrival wastes the engine (every duplicate serialises on the
engine lock and burns an executor slot) and — worse — fills the
admission queue with work that is already in progress, shedding
*distinct* requests to make room for duplicates.

:class:`SingleFlight` collapses the storm: the first arrival for a key
becomes the **leader** and starts the computation as a shared
``asyncio.Task``; every later arrival for the same key becomes a
**waiter** on that task. One compute fans its result (or its exception
— failures are coalesced too, a poisoned request poisons exactly its
own flight) out to all of them.

Keys must capture everything the answer depends on. The server keys by
``(tenant, graph fingerprint, request kind, alpha, k, extra)`` — the
fingerprint term is what makes coalescing safe across mutations: a
write bumps the fingerprint, so new arrivals open a *new* flight while
in-flight readers finish against the version they started on.

Cancellation safety is the subtle part, pinned by
``tests/test_net.py``: waiters await the task through
``asyncio.shield``, so a waiter that disconnects (its handler task is
cancelled) or times out (its deadline fires) detaches *itself* without
cancelling the shared computation the remaining waiters are counting
on. The flight is removed from the table only when its task completes,
from the task's done callback — never by a departing waiter.

This class is single-event-loop code (the server owns one loop); it
needs no locks because all bookkeeping happens on loop callbacks.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Hashable, Optional, Tuple

__all__ = ["Flight", "SingleFlight"]


class Flight:
    """One in-progress computation plus its waiter accounting."""

    __slots__ = ("key", "task", "waiters", "peak_waiters", "served")

    def __init__(self, key: Hashable, task: "asyncio.Task"):
        self.key = key
        self.task = task
        #: Waiters currently blocked on the task (including the leader).
        self.waiters = 0
        #: High-water mark of concurrent waiters over the flight's life.
        self.peak_waiters = 0
        #: Total requests this flight has (or will have) answered.
        self.served = 0

    def __repr__(self) -> str:
        return (
            f"Flight(key={self.key!r}, waiters={self.waiters}, "
            f"served={self.served}, done={self.task.done()})"
        )


class SingleFlight:
    """Per-key single-flight table: one computation, many waiters.

    >>> import asyncio
    >>> flights = SingleFlight()
    >>> async def demo():
    ...     async def compute():
    ...         await asyncio.sleep(0)
    ...         return 42
    ...     a = flights.join("k", compute)
    ...     b = flights.join("k", compute)  # coalesces onto a's task
    ...     return await asyncio.gather(flights.wait(a[0]), flights.wait(b[0]))
    >>> asyncio.run(demo())
    [42, 42]
    """

    def __init__(self):
        self._flights: Dict[Hashable, Flight] = {}
        #: Flights started (each one is a real computation).
        self.started = 0
        #: Requests that joined an existing flight instead of computing.
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._flights)

    def get(self, key: Hashable) -> Optional[Flight]:
        """The in-progress flight for *key*, if any."""
        return self._flights.get(key)

    def join(
        self, key: Hashable, factory: Callable[[], Awaitable]
    ) -> Tuple[Flight, bool]:
        """Join the flight for *key*, starting it when absent.

        Returns ``(flight, leader)`` — ``leader`` is ``True`` for the
        caller that actually started the computation (*factory* is only
        awaited for that caller). The flight unregisters itself when
        its task completes; its result stays readable by already-joined
        waiters (a Task retains its result).
        """
        flight = self._flights.get(key)
        if flight is not None:
            self.coalesced += 1
            flight.served += 1
            return flight, False
        task = asyncio.get_running_loop().create_task(factory())
        flight = Flight(key, task)
        self._flights[key] = flight
        self.started += 1
        flight.served += 1
        def _finished(done_task: "asyncio.Task", _key: Hashable = key) -> None:
            self._flights.pop(_key, None)
            if not done_task.cancelled():
                # Mark a failure retrieved even if every waiter detached
                # (waiters that remain still re-raise through the shield).
                done_task.exception()

        task.add_done_callback(_finished)
        return flight, True

    async def wait(self, flight: Flight, timeout: Optional[float] = None):
        """Await *flight*'s result as one (cancellable) waiter.

        The shared task is shielded: cancelling this coroutine — client
        disconnect, deadline — abandons only this waiter's seat.
        Raises ``asyncio.TimeoutError`` when *timeout* elapses first,
        and re-raises the computation's exception for every waiter.
        """
        flight.waiters += 1
        flight.peak_waiters = max(flight.peak_waiters, flight.waiters)
        try:
            if timeout is not None:
                return await asyncio.wait_for(asyncio.shield(flight.task), timeout)
            return await asyncio.shield(flight.task)
        finally:
            flight.waiters -= 1

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: in-flight / started / coalesced."""
        return {
            "in_flight": len(self._flights),
            "started": self.started,
            "coalesced": self.coalesced,
        }
