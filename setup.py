"""Setup shim for offline editable installs.

The environment has no ``wheel`` package, so PEP-517 editable installs
(`pip install -e .`) fail at the bdist_wheel step. This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work; all real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
