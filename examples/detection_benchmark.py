"""Community-detection benchmarking on a signed LFR-style testbed.

The paper positions the signed clique model as a building block for
community detection in signed networks. This example makes that claim
measurable: generate an LFR-style benchmark with known ground truth,
detect communities with each model, and score them with the omega index
(the overlap-aware analogue of NMI) plus coverage.

Sweeping the mixing parameter mu exposes each model's trade-off:
clique-based models are *precise but partial* — every reported group
sits inside one true community (high precision), but cliques only cover
the densest fragments (low coverage / omega) — while the loose
core-based models are *complete but coarse*: high coverage that fuses
communities into blobs as mixing grows.

Run with::

    python examples/detection_benchmark.py
"""

from repro import AlphaK, MSCE
from repro.baselines import core_communities, tclique_communities
from repro.core import signed_clique_percolation
from repro.generators import lfr_like_signed
from repro.metrics import average_precision, coverage, omega_index

ALPHA, K, TOP = 2, 2, 40


def detect_signed_cliques(graph):
    result = MSCE(graph, AlphaK(ALPHA, K), time_limit=30).top_r(TOP)
    return [set(clique.nodes) for clique in result.cliques]


def detect_tcliques(graph):
    return [set(c) for c in tclique_communities(graph, min_size=3)[:TOP]]


def detect_core(graph):
    return [set(c) for c in core_communities(graph, AlphaK(ALPHA, K))[:TOP]]


def detect_percolation(graph):
    # Clique percolation: merge signed cliques sharing >= 3 members
    # into overlapping communities (Palla-style CPM on signed blocks).
    return signed_clique_percolation(
        graph, ALPHA, K, overlap=3, time_limit=30, max_results=2000
    )[:TOP]


DETECTORS = {
    "SignedClique": detect_signed_cliques,
    "CliquePercol": detect_percolation,
    "TClique": detect_tcliques,
    "Core": detect_core,
}


def main() -> None:
    print(f"{'mu':>5}  {'model':<13} {'omega':>7} {'precision':>10} {'coverage':>9} {'found':>6}")
    for mu in (0.05, 0.2, 0.4):
        graph, truth = lfr_like_signed(
            n=300,
            mu=mu,
            community_size_range=(12, 40),
            internal_noise=0.05,
            external_noise=0.1,
            seed=42,
        )
        truth_sets = [set(c) for c in truth]
        universe = graph.node_set()
        for label, detect in DETECTORS.items():
            communities = detect(graph)
            score = omega_index(communities, truth_sets, universe=universe)
            precision = average_precision(communities, truth_sets)
            cov = coverage(communities, universe)
            print(
                f"{mu:>5.2f}  {label:<13} {score:>7.3f} {precision:>10.3f} "
                f"{cov:>9.2f} {len(communities):>6}"
            )
        print()


if __name__ == "__main__":
    main()
