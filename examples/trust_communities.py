"""Trust-community mining in a Slashdot-style trust/distrust network.

The paper's first motivating application (Section I): in a trust network
such as Epinions or Slashdot, maximal (alpha, k)-cliques are trust
communities — groups in which almost everyone has rated almost everyone
else positively, with at most k detractors per member. The example:

1. generates the Slashdot stand-in (power-law topology, ~23% negative
   edges concentrated outside trust circles);
2. finds the top-10 trust communities at the paper's default (4, 3);
3. scores them with signed conductance (Eq. 1) against the Core,
   SignedCore and TClique baselines.

Run with::

    python examples/trust_communities.py
"""

from repro import AlphaK, MSCE
from repro.baselines import (
    core_communities,
    signed_core_communities,
    tclique_communities,
)
from repro.generators import load_dataset
from repro.graphs import graph_stats
from repro.metrics import average_signed_conductance, community_stats, signed_conductance

ALPHA, K, TOP = 4, 3, 10


def main() -> None:
    dataset = load_dataset("slashdot")
    graph = dataset.graph
    stats = graph_stats(graph)
    print(
        f"trust network: {stats.nodes:,} users, {stats.edges:,} ratings "
        f"({stats.negative_fraction:.0%} negative)"
    )

    params = AlphaK(ALPHA, K)
    result = MSCE(graph, params).top_r(TOP)
    print(f"\ntop-{TOP} trust communities at (alpha={ALPHA}, k={K}):")
    for rank, clique in enumerate(result.cliques, start=1):
        profile = community_stats(graph, clique.nodes)
        phi = signed_conductance(graph, clique.nodes)
        print(
            f"  #{rank}: {clique.size} members, "
            f"{profile.internal_negative} internal conflict(s), "
            f"signed conductance {phi:+.3f}"
        )

    print("\nmodel comparison (average signed conductance, lower is better):")
    communities = {
        "SignedClique": [set(c.nodes) for c in result.cliques],
        "TClique": [set(c) for c in tclique_communities(graph, min_size=3)[:TOP]],
        "Core": [set(c) for c in core_communities(graph, params)[:TOP]],
        "SignedCore": [set(c) for c in signed_core_communities(graph, params)[:TOP]],
    }
    for label, sets in communities.items():
        if not sets:
            print(f"  {label:<13} (no communities found)")
            continue
        score = average_signed_conductance(graph, sets)
        print(f"  {label:<13} {score:+.4f} over {len(sets)} communities")

    # Viral-marketing angle from the paper's introduction: members of a
    # trust community mostly trust each other, so influencing a few
    # members reaches the whole group through trusted ties.
    if result.cliques:
        seed_community = result.cliques[0]
        profile = community_stats(graph, seed_community.nodes)
        reach = profile.boundary_positive
        print(
            f"\nseeding community #1 ({seed_community.size} members) additionally "
            f"reaches {reach} trusted outsiders through positive boundary ties"
        )


if __name__ == "__main__":
    main()
