"""Quickstart: find maximal (alpha, k)-cliques in a toy signed network.

Builds the running example from the paper (Fig. 1), reduces it with the
MCCore, enumerates the maximal (3, 1)-cliques, and shows the top-r API.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AlphaK,
    SignedGraph,
    enumerate_signed_cliques,
    find_mccore,
    top_r_signed_cliques,
)
from repro.metrics import describe_community

# The paper's Fig. 1: a trust circle {v1..v5} with one internal conflict
# (v2 distrusts v3), plus a fringe (v6, v7, v8).
EDGES = [
    (1, 2, "+"), (1, 3, "+"), (1, 4, "+"), (1, 5, "+"),
    (2, 3, "-"), (2, 4, "+"), (2, 5, "+"),
    (3, 4, "+"), (3, 5, "+"),
    (4, 5, "+"),
    (2, 7, "+"), (5, 7, "+"), (6, 7, "+"), (5, 6, "+"), (3, 6, "+"),
    (6, 8, "+"), (7, 8, "-"),
]


def main() -> None:
    graph = SignedGraph(EDGES)
    print(f"graph: {graph}")

    # Step 1 — the signed graph reduction (Section III of the paper):
    # every maximal (3,1)-clique lives inside the MCCore.
    survivors = find_mccore(graph, alpha=3, k=1)
    print(f"MCCore at (alpha=3, k=1): {sorted(survivors)}")

    # Step 2 — enumerate all maximal (3,1)-cliques (Algorithm 4).
    cliques = enumerate_signed_cliques(graph, alpha=3, k=1)
    for clique in cliques:
        print(describe_community(graph, clique.nodes, name=f"clique {sorted(clique.nodes)}"))

    # Step 3 — with k=0 no internal conflict is tolerated and the model
    # degenerates to maximal cliques of the positive-edge graph.
    strict = enumerate_signed_cliques(graph, alpha=3, k=0)
    print(f"\nwith k=0 the trust circle splits into {len(strict)} smaller groups:")
    for clique in strict:
        print(f"  {sorted(clique.nodes)}")

    # Step 4 — top-r search is much cheaper than full enumeration on
    # real workloads; same API shape.
    top = top_r_signed_cliques(graph, alpha=3, k=0, r=2)
    print(f"\ntop-2 by size: {[sorted(c.nodes) for c in top]}")

    # Parameters are plain values, validated once:
    params = AlphaK(alpha=3, k=1)
    print(f"\nparameters {params}: positive threshold {params.positive_threshold}, "
          f"minimum clique size {params.min_clique_size}")


if __name__ == "__main__":
    main()
