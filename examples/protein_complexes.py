"""Protein-complex discovery in a signed PPI network (Exp-10 of the paper).

In a signed protein-protein interaction network, complexes are dense
mostly-activating subgraphs; inhibition points outward. The example:

1. generates the FlySign stand-in together with its ground-truth
   complexes;
2. predicts complexes with all four community models;
3. scores each model's top-30 predictions with the paper's precision
   protocol (best-matching complex, TP / (TP + FP)) and with F1.

Run with::

    python examples/protein_complexes.py
"""

from repro import AlphaK, MSCE
from repro.baselines import (
    core_communities,
    signed_core_communities,
    tclique_communities,
)
from repro.generators import load_dataset
from repro.metrics import average_f1, average_precision, best_match

ALPHA, K, TOP = 4, 3, 30


def main() -> None:
    dataset = load_dataset("flysign")
    graph, truth = dataset.graph, dataset.communities or []
    print(
        f"signed PPI network: {graph.number_of_nodes()} proteins, "
        f"{graph.number_of_edges()} interactions "
        f"({graph.number_of_negative_edges()} inhibitory), "
        f"{len(truth)} ground-truth complexes"
    )

    params = AlphaK(ALPHA, K)
    predictions = {
        "SignedClique": [
            set(c.nodes) for c in MSCE(graph, params, time_limit=60).top_r(TOP).cliques
        ],
        "TClique": [set(c) for c in tclique_communities(graph, min_size=3)[:TOP]],
        "Core": [set(c) for c in core_communities(graph, params)[:TOP]],
        "SignedCore": [set(c) for c in signed_core_communities(graph, params)[:TOP]],
    }

    print(f"\ncomplex-discovery quality of the top-{TOP} predictions:")
    print(f"  {'model':<13} {'precision':>9} {'F1':>7} {'found':>6}")
    for label, sets in predictions.items():
        precision = average_precision(sets, truth)
        f1 = average_f1(sets, truth)
        print(f"  {label:<13} {precision:>9.3f} {f1:>7.3f} {len(sets):>6}")

    # Inspect the best prediction in detail.
    signed = predictions["SignedClique"]
    if signed:
        top_prediction = signed[0]
        score = best_match(top_prediction, truth)
        print(
            f"\nlargest signed-clique complex: {len(top_prediction)} proteins, "
            f"precision {score.precision:.2f}, recall {score.recall:.2f} "
            f"against its best-matching ground-truth complex"
        )
        # The paper's qualitative claim: TClique truncates complexes by
        # refusing inhibitory edges; count what it loses here.
        tclique_best = max(
            (set(c) for c in predictions["TClique"]),
            key=lambda c: len(c & top_prediction),
            default=set(),
        )
        missed = top_prediction - tclique_best
        if missed:
            print(
                f"the closest TClique prediction misses {len(missed)} of those "
                f"proteins (they interact through at least one inhibitory edge)"
            )


if __name__ == "__main__":
    main()
