"""Polarization analysis: finding 'gangs in war' and measuring balance.

The paper's related work covers antagonistic community detection (Gao
et al.; Chu et al., "Finding gangs in war from signed networks"). This
example builds a polarized debate network — two factions, dense
friendship inside, hostility across, plus neutral bystanders — and:

1. tests structural balance and recovers the two camps;
2. extracts the maximal antagonistic clique pairs (the war's front
   line: mutually hostile inner circles);
3. contrasts them with the maximal (alpha, k)-cliques, which see each
   faction separately.

Run with::

    python examples/polarization.py
"""

import itertools
import random

from repro import SignedGraph, enumerate_signed_cliques
from repro.baselines import maximal_antagonistic_pairs
from repro.metrics import (
    balanced_partition,
    local_search_frustration,
    triangle_sign_census,
)


def build_polarized_network(seed: int = 7) -> SignedGraph:
    """Two factions of 9, hostile across, with 12 noisy bystanders."""
    rng = random.Random(seed)
    graph = SignedGraph()
    faction_a = list(range(0, 9))
    faction_b = list(range(9, 18))
    bystanders = list(range(18, 30))
    for faction in (faction_a, faction_b):
        for u, v in itertools.combinations(faction, 2):
            if rng.random() < 0.85:
                graph.add_edge(u, v, "+")
    for u in faction_a:
        for v in faction_b:
            if rng.random() < 0.5:
                graph.add_edge(u, v, "-")
    for bystander in bystanders:
        graph.add_node(bystander)
        for _ in range(3):
            other = rng.choice(faction_a + faction_b + bystanders)
            if other != bystander and not graph.has_edge(bystander, other):
                graph.add_edge(bystander, other, rng.choice(["+", "-"]))
    return graph


def main() -> None:
    graph = build_polarized_network()
    print(f"debate network: {graph}")

    # 1. Balance: is the network two clean camps?
    partition = balanced_partition(graph)
    if partition is not None:
        print(f"structurally balanced: camps of {len(partition[0])} and {len(partition[1])}")
    else:
        frustration, camp = local_search_frustration(graph, seed=1)
        print(
            f"not perfectly balanced: >= {frustration} frustrated edges; "
            f"best split {len(camp)} vs {graph.number_of_nodes() - len(camp)}"
        )
    census = triangle_sign_census(graph)
    print(
        f"triangle census: {census.balanced}/{census.total} balanced "
        f"(ratio {census.balance_ratio:.2f})"
    )

    # 2. The war's front line: mutually hostile inner circles.
    pairs = maximal_antagonistic_pairs(graph, min_side=3)
    print(f"\n{len(pairs)} maximal antagonistic clique pairs with both sides >= 3;")
    for side_a, side_b in pairs[:3]:
        print(f"  {sorted(side_a)}  <-- war -->  {sorted(side_b)}")

    # 3. Each faction on its own, via the signed clique model.
    cliques = enumerate_signed_cliques(graph, alpha=2, k=1)
    print(f"\ntop maximal (2,1)-cliques (factions seen separately):")
    for clique in cliques[:4]:
        print(f"  {sorted(clique.nodes)} ({clique.negative_edges} internal conflicts)")


if __name__ == "__main__":
    main()
