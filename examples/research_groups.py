"""Finding strongly cooperative research groups in a DBLP-style network.

The paper's third application (Section I, Fig. 10): sign a co-authorship
network by collaboration strength — positive iff a pair co-authored at
least tau papers (tau = the average) — then mine maximal (alpha,
k)-cliques. Strong groups tolerate a few weak ties (one-off
collaborations) that the all-positive TClique model cannot cross.

Run with::

    python examples/research_groups.py
"""

from repro import AlphaK, MSCE
from repro.baselines import tclique_communities
from repro.generators import load_dataset
from repro.graphs import graph_stats
from repro.metrics import describe_community

ALPHA, K = 2, 2  # the paper's Fig. 10 setting


def main() -> None:
    dataset = load_dataset("dblp")
    graph = dataset.graph
    stats = graph_stats(graph)
    print(
        f"co-authorship network: {stats.nodes:,} researchers, {stats.edges:,} "
        f"pairs ({stats.negative_fraction:.0%} weak ties)"
    )

    params = AlphaK(ALPHA, K)
    top = MSCE(graph, params, time_limit=60).top_r(10)
    print(f"\ntop research groups at (alpha={ALPHA}, k={K}):")
    for rank, clique in enumerate(top.cliques[:5], start=1):
        print("  " + describe_community(graph, clique.nodes, name=f"group #{rank}"))

    # The Fig.10 comparison: around one focal researcher, contrast the
    # signed community with the best trusted (all-positive) clique.
    focal_clique = next(
        (c for c in top.cliques if c.negative_edges > 0), top.cliques[0]
    )
    focal_author = min(focal_clique.nodes)
    print(f"\ncase study around researcher {focal_author}:")
    print("  " + describe_community(graph, focal_clique.nodes, name="SignedClique group"))

    trusted = [c for c in tclique_communities(graph, min_size=2) if focal_author in c]
    best_trusted = max(trusted, key=len) if trusted else frozenset()
    print("  " + describe_community(graph, best_trusted, name="TClique group"))

    missed = set(focal_clique.nodes) - set(best_trusted)
    if missed:
        print(
            f"  TClique misses {len(missed)} group member(s); the signed model keeps "
            f"them by tolerating up to {K} weak ties per researcher"
        )


if __name__ == "__main__":
    main()
