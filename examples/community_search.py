"""Community search: the cohesive group around given query users.

The community-*search* variant of the paper's problem (its intro cites
Sozio & Gionis's cocktail-party formulation): instead of enumerating
every community, answer "which maximal (alpha, k)-clique contains THESE
users?". The seeded search explores a tiny fraction of the space of the
full enumeration, and an incremental index keeps answers fresh as the
network changes.

Run with::

    python examples/community_search.py
"""

import time

from repro import AlphaK, DynamicSignedCliqueIndex, MSCE, best_signed_clique_for
from repro.core.query import query_search
from repro.generators import load_dataset
from repro.metrics import describe_community

ALPHA, K = 4, 3


def main() -> None:
    dataset = load_dataset("slashdot")
    graph = dataset.graph
    params = AlphaK(ALPHA, K)

    # Full enumeration, for scale comparison.
    started = time.perf_counter()
    full = MSCE(graph, params).enumerate_all()
    full_seconds = time.perf_counter() - started
    print(
        f"full enumeration: {len(full.cliques)} maximal ({ALPHA},{K})-cliques, "
        f"{full.stats.recursions} search states, {full_seconds:.2f}s"
    )
    if not full.cliques:
        print("no cliques at this setting; nothing to query")
        return

    # Query around one member of a known community.
    member = min(full.cliques[0].nodes)
    started = time.perf_counter()
    result = query_search(graph, {member}, ALPHA, K)
    query_seconds = time.perf_counter() - started
    print(
        f"\nquery '{member}': {len(result.cliques)} communities, "
        f"{result.stats.recursions} search states, {query_seconds:.3f}s "
        f"({full.stats.recursions / max(result.stats.recursions, 1):.0f}x fewer states)"
    )
    for clique in result.cliques[:3]:
        print("  " + describe_community(graph, clique.nodes, name=f"community of {member}"))

    # A two-user query: the group that contains both.
    if full.cliques[0].size >= 2:
        pair = sorted(full.cliques[0].nodes)[:2]
        best = best_signed_clique_for(graph, pair, ALPHA, K)
        if best:
            print(f"\nbest community containing both {pair[0]} and {pair[1]}: "
                  f"{best.size} members ({best.negative_edges} internal conflicts)")

    # Keep answers fresh under updates with the dynamic index.
    print("\nmaintaining answers under network updates:")
    index = DynamicSignedCliqueIndex(graph, params)
    target = sorted(full.cliques[0].nodes)[:2]
    started = time.perf_counter()
    index.remove_edge(target[0], target[1])
    update_seconds = time.perf_counter() - started
    print(
        f"  removed the tie between {target[0]} and {target[1]}: index now holds "
        f"{len(index)} cliques (update took {update_seconds:.3f}s, "
        f"invalidated {index.cliques_invalidated} cached cliques)"
    )
    remaining = index.cliques_containing(target[0])
    print(f"  {target[0]} now belongs to {len(remaining)} maximal communities")


if __name__ == "__main__":
    main()
